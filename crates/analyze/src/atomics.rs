//! Atomic-ordering audit: every `Ordering::` use must match a declared
//! per-atomic policy.
//!
//! The workspace default is `Relaxed` — nearly every atomic here is a
//! statistics counter where only the eventual total matters. An atomic
//! that needs anything stronger (a stop flag published with
//! `Release`/`Acquire`, a queue-depth gauge on `SeqCst`) must say so in
//! the file that owns it:
//!
//! ```text
//! // atomic-policy(<name>): <orderings> — <why the default is not enough>
//! ```
//!
//! e.g. a stop flag would declare Release/Acquire (on one line with the
//! marker) because the shutdown hand-off must happen-before the accept
//! loop's next check. (This doc deliberately keeps marker and ordering
//! names apart — a literal example would register as a stale policy for
//! this very file.)
//!
//! Any ordering used outside the declared (or default) policy is a
//! finding, as is a policy comment naming an atomic with no operations
//! left in the file — stale declarations rot into misdocumentation.

use std::collections::{BTreeMap, BTreeSet};

use ppm_lint::Diagnostic;

use crate::items::FileIndex;

/// Runs the audit over the indexed workspace.
pub fn check(files: &[FileIndex]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in files.iter().filter(|f| f.crate_name != "tests") {
        // Group operation sites by atomic identity within the file.
        let mut by_atomic: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, site) in f.atomics.iter().enumerate() {
            if !site.in_test {
                by_atomic.entry(site.atomic.as_str()).or_default().push(i);
            }
        }
        for (name, sites) in &by_atomic {
            let declared = f.policies.get(*name).map(|(set, _)| set);
            let used: BTreeSet<&str> = sites
                .iter()
                .flat_map(|&i| f.atomics[i].orderings.iter().map(String::as_str))
                .collect();
            match declared {
                Some(policy) => {
                    for &i in sites {
                        let site = &f.atomics[i];
                        for o in &site.orderings {
                            if !policy.contains(o) {
                                let allowed = policy.iter().cloned().collect::<Vec<_>>().join(", ");
                                diags.push(Diagnostic {
                                    rule: "atomic-ordering",
                                    path: f.rel.clone(),
                                    line: site.line,
                                    col: site.col,
                                    message: format!(
                                        "atomic `{name}` uses Ordering::{o} in `{}` but its \
                                         declared policy is [{allowed}] — update the \
                                         atomic-policy({name}) comment or the call site",
                                        site.op
                                    ),
                                });
                            }
                        }
                    }
                }
                None => {
                    // Default policy: Relaxed-only counters need no
                    // declaration; anything stronger does.
                    for &i in sites {
                        let site = &f.atomics[i];
                        for o in &site.orderings {
                            if o != "Relaxed" {
                                let all = used.iter().copied().collect::<Vec<_>>().join(", ");
                                diags.push(Diagnostic {
                                    rule: "atomic-ordering",
                                    path: f.rel.clone(),
                                    line: site.line,
                                    col: site.col,
                                    message: format!(
                                        "atomic `{name}` uses Ordering::{o} in `{}` with no \
                                         declared policy (workspace default is Relaxed for \
                                         counters) — add `// atomic-policy({name}): {all} — \
                                         <why>` next to the atomic",
                                        site.op
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        // Stale policies: a declaration with no surviving operations.
        for (name, (_, line)) in &f.policies {
            if !by_atomic.contains_key(name.as_str()) {
                diags.push(Diagnostic {
                    rule: "atomic-ordering",
                    path: f.rel.clone(),
                    line: *line,
                    col: 1,
                    message: format!(
                        "atomic-policy({name}) declared but no atomic operation on \
                         `{name}` exists in this file — delete or move the stale policy"
                    ),
                });
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::index_file;

    #[test]
    fn all_relaxed_counters_need_no_policy() {
        let f = index_file(
            "crates/telemetry/src/a.rs",
            "fn f(s: &S) {\n    s.hits.fetch_add(1, Ordering::Relaxed);\n    s.hits.load(Ordering::Relaxed);\n}\n",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn undeclared_non_relaxed_ordering_is_reported() {
        let f = index_file(
            "crates/exec/src/a.rs",
            "fn f(s: &S) {\n    s.depth.fetch_add(1, Ordering::SeqCst);\n}\n",
        );
        let diags = check(&[f]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("SeqCst"), "{diags:?}");
        assert!(
            diags[0].message.contains("atomic-policy(depth)"),
            "{diags:?}"
        );
    }

    #[test]
    fn declared_policy_silences_matching_orderings() {
        let f = index_file(
            "crates/live/src/a.rs",
            "// atomic-policy(stop): Release, Acquire — shutdown hand-off\nfn f(s: &S) {\n    s.stop.store(true, Ordering::Release);\n    s.stop.load(Ordering::Acquire);\n}\n",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn ordering_outside_declared_policy_is_reported() {
        let f = index_file(
            "crates/live/src/a.rs",
            "// atomic-policy(stop): Release — publish only\nfn f(s: &S) {\n    s.stop.load(Ordering::SeqCst);\n}\n",
        );
        let diags = check(&[f]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("declared policy"), "{diags:?}");
    }

    #[test]
    fn stale_policy_is_reported_at_its_declaration() {
        let f = index_file(
            "crates/serve/src/a.rs",
            "// atomic-policy(gone): SeqCst — no longer exists\nfn f() {}\n",
        );
        let diags = check(&[f]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 1);
        assert!(diags[0].message.contains("stale"), "{diags:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = index_file(
            "crates/serve/src/a.rs",
            "#[cfg(test)]\nmod tests {\n    fn f(s: &S) {\n        s.x.store(1, Ordering::SeqCst);\n    }\n}\n",
        );
        assert!(check(&[f]).is_empty());
    }
}
