//! Exit-code contract: `CliError::exit_code()` is the single source of
//! truth, and the usage text (`EXIT CODES:` block in `src/cli/mod.rs`)
//! and README's `## Exit codes` table must both document exactly that
//! set — scripts branch on these numbers, so silent drift breaks CI
//! the slow way.
//!
//! The analysis re-lexes the three CLI files from the index, extracts
//! the `fn exit_code` match arms (`CliError::Variant ... => N`), the
//! numeric codes named in the usage block, the codes in README table
//! rows, and any `ExitCode::from(<literal>)` in `src/main.rs`, then
//! cross-checks all four. Code 0 (success) is implicit in the arm set.

use std::collections::{BTreeMap, BTreeSet};

use ppm_lint::lexer::{self, TokenKind};
use ppm_lint::Diagnostic;

use crate::items::FileIndex;

const COMMANDS_REL: &str = "src/cli/commands.rs";
const USAGE_REL: &str = "src/cli/mod.rs";
const MAIN_REL: &str = "src/main.rs";

/// Extracts `variant → code` from the `fn exit_code` match arms.
fn exit_code_arms(source: &str) -> BTreeMap<String, u8> {
    let tokens = lexer::lex(source);
    let code: Vec<_> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let is_punct = |i: usize, c: char| code.get(i).is_some_and(|t| t.kind == TokenKind::Punct(c));
    let is_ident = |i: usize, s: &str| {
        code.get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == s)
    };
    // Locate the fn body.
    let mut body = None;
    for i in 0..code.len() {
        if is_ident(i, "fn") && is_ident(i + 1, "exit_code") {
            let mut j = i + 2;
            while j < code.len() && !is_punct(j, '{') {
                j += 1;
            }
            let mut d = 0i32;
            for k in j..code.len() {
                if is_punct(k, '{') {
                    d += 1;
                } else if is_punct(k, '}') {
                    d -= 1;
                    if d == 0 {
                        body = Some((j, k));
                        break;
                    }
                }
            }
            break;
        }
    }
    let mut arms = BTreeMap::new();
    let Some((start, end)) = body else {
        return arms;
    };
    let mut pending: Vec<String> = Vec::new();
    let mut i = start;
    while i <= end {
        if (is_ident(i, "CliError") || is_ident(i, "Self"))
            && is_punct(i + 1, ':')
            && is_punct(i + 2, ':')
            && code.get(i + 3).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            if let Some(t) = code.get(i + 3) {
                pending.push(t.text.to_string());
            }
            i += 4;
            continue;
        }
        if is_punct(i, '=') && is_punct(i + 1, '>') {
            if let Some(n) = code.get(i + 2).and_then(|t| {
                matches!(t.kind, TokenKind::Number { .. }).then(|| t.text.parse::<u8>().ok())?
            }) {
                for v in pending.drain(..) {
                    arms.insert(v, n);
                }
            } else {
                pending.clear();
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    arms
}

/// Extracts the codes named in the usage text's `EXIT CODES:` block and
/// the 1-based source line of that block.
fn usage_codes(source: &str) -> Option<(BTreeSet<u8>, u32)> {
    let tokens = lexer::lex(source);
    for t in &tokens {
        if !matches!(t.kind, TokenKind::Str | TokenKind::RawStr) {
            continue;
        }
        let Some(at) = t.text.find("EXIT CODES:") else {
            continue;
        };
        let line = t.line + t.text[..at].matches('\n').count() as u32;
        let section = &t.text[at..];
        let section = &section[..section.find("\n\n").unwrap_or(section.len())];
        let codes: BTreeSet<u8> = section
            .split_whitespace()
            .filter_map(|w| w.parse::<u8>().ok())
            .collect();
        return Some((codes, line));
    }
    None
}

/// Extracts `code → README line` from the `## Exit codes` table.
fn readme_codes(readme: &str) -> Option<(BTreeMap<u8, u32>, u32)> {
    let mut rows = BTreeMap::new();
    let mut header_line = 0u32;
    let mut in_section = false;
    for (i, line) in readme.lines().enumerate() {
        let n = i as u32 + 1;
        let trimmed = line.trim();
        if trimmed.eq_ignore_ascii_case("## exit codes") {
            in_section = true;
            header_line = n;
            continue;
        }
        if in_section && trimmed.starts_with("## ") {
            break;
        }
        if in_section && trimmed.starts_with('|') {
            // `| `N` | description |` — take the first backticked cell.
            if let Some(rest) = trimmed.split('`').nth(1) {
                if let Ok(code) = rest.trim().parse::<u8>() {
                    rows.entry(code).or_insert(n);
                }
            }
        }
    }
    in_section.then_some((rows, header_line))
}

/// Extracts `ExitCode::from(<int literal>)` sites from `src/main.rs`.
fn main_literals(source: &str) -> Vec<(u8, u32, u32)> {
    let tokens = lexer::lex(source);
    let code: Vec<_> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::new();
    for i in 0..code.len() {
        if code[i].kind == TokenKind::Ident
            && code[i].text == "ExitCode"
            && code
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Punct(':'))
            && code
                .get(i + 2)
                .is_some_and(|t| t.kind == TokenKind::Punct(':'))
            && code
                .get(i + 3)
                .is_some_and(|t| t.kind == TokenKind::Ident && t.text == "from")
            && code
                .get(i + 4)
                .is_some_and(|t| t.kind == TokenKind::Punct('('))
        {
            if let Some(t) = code.get(i + 5) {
                if matches!(t.kind, TokenKind::Number { .. }) {
                    if let Ok(n) = t.text.parse::<u8>() {
                        out.push((n, t.line, t.col));
                    }
                }
            }
        }
    }
    out
}

/// Runs the analysis. `readme` is the workspace `README.md`, when it
/// exists; checks whose inputs are absent are skipped, so fixture trees
/// exercise only what they provide.
pub fn check(files: &[FileIndex], readme: Option<&str>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let source_of = |rel: &str| {
        files
            .iter()
            .find(|f| f.rel == rel)
            .map(|f| f.source.as_str())
    };

    let Some(arms) = source_of(COMMANDS_REL).map(exit_code_arms) else {
        return diags;
    };
    if arms.is_empty() {
        return diags;
    }
    // The truth set: success plus every arm's code.
    let mut truth: BTreeSet<u8> = arms.values().copied().collect();
    truth.insert(0);
    let variants_for = |c: u8| -> String {
        let v: Vec<&str> = arms
            .iter()
            .filter(|(_, code)| **code == c)
            .map(|(name, _)| name.as_str())
            .collect();
        if v.is_empty() {
            "success".to_string()
        } else {
            format!("CliError::{}", v.join(" | CliError::"))
        }
    };

    if let Some((codes, line)) = source_of(USAGE_REL).and_then(usage_codes) {
        for &c in truth.difference(&codes) {
            diags.push(Diagnostic {
                rule: "exit-code",
                path: USAGE_REL.to_string(),
                line,
                col: 1,
                message: format!(
                    "exit code {c} ({}) is missing from the usage text's EXIT CODES block",
                    variants_for(c)
                ),
            });
        }
        for &c in codes.difference(&truth) {
            diags.push(Diagnostic {
                rule: "exit-code",
                path: USAGE_REL.to_string(),
                line,
                col: 1,
                message: format!(
                    "usage text documents exit code {c} but no CliError variant produces it"
                ),
            });
        }
    }

    if let Some((rows, header_line)) = readme.and_then(readme_codes) {
        let documented: BTreeSet<u8> = rows.keys().copied().collect();
        for &c in truth.difference(&documented) {
            diags.push(Diagnostic {
                rule: "exit-code",
                path: "README.md".to_string(),
                line: header_line,
                col: 1,
                message: format!(
                    "exit code {c} ({}) is missing from README's exit-code table",
                    variants_for(c)
                ),
            });
        }
        for (&c, &line) in &rows {
            if !truth.contains(&c) {
                diags.push(Diagnostic {
                    rule: "exit-code",
                    path: "README.md".to_string(),
                    line,
                    col: 1,
                    message: format!(
                        "README documents exit code {c} but no CliError variant produces it"
                    ),
                });
            }
        }
    }

    if let Some(main_src) = source_of(MAIN_REL) {
        for (c, line, col) in main_literals(main_src) {
            if !truth.contains(&c) {
                diags.push(Diagnostic {
                    rule: "exit-code",
                    path: MAIN_REL.to_string(),
                    line,
                    col,
                    message: format!(
                        "src/main.rs exits with literal code {c}, which no CliError \
                         variant (or success) accounts for"
                    ),
                });
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::index_file;

    const COMMANDS: &str = r#"
pub enum CliError { Args(String), Sim(String), Lint(usize) }
impl CliError {
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Args(_) => 2,
            CliError::Sim(_) => 3,
            CliError::Lint(_) => 6,
        }
    }
}
"#;

    #[test]
    fn arms_parse_including_multi_variant() {
        let arms = exit_code_arms(
            "fn exit_code(&self) -> u8 { match self { CliError::A(_) | CliError::B => 2, Self::C(_) => 5 } }",
        );
        assert_eq!(arms.get("A"), Some(&2));
        assert_eq!(arms.get("B"), Some(&2));
        assert_eq!(arms.get("C"), Some(&5));
    }

    #[test]
    fn agreement_is_clean() {
        let cmd = index_file(COMMANDS_REL, COMMANDS);
        let usage = index_file(
            USAGE_REL,
            "pub const USAGE: &str = \"...\nEXIT CODES:\n  0 success    2 usage\n  3 simulation 6 lint\n\nMORE:\n\";\n",
        );
        let readme = "# x\n\n## Exit codes\n\n| Code | Meaning |\n|---|---|\n| `0` | ok |\n| `2` | usage |\n| `3` | sim |\n| `6` | lint |\n\n## Next\n";
        assert!(check(&[cmd, usage], Some(readme)).is_empty());
    }

    #[test]
    fn missing_and_extra_readme_rows_are_reported() {
        let cmd = index_file(COMMANDS_REL, COMMANDS);
        let readme =
            "## Exit codes\n\n| `0` | ok |\n| `2` | usage |\n| `3` | sim |\n| `9` | ghost |\n";
        let diags = check(&[cmd], Some(readme));
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("exit code 6") && d.message.contains("missing")),
            "{diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("exit code 9") && d.message.contains("no CliError")),
            "{diags:?}"
        );
    }

    #[test]
    fn usage_block_drift_is_reported() {
        let cmd = index_file(COMMANDS_REL, COMMANDS);
        let usage = index_file(
            USAGE_REL,
            "pub const USAGE: &str = \"...\nEXIT CODES:\n  0 success    2 usage\n\nMORE:\n\";\n",
        );
        let diags = check(&[cmd, usage], None);
        assert!(
            diags
                .iter()
                .any(|d| d.path == USAGE_REL && d.message.contains("exit code 3")),
            "{diags:?}"
        );
    }

    #[test]
    fn unknown_literal_in_main_is_reported() {
        let cmd = index_file(COMMANDS_REL, COMMANDS);
        let main = index_file(MAIN_REL, "fn main() -> ExitCode { ExitCode::from(42) }\n");
        let diags = check(&[cmd, main], None);
        assert!(
            diags
                .iter()
                .any(|d| d.path == MAIN_REL && d.message.contains("literal code 42")),
            "{diags:?}"
        );
    }

    #[test]
    fn fixture_trees_without_the_cli_are_quiet() {
        let f = index_file("crates/serve/src/a.rs", "fn f() {}\n");
        assert!(check(&[f], Some("## Exit codes\n| `9` | x |\n")).is_empty());
    }
}
