//! The item-level parser: one pass over a file's token stream that
//! extracts everything the five analyses need.
//!
//! This is deliberately *not* an AST. The analyses ask questions a
//! token stream can answer with brace/paren bookkeeping — "which
//! mutexes are acquired while this guard is held", "which `Ordering::`
//! values does this atomic use", "which functions does this spawn
//! closure call" — so the parser extracts flat, owned site lists
//! ([`FileIndex`]) and the rule modules never touch tokens again.
//! Borrowed-token lifetimes stay inside [`index_file`]; everything it
//! returns is owned, which keeps the workspace-wide analyses (cycle
//! detection, call-graph reachability, format registry) simple.

use std::collections::{BTreeMap, BTreeSet};

use ppm_lint::lexer::{self, Token, TokenKind};
use ppm_lint::rules::inline_allows;

/// A panic-capable site inside a function body or root region.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What the site is: `unwrap`, `expect`, `panic!`, `slice-index`.
    pub what: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// True when the site sits lexically inside a `catch_unwind(...)`
    /// argument — a contained panic costs one request, not a thread.
    pub masked: bool,
}

/// A function body or a thread/worker root region (the argument region
/// of a `spawn(...)` / `ServicePool::new(...)` call), reduced to what
/// reachability needs.
#[derive(Debug, Clone)]
pub struct Region {
    /// Function name (`offer`, qualified `TraceRing::offer`) or a
    /// synthesized root label (`spawn@142`).
    pub name: String,
    /// Qualified `Type::name` when the fn sits in an impl block.
    pub qual_name: Option<String>,
    /// True for spawn/worker-pool argument regions — the reachability
    /// roots.
    pub is_root: bool,
    /// True inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
    /// Callee names invoked from this region, excluding calls inside
    /// `catch_unwind(...)` arguments. Path calls are recorded as
    /// `Type::name`, bare and method calls as `name`.
    pub calls: Vec<String>,
    /// Panic-capable sites in this region.
    pub panics: Vec<PanicSite>,
    /// Mutex names `.lock()`ed directly in this region (for one-level
    /// call expansion of the lock-order graph).
    pub locks: Vec<String>,
}

/// One `.lock()` acquisition and everything that happens while the
/// guard is held.
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// The mutex identity: the receiver identifier before `.lock()`.
    pub mutex: String,
    /// 1-based source line of the acquisition.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// True inside test code.
    pub in_test: bool,
    /// Mutexes acquired while this guard is held: `(name, line, col)`.
    pub inner: Vec<(String, u32, u32)>,
    /// Function calls made while held (for one-level expansion).
    pub calls: Vec<String>,
    /// Blocking I/O or channel operations while held: `(name, line, col)`.
    pub io: Vec<(String, u32, u32)>,
}

/// One atomic memory operation with the `Ordering::` values it names.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// The atomic identity: the receiver identifier before the op.
    pub atomic: String,
    /// The operation (`load`, `fetch_add`, `compare_exchange`, ...).
    pub op: String,
    /// Every `Ordering::X` named in the call's arguments.
    pub orderings: Vec<String>,
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// True inside test code.
    pub in_test: bool,
}

/// A string-literal site mentioning one or more `ppm-* vN` wire-format
/// version strings.
#[derive(Debug, Clone)]
pub struct StrSite {
    /// The version strings found inside the literal.
    pub formats: Vec<String>,
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// True inside test code (or anywhere under `tests/`).
    pub in_test: bool,
    /// True when neighboring tokens look like a parse/validation
    /// context (`==`, `!=`, `=>`, `strip_prefix`, `starts_with`, ...).
    pub parse_ctx: bool,
}

/// A SCREAMING_CASE identifier occurrence, used to track wire-format
/// constants (`TRACEZ_SCHEMA`) across files, including `{NAME}`
/// interpolations inside format strings.
#[derive(Debug, Clone)]
pub struct CapsSite {
    /// The identifier text.
    pub name: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// True inside test code.
    pub in_test: bool,
    /// True in a parse/validation context (see [`StrSite::parse_ctx`]).
    pub parse_ctx: bool,
}

/// Everything the analyses need from one source file, fully owned.
#[derive(Debug, Clone, Default)]
pub struct FileIndex {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Short crate name (`serve`, `telemetry`), `cli` for `src/`,
    /// `tests` for integration tests.
    pub crate_name: String,
    /// The file's source text (kept for targeted re-lexing, e.g. the
    /// exit-code contract parse of `src/cli/commands.rs`).
    pub source: String,
    /// Source lines, for allowlist substring matching.
    pub lines: Vec<String>,
    /// Inline `analyze:allow(<rule>)` markers: `(rule, line)` pairs.
    pub allows: BTreeSet<(String, u32)>,
    /// Function bodies and spawn-root regions.
    pub regions: Vec<Region>,
    /// Lock acquisitions with their held-region contents.
    pub locks: Vec<LockAcq>,
    /// Atomic operations with orderings.
    pub atomics: Vec<AtomicSite>,
    /// Declared per-atomic ordering policies from
    /// `atomic-policy(<name>): <Orderings>` comments:
    /// name → (allowed orderings, declaration line).
    pub policies: BTreeMap<String, (BTreeSet<String>, u32)>,
    /// Wire-format string sites.
    pub strings: Vec<StrSite>,
    /// `const NAME: &str = "ppm-x vN"` bindings: name → format.
    pub consts: BTreeMap<String, String>,
    /// SCREAMING_CASE identifier occurrences (wire-format const uses).
    pub caps: Vec<CapsSite>,
}

/// Maps a workspace-relative path to its short crate name.
fn crate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("").to_string()
    } else if rel.starts_with("tests/") {
        "tests".to_string()
    } else {
        "cli".to_string()
    }
}

const ATOMIC_OPS: [&str; 15] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];

const MEMORY_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Blocking I/O and channel operations that must not run under a lock.
/// `try_send` is deliberately absent: non-blocking sends are the shed
/// path's whole point.
const IO_CALLS: [&str; 14] = [
    "write",
    "write_all",
    "write_fmt",
    "flush",
    "read",
    "read_line",
    "read_exact",
    "read_to_string",
    "read_to_end",
    "send",
    "recv",
    "recv_timeout",
    "accept",
    "connect",
];

/// Identifiers never treated as call edges: control keywords, bindings,
/// and enum constructors whose "call" cannot panic by itself.
const NOT_CALLEES: [&str; 24] = [
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "fn", "let",
    "in", "as", "move", "where", "impl", "use", "mod", "pub", "Some", "None", "Ok", "Err", "self",
];

/// True for `UPPER_SNAKE` identifiers of the kind wire-format schema
/// constants use.
fn is_caps_ident(s: &str) -> bool {
    s.len() > 3
        && s.bytes()
            .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
}

/// Extracts every `ppm-<word> v<digits>` substring from a literal's
/// raw text (quotes and escapes included — the pattern cannot span an
/// escape).
pub fn formats_in(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(at) = text[i..].find("ppm-") {
        let start = i + at;
        let mut j = start + 4;
        while j < bytes.len() && bytes[j].is_ascii_lowercase() {
            j += 1;
        }
        // Require `<name> v<digits>`: a space, a 'v', then digits.
        if j > start + 4 && bytes.get(j) == Some(&b' ') && bytes.get(j + 1) == Some(&b'v') {
            let mut k = j + 2;
            while k < bytes.len() && bytes[k].is_ascii_digit() {
                k += 1;
            }
            if k > j + 2 {
                out.push(text[start..k].to_string());
                i = k;
                continue;
            }
        }
        i = start + 4;
    }
    out
}

/// The single indexing pass: lexes `source` and extracts every site
/// list in [`FileIndex`]. `rel` must be workspace-relative with `/`
/// separators.
pub fn index_file(rel: &str, source: &str) -> FileIndex {
    let tokens = lexer::lex(source);
    let test_regions = lexer::test_regions(&tokens);
    let whole_file_is_test = rel.starts_with("tests/");

    // Code view: indices of non-comment tokens.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let tok = |ci: usize| -> Option<&Token<'_>> { code.get(ci).map(|&i| &tokens[i]) };
    let in_test = |ci: usize| -> bool {
        whole_file_is_test || code.get(ci).is_some_and(|&i| test_regions[i])
    };
    let is_punct = |ci: usize, c: char| tok(ci).is_some_and(|t| t.kind == TokenKind::Punct(c));
    let is_ident =
        |ci: usize, s: &str| tok(ci).is_some_and(|t| t.kind == TokenKind::Ident && t.text == s);

    // Brace depth *before* each code token (the depth the token sits at).
    let mut depth_at = Vec::with_capacity(code.len());
    let mut depth: i32 = 0;
    for &i in &code {
        match tokens[i].kind {
            TokenKind::Punct('{') => {
                depth_at.push(depth);
                depth += 1;
            }
            TokenKind::Punct('}') => {
                depth -= 1;
                depth_at.push(depth);
            }
            _ => depth_at.push(depth),
        }
    }

    // Matching close for every open bracket, by kind.
    let close_of = |open_ci: usize, open: char, close: char| -> usize {
        let mut d = 0i32;
        for ci in open_ci..code.len() {
            if is_punct(ci, open) {
                d += 1;
            } else if is_punct(ci, close) {
                d -= 1;
                if d == 0 {
                    return ci;
                }
            }
        }
        code.len().saturating_sub(1)
    };

    // `catch_unwind(...)` argument regions mask panic sites and call
    // edges: a panic in there costs one request, not the thread.
    let mut masked = vec![false; code.len()];
    for ci in 0..code.len() {
        if is_ident(ci, "catch_unwind") && is_punct(ci + 1, '(') {
            let end = close_of(ci + 1, '(', ')');
            for m in masked.iter_mut().take(end + 1).skip(ci + 1) {
                *m = true;
            }
        }
    }

    // The receiver identifier of a `.method(` call at `ci` (pointing at
    // the method ident): the ident two tokens back (`x.method`), or
    // None for computed receivers (`f().method`).
    let receiver = |ci: usize| -> Option<String> {
        if ci >= 2 && is_punct(ci - 1, '.') {
            let r = tok(ci - 2)?;
            if r.kind == TokenKind::Ident && r.text != "self" {
                return Some(r.text.to_string());
            }
            // `self.field.method(...)`: take the field.
            if r.kind == TokenKind::Ident {
                return Some(r.text.to_string());
            }
        }
        None
    };

    // ---- panic sites, calls, locks: collected globally, then carved
    // into regions. `site_kind[ci]` tags interesting tokens.
    #[derive(Clone, Copy, PartialEq)]
    enum Kind {
        Panic,
        Call,
        Lock,
    }
    let mut kinds: Vec<Option<(Kind, &'static str)>> = vec![None; code.len()];
    let mut panic_what: BTreeMap<usize, String> = BTreeMap::new();
    let mut call_name: BTreeMap<usize, String> = BTreeMap::new();

    #[allow(clippy::needless_range_loop)] // neighbor lookups via tok(ci±n)
    for ci in 0..code.len() {
        let Some(t) = tok(ci) else { continue };
        if t.kind != TokenKind::Ident {
            // Slice indexing `x[i]` in expression position, ident index.
            if t.kind == TokenKind::Punct('[')
                && ci > 0
                && tok(ci - 1).is_some_and(|p| {
                    p.kind == TokenKind::Ident
                        || matches!(p.kind, TokenKind::Punct(']') | TokenKind::Punct(')'))
                })
                && !is_punct(ci.wrapping_sub(2), '#')
                && tok(ci + 1).is_some_and(|n| n.kind == TokenKind::Ident)
                && !NOT_CALLEES.contains(&tok(ci + 1).map_or("", |n| n.text))
            {
                // Exclude ranges (`x[1..]`, `x[..n]`): scan to `]`.
                let end = close_of(ci, '[', ']');
                let has_range = (ci + 1..end).any(|k| is_punct(k, '.') && is_punct(k + 1, '.'));
                if !has_range {
                    kinds[ci] = Some((Kind::Panic, "slice-index"));
                    panic_what.insert(ci, "slice index".to_string());
                }
            }
            continue;
        }
        let followed_by_paren = is_punct(ci + 1, '(');
        match t.text {
            "unwrap" | "expect" if ci > 0 && is_punct(ci - 1, '.') && followed_by_paren => {
                kinds[ci] = Some((Kind::Panic, "unwrap"));
                panic_what.insert(ci, format!(".{}(...)", t.text));
            }
            "panic" | "todo" | "unimplemented" if is_punct(ci + 1, '!') => {
                kinds[ci] = Some((Kind::Panic, "macro"));
                panic_what.insert(ci, format!("{}!", t.text));
            }
            "lock" if ci > 0 && is_punct(ci - 1, '.') && followed_by_paren => {
                kinds[ci] = Some((Kind::Lock, "lock"));
            }
            name if followed_by_paren && !NOT_CALLEES.contains(&name) && !is_punct(ci + 1, '!') => {
                // A call edge. Qualify path calls `Type::name(`.
                let qual = if ci >= 2
                    && is_punct(ci - 1, ':')
                    && is_punct(ci - 2, ':')
                    && tok(ci.wrapping_sub(3)).is_some_and(|q| q.kind == TokenKind::Ident)
                {
                    Some(format!("{}::{}", tok(ci - 3).map_or("", |q| q.text), name))
                } else {
                    None
                };
                kinds[ci] = Some((Kind::Call, "call"));
                call_name.insert(ci, qual.unwrap_or_else(|| name.to_string()));
            }
            _ => {}
        }
    }

    // ---- regions: fn bodies (with impl-block qualification) and
    // spawn-root argument regions.
    let mut regions = Vec::new();
    // Impl-block type names by code-token range.
    let mut impl_ranges: Vec<(usize, usize, String)> = Vec::new();
    for ci in 0..code.len() {
        if !is_ident(ci, "impl") {
            continue;
        }
        // Find the block open and the self type: skip generics, honor
        // `impl Trait for Type`.
        let mut j = ci + 1;
        let mut angle = 0i32;
        let mut last_ident = String::new();
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        while j < code.len() && !(angle == 0 && is_punct(j, '{')) && !is_punct(j, ';') {
            match tok(j).map(|t| (t.kind, t.text)) {
                Some((TokenKind::Punct('<'), _)) => angle += 1,
                Some((TokenKind::Punct('>'), _)) => angle -= 1,
                Some((TokenKind::Ident, "for")) if angle == 0 => saw_for = true,
                Some((TokenKind::Ident, name)) if angle == 0 => {
                    if saw_for && after_for.is_none() {
                        after_for = Some(name.to_string());
                    }
                    if last_ident.is_empty() || !saw_for {
                        last_ident = name.to_string();
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j < code.len() && is_punct(j, '{') {
            let end = close_of(j, '{', '}');
            let ty = after_for.unwrap_or(last_ident);
            if !ty.is_empty() {
                impl_ranges.push((j, end, ty));
            }
        }
    }
    let impl_type_at = |ci: usize| -> Option<&str> {
        impl_ranges
            .iter()
            .filter(|(s, e, _)| *s <= ci && ci <= *e)
            .map(|(_, _, ty)| ty.as_str())
            .next_back()
    };

    // Collect the sites inside a code-token range into a Region.
    let fill_region = |name: String,
                       qual_name: Option<String>,
                       is_root: bool,
                       start: usize,
                       end: usize,
                       region_in_test: bool|
     -> Region {
        let mut calls = Vec::new();
        let mut panics = Vec::new();
        let mut locks = Vec::new();
        for ci in start..=end.min(code.len().saturating_sub(1)) {
            match kinds[ci] {
                Some((Kind::Call, _)) if !masked[ci] => {
                    if let Some(n) = call_name.get(&ci) {
                        calls.push(n.clone());
                    }
                }
                Some((Kind::Panic, _)) => {
                    if let (Some(t), Some(what)) = (tok(ci), panic_what.get(&ci)) {
                        panics.push(PanicSite {
                            what: what.clone(),
                            line: t.line,
                            col: t.col,
                            masked: masked[ci],
                        });
                    }
                }
                Some((Kind::Lock, _)) => {
                    if let Some(m) = receiver(ci) {
                        locks.push(m);
                    }
                }
                _ => {}
            }
        }
        Region {
            name,
            qual_name,
            is_root,
            in_test: region_in_test,
            calls,
            panics,
            locks,
        }
    };

    for ci in 0..code.len() {
        if is_ident(ci, "fn") && tok(ci + 1).is_some_and(|t| t.kind == TokenKind::Ident) {
            let name = tok(ci + 1).map_or(String::new(), |t| t.text.to_string());
            // Scan to the body open brace; a `;` first means no body.
            let mut j = ci + 2;
            let mut d = 0i32; // parens/angles may nest before the body
            let mut open = None;
            while j < code.len() {
                match tok(j).map(|t| t.kind) {
                    Some(TokenKind::Punct('(')) | Some(TokenKind::Punct('<')) => d += 1,
                    Some(TokenKind::Punct(')')) | Some(TokenKind::Punct('>')) => d -= 1,
                    Some(TokenKind::Punct('{')) if d <= 0 => {
                        open = Some(j);
                        break;
                    }
                    Some(TokenKind::Punct(';')) if d <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = open {
                let end = close_of(open, '{', '}');
                let qual = impl_type_at(ci).map(|ty| format!("{ty}::{name}"));
                regions.push(fill_region(name, qual, false, open, end, in_test(ci)));
            }
        }
        // Spawn roots: the whole argument region of `spawn(...)` or
        // `ServicePool::{new,with_worker_ids}(...)`.
        let is_spawn = is_ident(ci, "spawn") && is_punct(ci + 1, '(');
        let is_pool = (is_ident(ci, "new") || is_ident(ci, "with_worker_ids"))
            && is_punct(ci + 1, '(')
            && ci >= 3
            && is_punct(ci - 1, ':')
            && is_punct(ci - 2, ':')
            && is_ident(ci - 3, "ServicePool");
        if is_spawn || is_pool {
            let end = close_of(ci + 1, '(', ')');
            let line = tok(ci).map_or(0, |t| t.line);
            let label = if is_spawn { "spawn" } else { "worker-pool" };
            regions.push(fill_region(
                format!("{label}@{line}"),
                None,
                true,
                ci + 1,
                end,
                in_test(ci),
            ));
        }
    }

    // ---- lock acquisitions with held regions.
    let mut locks = Vec::new();
    for ci in 0..code.len() {
        if kinds[ci] != Some((Kind::Lock, "lock")) {
            continue;
        }
        let Some(mutex) = receiver(ci) else { continue };
        let t = tokens[code[ci]];
        // Statement start: walk back to the nearest `;`, `{`, or `}`.
        let mut s = ci;
        while s > 0 {
            if matches!(
                tok(s - 1).map(|p| p.kind),
                Some(TokenKind::Punct(';'))
                    | Some(TokenKind::Punct('{'))
                    | Some(TokenKind::Punct('}'))
            ) {
                break;
            }
            s -= 1;
        }
        let stmt_depth = depth_at[ci];
        let is_let = is_ident(s, "let");
        // The let-bound guard name (`let g = ...` / `let mut g = ...`),
        // for `drop(g)` truncation.
        let guard = if is_let {
            let mut g = s + 1;
            if is_ident(g, "mut") {
                g += 1;
            }
            tok(g)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.to_string())
        } else {
            None
        };
        // Held-region end: a bare temporary dies at the statement's
        // `;`; a let-bound guard lives to the end of the enclosing
        // block (or an explicit `drop(guard)`).
        let mut end = code.len().saturating_sub(1);
        #[allow(clippy::needless_range_loop)] // neighbor lookups via is_punct(j±1)
        for j in ci + 1..code.len() {
            if !is_let && is_punct(j, ';') && depth_at[j] <= stmt_depth {
                end = j;
                break;
            }
            if is_punct(j, '}') && depth_at[j] < stmt_depth {
                end = j;
                break;
            }
            if let Some(g) = &guard {
                if is_ident(j, "drop") && is_punct(j + 1, '(') && is_ident(j + 2, g.as_str()) {
                    end = j;
                    break;
                }
            }
        }
        let mut inner = Vec::new();
        let mut calls = Vec::new();
        let mut io = Vec::new();
        #[allow(clippy::needless_range_loop)] // mixes kinds[j] with tok(j±1) lookups
        for j in ci + 1..=end.min(code.len().saturating_sub(1)) {
            match kinds[j] {
                Some((Kind::Lock, _)) => {
                    if let (Some(m), Some(jt)) = (receiver(j), tok(j)) {
                        inner.push((m, jt.line, jt.col));
                    }
                }
                Some((Kind::Call, _)) => {
                    if let (Some(n), Some(jt)) = (call_name.get(&j), tok(j)) {
                        let bare = n.rsplit(':').next().unwrap_or(n);
                        if IO_CALLS.contains(&bare) && is_punct(j - 1, '.') {
                            io.push((bare.to_string(), jt.line, jt.col));
                        }
                        calls.push(n.clone());
                    }
                }
                _ => {}
            }
        }
        locks.push(LockAcq {
            mutex,
            line: t.line,
            col: t.col,
            in_test: in_test(ci),
            inner,
            calls,
            io,
        });
    }

    // ---- atomic operations with orderings.
    let mut atomics = Vec::new();
    for ci in 0..code.len() {
        let Some(t) = tok(ci) else { continue };
        if t.kind != TokenKind::Ident
            || !ATOMIC_OPS.contains(&t.text)
            || !is_punct(ci + 1, '(')
            || ci == 0
            || !is_punct(ci - 1, '.')
        {
            continue;
        }
        let end = close_of(ci + 1, '(', ')');
        let mut orderings = Vec::new();
        for j in ci + 2..end {
            if is_ident(j, "Ordering")
                && is_punct(j + 1, ':')
                && is_punct(j + 2, ':')
                && tok(j + 3).is_some_and(|o| MEMORY_ORDERINGS.contains(&o.text))
            {
                orderings.push(tok(j + 3).map_or(String::new(), |o| o.text.to_string()));
            }
        }
        // A method named like an atomic op but taking no Ordering is
        // not an atomic call (e.g. a local `load()` helper).
        if orderings.is_empty() {
            continue;
        }
        let Some(atomic) = receiver(ci) else { continue };
        atomics.push(AtomicSite {
            atomic,
            op: t.text.to_string(),
            orderings,
            line: t.line,
            col: t.col,
            in_test: in_test(ci),
        });
    }

    // ---- comments: inline allows and atomic-policy declarations.
    let allows = inline_allows(&tokens, "analyze:allow(");
    let mut policies: BTreeMap<String, (BTreeSet<String>, u32)> = BTreeMap::new();
    for tokref in tokens.iter().filter(|t| t.is_comment()) {
        let mut rest = tokref.text;
        while let Some(at) = rest.find("atomic-policy(") {
            // Line of the declaration within a (possibly multi-line
            // doc/block) comment token.
            let decl_line = tokref.line
                + tokref.text[..tokref.text.len() - rest.len() + at]
                    .matches('\n')
                    .count() as u32;
            rest = &rest[at + "atomic-policy(".len()..];
            let Some(close) = rest.find(')') else { break };
            let name = rest[..close].trim().to_string();
            let line = rest[close..].lines().next().unwrap_or("");
            let set: BTreeSet<String> = MEMORY_ORDERINGS
                .iter()
                .filter(|o| line.contains(*o))
                .map(|o| (*o).to_string())
                .collect();
            if !name.is_empty() && !set.is_empty() {
                policies
                    .entry(name)
                    .or_insert_with(|| (BTreeSet::new(), decl_line))
                    .0
                    .extend(set);
            }
            rest = &rest[close + 1..];
        }
    }

    // ---- wire-format strings, consts, and caps identifiers.
    // A parse context: `==`/`!=`/`=>` or a parse-ish call within a
    // small neighborhood of the site.
    let parse_ctx_at = |ci: usize| -> bool {
        let lo = ci.saturating_sub(5);
        let hi = (ci + 4).min(code.len().saturating_sub(1));
        for j in lo..=hi {
            if j == ci {
                continue;
            }
            match tok(j).map(|t| (t.kind, t.text)) {
                Some((TokenKind::Punct('='), _))
                    if is_punct(j + 1, '=')
                        || is_punct(j + 1, '>')
                        || is_punct(j.wrapping_sub(1), '!') =>
                {
                    return true;
                }
                Some((
                    TokenKind::Ident,
                    "strip_prefix" | "starts_with" | "contains" | "find" | "eq" | "matches",
                )) => {
                    return true;
                }
                _ => {}
            }
        }
        false
    };
    let mut strings = Vec::new();
    let mut consts = BTreeMap::new();
    let mut caps = Vec::new();
    for ci in 0..code.len() {
        let Some(t) = tok(ci) else { continue };
        match t.kind {
            TokenKind::Str | TokenKind::RawStr => {
                let fmts = formats_in(t.text);
                if !fmts.is_empty() {
                    // `const NAME: &str = "ppm-x vN"` binds the format
                    // to the constant for cross-file tracking.
                    if fmts.len() == 1 {
                        let mut b = ci;
                        while b > 0 && !is_ident(b, "const") && ci - b < 8 {
                            b -= 1;
                        }
                        if is_ident(b, "const") {
                            if let Some(n) = tok(b + 1).filter(|n| n.kind == TokenKind::Ident) {
                                consts.insert(n.text.to_string(), fmts[0].clone());
                            }
                        }
                    }
                    strings.push(StrSite {
                        formats: fmts,
                        line: t.line,
                        col: t.col,
                        in_test: in_test(ci),
                        parse_ctx: parse_ctx_at(ci),
                    });
                }
                // `{SCHEMA_CONST}` interpolations inside format strings.
                let mut rest = t.text;
                while let Some(at) = rest.find('{') {
                    rest = &rest[at + 1..];
                    let end = rest.find(['}', ':']).unwrap_or(0);
                    let name = &rest[..end];
                    if is_caps_ident(name) {
                        caps.push(CapsSite {
                            name: name.to_string(),
                            line: t.line,
                            col: t.col,
                            in_test: in_test(ci),
                            parse_ctx: parse_ctx_at(ci),
                        });
                    }
                }
            }
            TokenKind::Ident if is_caps_ident(t.text) => {
                caps.push(CapsSite {
                    name: t.text.to_string(),
                    line: t.line,
                    col: t.col,
                    in_test: in_test(ci),
                    parse_ctx: parse_ctx_at(ci),
                });
            }
            _ => {}
        }
    }

    FileIndex {
        rel: rel.to_string(),
        crate_name: crate_of(rel),
        source: source.to_string(),
        lines: source.lines().map(str::to_string).collect(),
        allows,
        regions,
        locks,
        atomics,
        policies,
        strings,
        consts,
        caps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_in_extracts_version_strings() {
        assert_eq!(formats_in("\"ppm-bench v1\""), vec!["ppm-bench v1"]);
        assert_eq!(
            formats_in(r#"{"a":"ppm-ledger v0","b":"ppm-ledger v1"}"#),
            vec!["ppm-ledger v0", "ppm-ledger v1"]
        );
        assert!(formats_in("ppm-bench").is_empty());
        assert!(formats_in("ppm- v1").is_empty());
    }

    #[test]
    fn lock_held_regions_record_inner_locks_and_io() {
        let src = r#"
fn f(a: &M, b: &M, s: &S) {
    let g = a.field_a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let h = b.field_b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    s.stream.write_all(&[1]).ok();
    drop(g);
    let _ = h;
}
"#;
        let idx = index_file("crates/serve/src/x.rs", src);
        assert_eq!(idx.locks.len(), 2);
        let a = &idx.locks[0];
        assert_eq!(a.mutex, "field_a");
        assert_eq!(a.inner.len(), 1, "{a:?}");
        assert_eq!(a.inner[0].0, "field_b");
        assert_eq!(a.io.len(), 1, "{a:?}");
        assert_eq!(a.io[0].0, "write_all");
        let b = &idx.locks[1];
        assert_eq!(b.mutex, "field_b");
        assert!(b.inner.is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_the_statement() {
        let src = r#"
fn f(a: &M, b: &M) {
    a.first.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(1);
    b.second.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(2);
}
"#;
        let idx = index_file("crates/serve/src/x.rs", src);
        assert_eq!(idx.locks.len(), 2);
        assert!(idx.locks[0].inner.is_empty(), "{:?}", idx.locks[0]);
    }

    #[test]
    fn atomics_carry_orderings_and_receiver() {
        let src = r#"
fn f(s: &S) {
    s.depth.fetch_add(1, Ordering::SeqCst);
    s.sec.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed).ok();
}
"#;
        let idx = index_file("crates/exec/src/x.rs", src);
        assert_eq!(idx.atomics.len(), 2);
        assert_eq!(idx.atomics[0].atomic, "depth");
        assert_eq!(idx.atomics[0].orderings, vec!["SeqCst"]);
        assert_eq!(idx.atomics[1].orderings, vec!["AcqRel", "Relaxed"]);
    }

    #[test]
    fn policies_parse_from_comments() {
        let src = "// atomic-policy(depth): SeqCst — pairs the gauge with submits\nfn f() {}\n";
        let idx = index_file("crates/exec/src/x.rs", src);
        assert_eq!(
            idx.policies.get("depth"),
            Some(&(BTreeSet::from(["SeqCst".to_string()]), 1))
        );
    }

    #[test]
    fn spawn_roots_and_fn_regions_carry_calls_and_panics() {
        let src = r#"
fn helper(x: Option<u32>) -> u32 { x.unwrap() }
fn main_loop() {
    std::thread::spawn(move || {
        helper(None);
    });
}
"#;
        let idx = index_file("crates/serve/src/x.rs", src);
        let root = idx.regions.iter().find(|r| r.is_root).expect("spawn root");
        assert!(root.calls.contains(&"helper".to_string()), "{root:?}");
        let helper = idx
            .regions
            .iter()
            .find(|r| r.name == "helper")
            .expect("helper fn");
        assert_eq!(helper.panics.len(), 1);
        assert!(!helper.panics[0].masked);
    }

    #[test]
    fn catch_unwind_masks_panics_and_calls() {
        let src = r#"
fn worker() {
    let r = std::panic::catch_unwind(|| risky().unwrap());
    let _ = r;
}
"#;
        let idx = index_file("crates/exec/src/x.rs", src);
        let worker = idx
            .regions
            .iter()
            .find(|r| r.name == "worker")
            .expect("worker fn");
        assert!(worker.panics.iter().all(|p| p.masked), "{worker:?}");
        assert!(
            !worker.calls.contains(&"risky".to_string()),
            "masked calls must not become edges: {worker:?}"
        );
    }

    #[test]
    fn impl_blocks_qualify_fn_names() {
        let src = "struct T;\nimpl T {\n    fn m(&self) {}\n}\nimpl Drop for T {\n    fn drop(&mut self) {}\n}\n";
        let idx = index_file("crates/serve/src/x.rs", src);
        let m = idx.regions.iter().find(|r| r.name == "m").expect("m");
        assert_eq!(m.qual_name.as_deref(), Some("T::m"));
        let d = idx.regions.iter().find(|r| r.name == "drop").expect("drop");
        assert_eq!(d.qual_name.as_deref(), Some("T::drop"));
    }

    #[test]
    fn wire_format_consts_and_interpolations_are_tracked() {
        let src = r#"
pub const TRACEZ_SCHEMA: &str = "ppm-tracez v1";
fn render() -> String {
    format!("{{\"schema\":\"{TRACEZ_SCHEMA}\"}}")
}
"#;
        let idx = index_file("crates/serve/src/x.rs", src);
        assert_eq!(
            idx.consts.get("TRACEZ_SCHEMA"),
            Some(&"ppm-tracez v1".to_string())
        );
        assert!(idx
            .caps
            .iter()
            .any(|c| c.name == "TRACEZ_SCHEMA" && !c.in_test));
    }

    #[test]
    fn tests_directory_is_all_test_code() {
        let src = "fn t() { None::<u32>.unwrap(); }\n";
        let idx = index_file("tests/it.rs", src);
        let t = idx.regions.iter().find(|r| r.name == "t").expect("t");
        assert!(t.in_test);
        assert_eq!(idx.crate_name, "tests");
    }
}
