//! ppm-analyze: cross-crate semantic analysis for this workspace.
//!
//! `ppm lint` checks token-local invariants (a stray `unwrap`, a
//! `HashMap` in a deterministic crate). This crate answers the
//! questions a single token window cannot: *is the lock graph acyclic?
//! does every `Ordering::` use match a declared policy? can a worker
//! thread reach a panic outside `catch_unwind`? does every emitted
//! wire-format string have a parser and a golden test? do the CLI's
//! exit codes, usage text, and README agree?*
//!
//! It is built on the `ppm-lint` lexer: [`items`] runs one item-level
//! pass per file — function bodies, call edges, spawn-closure roots,
//! `.lock()` held regions, atomic-ordering sites, version strings —
//! and the five analyses ([`lockorder`], [`atomics`], [`panics`],
//! [`wire`], [`exitcode`]) consume those owned indices. No AST crate,
//! no dependencies: the workspace's own style discipline keeps the
//! token-level approximation honest, and the false-positive escape
//! hatch is the same allowlist machinery lint uses —
//! `analyze:allow(<rule>)` inline comments and `scripts/lint.conf`
//! entries (both tools share one rule namespace; see
//! [`ppm_lint::rules::ANALYZE_RULE_NAMES`]).
//!
//! Scope: everything `ppm lint` scans **plus** the `tests/` tree (wire
//! formats live in golden tests by design) and `README.md` (the
//! exit-code table is part of the CLI contract).

pub mod atomics;
pub mod exitcode;
pub mod items;
pub mod lockorder;
pub mod panics;
pub mod report;
pub mod wire;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub use ppm_lint::{Config, Diagnostic};
pub use report::{Report, RULES, SCHEMA};

use items::FileIndex;

/// Errors from walking and reading workspace sources.
#[derive(Debug)]
#[non_exhaustive]
pub enum AnalyzeError {
    /// A directory or file could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying failure.
        error: std::io::Error,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Io { path, error } => {
                write!(f, "cannot read {}: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for AnalyzeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalyzeError::Io { error, .. } => Some(error),
        }
    }
}

impl From<ppm_lint::LintError> for AnalyzeError {
    fn from(e: ppm_lint::LintError) -> Self {
        match e {
            ppm_lint::LintError::Io { path, error } => AnalyzeError::Io { path, error },
            // LintError is #[non_exhaustive]; any future variant still
            // reads best as an I/O-shaped walk failure here.
            other => AnalyzeError::Io {
                path: PathBuf::new(),
                error: std::io::Error::other(other.to_string()),
            },
        }
    }
}

/// Enumerates the files this tool scans: everything
/// [`ppm_lint::workspace_files`] covers plus `tests/*.rs`, as sorted
/// workspace-relative `/`-separated paths.
///
/// # Errors
///
/// [`AnalyzeError::Io`] when a directory listing fails.
pub fn analyze_files(root: &Path) -> Result<Vec<String>, AnalyzeError> {
    let mut rels = ppm_lint::workspace_files(root)?;
    let tests = root.join("tests");
    if tests.is_dir() {
        collect_rs(root, "tests", &mut rels)?;
    }
    rels.sort();
    rels.dedup();
    Ok(rels)
}

/// Recursively collects `.rs` files under `root/rel_dir` into `out`,
/// in sorted order.
fn collect_rs(root: &Path, rel_dir: &str, out: &mut Vec<String>) -> Result<(), AnalyzeError> {
    let dir = root.join(rel_dir);
    let io = |error: std::io::Error| AnalyzeError::Io {
        path: dir.clone(),
        error,
    };
    let mut names = Vec::new();
    for entry in std::fs::read_dir(&dir).map_err(io)? {
        names.push(
            entry
                .map_err(io)?
                .file_name()
                .to_string_lossy()
                .into_owned(),
        );
    }
    names.sort();
    for name in names {
        let rel = format!("{rel_dir}/{name}");
        if root.join(&rel).is_dir() {
            collect_rs(root, &rel, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Runs all five analyses over the workspace at `root`, honoring the
/// shared allowlist `conf` and inline `analyze:allow(<rule>)` comments.
/// Diagnostics are sorted by `(path, line, rule, col)`.
///
/// # Errors
///
/// [`AnalyzeError::Io`] when a scanned directory or file cannot be
/// read.
pub fn analyze_workspace(root: &Path, conf: &Config) -> Result<Report, AnalyzeError> {
    let rels = analyze_files(root)?;
    let mut files = Vec::with_capacity(rels.len());
    for rel in &rels {
        let full = root.join(rel);
        let source = std::fs::read_to_string(&full).map_err(|error| AnalyzeError::Io {
            path: full.clone(),
            error,
        })?;
        files.push(items::index_file(rel, &source));
    }
    let readme = std::fs::read_to_string(root.join("README.md")).ok();

    let mut diagnostics = Vec::new();
    diagnostics.extend(lockorder::check(&files));
    diagnostics.extend(atomics::check(&files));
    diagnostics.extend(panics::check(&files));
    diagnostics.extend(wire::check(&files));
    diagnostics.extend(exitcode::check(&files, readme.as_deref()));

    // Suppression: an inline `analyze:allow(<rule>)` on or above the
    // line, or a `lint.conf` entry whose substring matches the line.
    let by_rel: BTreeMap<&str, &FileIndex> = files.iter().map(|f| (f.rel.as_str(), f)).collect();
    let readme_lines: Vec<&str> = readme
        .as_deref()
        .map(|r| r.lines().collect())
        .unwrap_or_default();
    diagnostics.retain(|d| {
        let idx = by_rel.get(d.path.as_str());
        if let Some(f) = idx {
            if f.allows.contains(&(d.rule.to_string(), d.line)) {
                return false;
            }
        }
        let line_text = if d.path == "README.md" {
            readme_lines
                .get(d.line.saturating_sub(1) as usize)
                .copied()
                .unwrap_or("")
        } else {
            idx.and_then(|f| f.lines.get(d.line.saturating_sub(1) as usize))
                .map(String::as_str)
                .unwrap_or("")
        };
        !conf.allows(d.rule, line_text)
    });
    diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.col).cmp(&(b.path.as_str(), b.line, b.rule, b.col))
    });
    Ok(Report {
        files_scanned: files.len(),
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(root: &Path, rel: &str, text: &str) {
        let full = root.join(rel);
        std::fs::create_dir_all(full.parent().expect("parent")).expect("mkdir");
        std::fs::write(full, text).expect("write fixture");
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppm-analyze-{tag}-{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).expect("clean temp root");
        }
        std::fs::create_dir_all(&dir).expect("mkdir temp root");
        dir
    }

    #[test]
    fn walker_includes_tests_tree() {
        let root = temp_root("walk");
        write(&root, "src/main.rs", "fn main() {}");
        write(&root, "crates/core/src/lib.rs", "pub fn f() {}");
        write(&root, "tests/it.rs", "fn t() {}");
        let files = analyze_files(&root).expect("walk");
        assert_eq!(
            files,
            vec!["crates/core/src/lib.rs", "src/main.rs", "tests/it.rs"]
        );
        std::fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn findings_sort_and_inline_allows_suppress() {
        let root = temp_root("allows");
        write(
            &root,
            "crates/serve/src/a.rs",
            "fn f(s: &S) {\n    // analyze:allow(atomic-ordering) gauge pairs with recv\n    s.q.store(1, Ordering::SeqCst);\n    s.r.store(1, Ordering::SeqCst);\n}\n",
        );
        let report = analyze_workspace(&root, &Config::empty()).expect("analyze");
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        assert!(
            report.diagnostics[0].message.contains('r'),
            "{:?}",
            report.diagnostics
        );
        std::fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn conf_allowlist_suppresses_by_substring() {
        let root = temp_root("conf");
        write(
            &root,
            "crates/serve/src/a.rs",
            "fn f(s: &S) {\n    s.q.store(1, Ordering::SeqCst);\n}\n",
        );
        let conf = Config::parse("allow atomic-ordering s.q.store(1\n").expect("conf");
        let report = analyze_workspace(&root, &conf).expect("analyze");
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        std::fs::remove_dir_all(&root).expect("cleanup");
    }
}
