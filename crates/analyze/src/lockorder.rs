//! Lock-order analysis: the acquired-while-held graph must be acyclic,
//! and nothing may block on I/O or a channel while holding a guard.
//!
//! Scope: the concurrent crates (`telemetry`, `live`, `serve`, `exec`).
//! A mutex's identity is `<crate>:<receiver field>` — instances sharing
//! a field name collapse into one node, which over-approximates (two
//! `records` shards become one node) but can only *add* edges, never
//! hide one. Edges come from lexical nesting inside a guard's held
//! region, plus one level of call expansion: if `f` locks `a` and calls
//! `g`, and `g` locks `b`, then `a → b`. Cycles and re-entrant
//! acquisitions are reported; so is any blocking call from
//! [`items::FileIndex::locks`]' I/O list made while held.

use std::collections::{BTreeMap, BTreeSet};

use ppm_lint::Diagnostic;

use crate::items::FileIndex;

/// Crates whose mutexes participate in the lock graph.
const SCOPE: [&str; 4] = ["telemetry", "live", "serve", "exec"];

/// One directed edge `outer → inner` with its first witness site.
#[derive(Debug, Clone)]
struct Edge {
    inner: String,
    path: String,
    line: u32,
    col: u32,
}

/// Runs the analysis over the indexed workspace.
pub fn check(files: &[FileIndex]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Per-crate map: fn name (bare and qualified) → mutexes it locks
    // directly, for one-level call expansion.
    let mut fn_locks: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    for f in files
        .iter()
        .filter(|f| SCOPE.contains(&f.crate_name.as_str()))
    {
        for r in f.regions.iter().filter(|r| !r.is_root && !r.in_test) {
            if r.locks.is_empty() {
                continue;
            }
            let keys = std::iter::once(r.name.clone()).chain(r.qual_name.clone());
            for key in keys {
                fn_locks
                    .entry((f.crate_name.clone(), key))
                    .or_default()
                    .extend(r.locks.iter().cloned());
            }
        }
    }

    // Build the edge set. BTreeMap keeps edge iteration deterministic.
    let mut edges: BTreeMap<String, Vec<Edge>> = BTreeMap::new();
    let mut add_edge = |outer: &str, inner: &str, path: &str, line: u32, col: u32| {
        let list = edges.entry(outer.to_string()).or_default();
        if !list.iter().any(|e| e.inner == inner) {
            list.push(Edge {
                inner: inner.to_string(),
                path: path.to_string(),
                line,
                col,
            });
        }
    };

    for f in files
        .iter()
        .filter(|f| SCOPE.contains(&f.crate_name.as_str()))
    {
        for acq in f.locks.iter().filter(|a| !a.in_test) {
            let outer = format!("{}:{}", f.crate_name, acq.mutex);

            // Direct lexical nesting. A same-name inner acquisition is
            // a re-entrant lock: `std::sync::Mutex` is not recursive,
            // so this deadlocks on the spot.
            for (inner_mutex, line, col) in &acq.inner {
                let inner = format!("{}:{}", f.crate_name, inner_mutex);
                if inner == outer {
                    diags.push(Diagnostic {
                        rule: "lock-order",
                        path: f.rel.clone(),
                        line: *line,
                        col: *col,
                        message: format!(
                            "`{inner_mutex}` locked at line {line} while the guard from \
                             line {} is still held — a re-entrant `Mutex::lock` deadlocks",
                            acq.line
                        ),
                    });
                } else {
                    add_edge(&outer, &inner, &f.rel, *line, *col);
                }
            }

            // One-level call expansion: callee's direct locks become
            // edges from the held mutex. Same-name self edges from
            // expansion are skipped — bare-name resolution is too
            // coarse to call them deadlocks.
            for callee in &acq.calls {
                let bare = callee.rsplit(':').next().unwrap_or(callee);
                for key in [callee.as_str(), bare] {
                    if let Some(locks) = fn_locks.get(&(f.crate_name.clone(), key.to_string())) {
                        for m in locks {
                            let inner = format!("{}:{}", f.crate_name, m);
                            if inner != outer {
                                add_edge(&outer, &inner, &f.rel, acq.line, acq.col);
                            }
                        }
                    }
                    if key == bare {
                        break;
                    }
                }
            }

            // Blocking I/O or channel ops while held.
            for (io, line, col) in &acq.io {
                diags.push(Diagnostic {
                    rule: "lock-order",
                    path: f.rel.clone(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "`.{io}(...)` called while holding `{outer}` (locked at line {}) — \
                         blocking I/O under a lock stalls every contender; copy the data \
                         out, drop the guard, then do the I/O",
                        acq.line
                    ),
                });
            }
        }
    }

    // Cycle detection: iterative DFS with a coloring, visiting nodes in
    // sorted order so the reported cycle set is deterministic.
    let nodes: BTreeSet<String> = edges
        .iter()
        .flat_map(|(k, v)| std::iter::once(k.clone()).chain(v.iter().map(|e| e.inner.clone())))
        .collect();
    // 0 = unvisited, 1 = on the current DFS path, 2 = done.
    let mut color: BTreeMap<&str, u8> = nodes.iter().map(|n| (n.as_str(), 0u8)).collect();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    const NO_EDGES: &[Edge] = &[];
    for start in &nodes {
        if color.get(start.as_str()).copied() != Some(0) {
            continue;
        }
        // Stack of (node, next edge index); `path` mirrors the stack.
        let mut stack: Vec<(&str, usize)> = vec![(start.as_str(), 0)];
        let mut path: Vec<&str> = vec![start.as_str()];
        if let Some(c) = color.get_mut(start.as_str()) {
            *c = 1;
        }
        while let Some(&(node, next)) = stack.last() {
            let node_edges = edges.get(node).map(Vec::as_slice).unwrap_or(NO_EDGES);
            let Some(edge) = node_edges.get(next) else {
                if let Some(c) = color.get_mut(node) {
                    *c = 2;
                }
                stack.pop();
                path.pop();
                continue;
            };
            if let Some(top) = stack.last_mut() {
                top.1 += 1;
            }
            match color.get(edge.inner.as_str()).copied().unwrap_or(2) {
                0 => {
                    if let Some(c) = color.get_mut(edge.inner.as_str()) {
                        *c = 1;
                    }
                    stack.push((edge.inner.as_str(), 0));
                    path.push(edge.inner.as_str());
                }
                1 => {
                    // Back edge: the cycle is the path suffix from the
                    // first occurrence of the target, rotated to its
                    // smallest node for deduplication.
                    let from = path.iter().position(|n| *n == edge.inner).unwrap_or(0);
                    let mut cycle: Vec<&str> = path[from..].to_vec();
                    let min = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, n)| **n)
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min);
                    let head = cycle.first().copied().unwrap_or("");
                    let key = cycle.join(" -> ");
                    if reported.insert(key.clone()) {
                        diags.push(Diagnostic {
                            rule: "lock-order",
                            path: edge.path.clone(),
                            line: edge.line,
                            col: edge.col,
                            message: format!(
                                "lock cycle: {key} -> {head} — two threads taking these \
                                 in opposite order deadlock; impose one acquisition order"
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::index_file;

    #[test]
    fn opposite_order_acquisitions_report_one_cycle() {
        let a = index_file(
            "crates/serve/src/a.rs",
            r#"
fn f(s: &S) {
    let g = s.first.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let h = s.second.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = (g, h);
}
fn g(s: &S) {
    let h = s.second.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let g = s.first.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = (g, h);
}
"#,
        );
        let diags = check(&[a]);
        let cycles: Vec<_> = diags
            .iter()
            .filter(|d| d.message.contains("lock cycle"))
            .collect();
        assert_eq!(cycles.len(), 1, "{diags:?}");
        assert!(cycles[0].message.contains("serve:first"), "{cycles:?}");
        assert!(cycles[0].message.contains("serve:second"), "{cycles:?}");
    }

    #[test]
    fn nested_order_without_reversal_is_clean() {
        let a = index_file(
            "crates/serve/src/a.rs",
            r#"
fn f(s: &S) {
    let g = s.first.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let h = s.second.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = (g, h);
}
"#,
        );
        assert!(check(&[a]).is_empty());
    }

    #[test]
    fn io_under_lock_is_reported() {
        let a = index_file(
            "crates/live/src/a.rs",
            r#"
fn f(s: &S, out: &mut W) {
    let g = s.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    out.write_all(b"x").ok();
    let _ = g;
}
"#,
        );
        let diags = check(&[a]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("write_all"), "{diags:?}");
        assert!(diags[0].message.contains("live:state"), "{diags:?}");
    }

    #[test]
    fn call_expansion_adds_edges_across_functions() {
        let a = index_file(
            "crates/telemetry/src/a.rs",
            r#"
fn outer(s: &S) {
    let g = s.first.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    helper(s);
    let _ = g;
}
fn helper(s: &S) {
    s.second.lock().unwrap_or_else(std::sync::PoisonError::into_inner).touch();
}
fn reversed(s: &S) {
    let g = s.second.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let h = s.first.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = (g, h);
}
"#,
        );
        let diags = check(&[a]);
        assert!(
            diags.iter().any(|d| d.message.contains("lock cycle")),
            "{diags:?}"
        );
    }

    #[test]
    fn reentrant_lock_is_a_finding() {
        let a = index_file(
            "crates/exec/src/a.rs",
            r#"
fn f(s: &S) {
    let g = s.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let h = s.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = (g, h);
}
"#,
        );
        let diags = check(&[a]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("re-entrant"), "{diags:?}");
    }

    #[test]
    fn out_of_scope_crates_and_tests_are_ignored() {
        let a = index_file(
            "crates/linalg/src/a.rs",
            "fn f(s: &S, out: &mut W) {\n    let g = s.state.lock().unwrap();\n    out.write_all(b\"x\").ok();\n    let _ = g;\n}\n",
        );
        let b = index_file(
            "crates/serve/src/b.rs",
            "#[cfg(test)]\nmod tests {\n    fn f(s: &S, out: &mut W) {\n        let g = s.state.lock().unwrap();\n        out.write_all(b\"x\").ok();\n        let _ = g;\n    }\n}\n",
        );
        assert!(check(&[a, b]).is_empty());
    }
}
