//! Panic-reachability: a panic on a worker or accept thread kills the
//! thread (or poisons the pool) instead of failing one request, so
//! every `unwrap`/`expect`/slice-index reachable from a spawn root must
//! sit under `catch_unwind` or carry a justified
//! `analyze:allow(panic-reachability)`.
//!
//! Roots are the argument regions of `thread::spawn(...)` /
//! `Builder::spawn(...)` and `ServicePool::{new,with_worker_ids}(...)`
//! calls in the serving crates (`live`, `serve`, `exec`). From each
//! root, reachability follows call edges by name *within the same
//! crate*: qualified calls (`Type::fn`) resolve exactly, bare and
//! method calls resolve to any same-crate function of that name — an
//! over-approximation that can add edges but never hide one.
//! Cross-crate calls are not followed; each crate's own spawn sites
//! root its own analysis.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ppm_lint::Diagnostic;

use crate::items::FileIndex;

/// Crates whose spawn sites root the traversal.
const ROOT_CRATES: [&str; 3] = ["live", "serve", "exec"];

/// Runs the analysis over the indexed workspace.
pub fn check(files: &[FileIndex]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for krate in ROOT_CRATES {
        // Name-resolution maps for this crate: (file idx, region idx).
        let mut bare: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
        let mut qual: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
        let mut roots: Vec<(usize, usize)> = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            if f.crate_name != krate {
                continue;
            }
            for (ri, r) in f.regions.iter().enumerate() {
                if r.in_test {
                    continue;
                }
                if r.is_root {
                    roots.push((fi, ri));
                } else {
                    bare.entry(r.name.as_str()).or_default().push((fi, ri));
                    if let Some(q) = &r.qual_name {
                        qual.entry(q.as_str()).or_default().push((fi, ri));
                    }
                }
            }
        }

        // BFS from every root; remember which root first reached each
        // region so findings can name their thread.
        let mut reached: BTreeMap<(usize, usize), (usize, usize)> = BTreeMap::new();
        let mut queue: VecDeque<((usize, usize), (usize, usize))> = VecDeque::new();
        for &root in &roots {
            queue.push_back((root, root));
        }
        while let Some((at, via_root)) = queue.pop_front() {
            if reached.contains_key(&at) {
                continue;
            }
            reached.insert(at, via_root);
            let region = &files[at.0].regions[at.1];
            for call in &region.calls {
                // Qualified calls resolve exactly; bare names resolve
                // to every same-crate fn of that name.
                let targets = if call.contains(':') {
                    qual.get(call.as_str())
                } else {
                    bare.get(call.as_str())
                };
                for &next in targets.into_iter().flatten() {
                    if !reached.contains_key(&next) {
                        queue.push_back((next, via_root));
                    }
                }
            }
        }

        let mut seen: BTreeSet<(String, u32, u32)> = BTreeSet::new();
        for (&(fi, ri), &(root_fi, root_ri)) in &reached {
            let f = &files[fi];
            let region = &f.regions[ri];
            let root = &files[root_fi].regions[root_ri];
            let root_path = &files[root_fi].rel;
            for p in &region.panics {
                if p.masked {
                    continue;
                }
                if !seen.insert((f.rel.clone(), p.line, p.col)) {
                    continue;
                }
                let where_ = if region.is_root {
                    "directly on the thread".to_string()
                } else {
                    format!(
                        "via `{}`",
                        region.qual_name.as_deref().unwrap_or(&region.name)
                    )
                };
                diags.push(Diagnostic {
                    rule: "panic-reachability",
                    path: f.rel.clone(),
                    line: p.line,
                    col: p.col,
                    message: format!(
                        "{} reachable {where_} from {} ({root_path}) without catch_unwind \
                         — a panic here kills the thread, not the request; return a typed \
                         error or justify with analyze:allow(panic-reachability)",
                        p.what, root.name
                    ),
                });
            }
        }
    }
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.col).cmp(&(b.path.as_str(), b.line, b.col)));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::index_file;

    #[test]
    fn panic_in_spawned_closure_is_reported() {
        let f = index_file(
            "crates/serve/src/a.rs",
            r#"
fn start() {
    std::thread::spawn(move || {
        let v: Option<u32> = None;
        let _ = v.unwrap();
    });
}
"#,
        );
        let diags = check(&[f]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("directly on the thread"),
            "{diags:?}"
        );
    }

    #[test]
    fn panic_reached_through_a_call_chain_is_reported() {
        let f = index_file(
            "crates/live/src/a.rs",
            r#"
fn inner(x: Option<u32>) -> u32 { x.expect("set") }
fn outer(x: Option<u32>) -> u32 { inner(x) }
fn start() {
    std::thread::spawn(move || {
        outer(None);
    });
}
"#,
        );
        let diags = check(&[f]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("via `inner`"), "{diags:?}");
    }

    #[test]
    fn catch_unwind_masks_the_panic() {
        let f = index_file(
            "crates/exec/src/a.rs",
            r#"
fn start() {
    std::thread::spawn(move || {
        let r = std::panic::catch_unwind(|| {
            let v: Option<u32> = None;
            v.unwrap()
        });
        let _ = r;
    });
}
"#,
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn unreachable_panics_and_other_crates_are_quiet() {
        let f = index_file(
            "crates/serve/src/a.rs",
            "fn never_spawned(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        let g = index_file(
            "crates/linreg/src/a.rs",
            "fn start() {\n    std::thread::spawn(move || { None::<u32>.unwrap(); });\n}\n",
        );
        assert!(check(&[f, g]).is_empty());
    }

    #[test]
    fn worker_pool_handlers_are_roots() {
        let f = index_file(
            "crates/serve/src/a.rs",
            r#"
fn start() {
    let pool = ServicePool::with_worker_ids("serve", 4, 64, move |_w, item| {
        handle(item);
    });
}
fn handle(item: Option<u32>) { item.expect("item"); }
"#,
        );
        let diags = check(&[f]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("worker-pool"), "{diags:?}");
    }
}
