//! Findings and their human / JSON renderings.
//!
//! Reuses [`ppm_lint::Diagnostic`] — a semantic finding is still a
//! `(rule, path, line, col, message)` tuple — and mirrors the lint
//! report's shape so `ppm analyze --format json` (schema
//! `ppm-analyze v1`) drops into the same verify.sh / results-archive
//! plumbing as `ppm lint --format json`.

use ppm_lint::Diagnostic;
use ppm_obs::Json;

/// An analyze rule's name and one-line description.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable kebab-case rule name (used in `analyze:allow` and
    /// `scripts/lint.conf`).
    pub name: &'static str,
    /// What the rule enforces, for `--format json` consumers and docs.
    pub summary: &'static str,
}

/// All five analyses, in reporting order.
pub const RULES: [RuleInfo; 5] = [
    RuleInfo {
        name: "lock-order",
        summary: "acquired-while-held mutex graph must be acyclic, and no blocking \
                  I/O or channel op may run under a lock",
    },
    RuleInfo {
        name: "atomic-ordering",
        summary: "every non-Relaxed Ordering:: use needs a declared \
                  atomic-policy(<name>) comment; mixed orderings must be declared",
    },
    RuleInfo {
        name: "panic-reachability",
        summary: "unwrap/expect/slice-index reachable from worker or accept threads \
                  must sit under catch_unwind or carry a justified allow",
    },
    RuleInfo {
        name: "wire-format",
        summary: "every emitted `ppm-* vN` version string must be registered, \
                  parsed somewhere, and pinned by a golden test",
    },
    RuleInfo {
        name: "exit-code",
        summary: "CliError::exit_code(), the usage text, and README's exit-code \
                  table must agree on the full code set",
    },
];

/// The result of analyzing a file set.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// How many files were scanned (workspace sources plus `tests/`).
    pub files_scanned: usize,
    /// All findings, sorted by `(path, line, rule, col)`.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when no analysis fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the human form: one `file:line:col: rule: message` line
    /// per finding plus a one-line summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "ppm-analyze: {} file(s) scanned, {} finding(s)\n",
            self.files_scanned,
            self.diagnostics.len()
        ));
        out
    }

    /// Renders the JSON form (schema `ppm-analyze v1`), including the
    /// rule table so consumers can map names to descriptions.
    pub fn render_json(&self) -> String {
        let diags = self
            .diagnostics
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("rule".to_string(), Json::Str(d.rule.to_string())),
                    ("path".to_string(), Json::Str(d.path.clone())),
                    ("line".to_string(), Json::Int(i64::from(d.line))),
                    ("col".to_string(), Json::Int(i64::from(d.col))),
                    ("message".to_string(), Json::Str(d.message.clone())),
                ])
            })
            .collect();
        let rules = RULES
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("name".to_string(), Json::Str(r.name.to_string())),
                    ("summary".to_string(), Json::Str(r.summary.to_string())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            (
                "files_scanned".to_string(),
                Json::Int(self.files_scanned as i64),
            ),
            ("clean".to_string(), Json::Bool(self.is_clean())),
            ("diagnostics".to_string(), Json::Arr(diags)),
            ("rules".to_string(), Json::Arr(rules)),
        ])
        .dump()
    }
}

/// The JSON schema version string emitted by [`Report::render_json`].
pub const SCHEMA: &str = "ppm-analyze v1";

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            files_scanned: 40,
            diagnostics: vec![Diagnostic {
                rule: "lock-order",
                path: "crates/serve/src/x.rs".to_string(),
                line: 12,
                col: 9,
                message: "`send` called while holding `serve:records`".to_string(),
            }],
        }
    }

    #[test]
    fn human_form_is_compiler_style() {
        let text = sample().render_human();
        assert!(
            text.contains("crates/serve/src/x.rs:12:9: lock-order:"),
            "{text}"
        );
        assert!(text.contains("40 file(s) scanned, 1 finding(s)"), "{text}");
    }

    #[test]
    fn json_form_round_trips_with_schema_and_rule_table() {
        let json = Json::parse(&sample().render_json()).expect("valid JSON");
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("ppm-analyze v1")
        );
        assert_eq!(json.get("clean"), Some(&Json::Bool(false)));
        let rules_arr = match json.get("rules") {
            Some(Json::Arr(items)) => items,
            other => panic!("rules not an array: {other:?}"),
        };
        assert_eq!(rules_arr.len(), 5);
        assert_eq!(
            rules_arr[0].get("name").and_then(Json::as_str),
            Some("lock-order")
        );
    }

    #[test]
    fn rule_table_matches_the_shared_registry() {
        // The allowlist layer (ppm-lint) must know exactly the rules
        // this crate reports, or `analyze:allow(...)` entries would be
        // rejected as typos.
        let ours: Vec<&str> = RULES.iter().map(|r| r.name).collect();
        assert_eq!(ours, ppm_lint::rules::ANALYZE_RULE_NAMES.to_vec());
    }
}
