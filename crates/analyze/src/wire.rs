//! Wire-format drift: every `ppm-<name> vN` version string the
//! workspace emits must be registered here, referenced from a
//! parse/validation context somewhere, and pinned by a test.
//!
//! The analysis tracks version strings three ways: literal occurrences
//! in string tokens, `const NAME: &str = "ppm-x vN"` bindings followed
//! through SCREAMING_CASE identifier uses, and `{NAME}` interpolations
//! inside format strings. Sites inside `#[cfg(test)]` regions or the
//! `tests/` tree count as test coverage; sites near `==`/`!=`/`=>` or
//! parse-ish calls (`strip_prefix`, `starts_with`, `contains`, ...)
//! count as parse contexts. This registry file itself is excluded from
//! the site census — it is the spec, not a use — so a registry entry
//! whose real emitter disappears still goes stale loudly.

use std::collections::BTreeMap;

use ppm_lint::Diagnostic;

use crate::items::FileIndex;

/// Every wire format the workspace is allowed to emit. Adding a format
/// means adding it here *and* giving it an emitter, a parser, and a
/// golden test; removing an emitter means removing the entry.
pub const KNOWN_FORMATS: [&str; 12] = [
    "ppm-analyze v1",
    "ppm-bench v1",
    "ppm-buildz v1",
    "ppm-checkpoint v1",
    "ppm-eventz v1",
    "ppm-ledger v1",
    "ppm-lint v1",
    "ppm-loadtest v1",
    "ppm-report v1",
    "ppm-serve v1",
    "ppm-statusz v1",
    "ppm-tracez v1",
];

/// The registry's own file, excluded from the site census.
const REGISTRY_REL: &str = "crates/analyze/src/wire.rs";

#[derive(Debug, Clone)]
struct Site {
    rel: String,
    line: u32,
    col: u32,
    in_test: bool,
    parse_ctx: bool,
}

/// Runs the analysis over the indexed workspace.
pub fn check(files: &[FileIndex]) -> Vec<Diagnostic> {
    // Wire-format constants may be used from other files than the one
    // defining them, so the const table is workspace-wide.
    let mut consts: BTreeMap<&str, &str> = BTreeMap::new();
    for f in files {
        for (name, fmt) in &f.consts {
            consts.insert(name.as_str(), fmt.as_str());
        }
    }

    let mut sites: BTreeMap<String, Vec<Site>> = BTreeMap::new();
    for f in files.iter().filter(|f| f.rel != REGISTRY_REL) {
        for s in &f.strings {
            for fmt in &s.formats {
                sites.entry(fmt.clone()).or_default().push(Site {
                    rel: f.rel.clone(),
                    line: s.line,
                    col: s.col,
                    in_test: s.in_test,
                    parse_ctx: s.parse_ctx,
                });
            }
        }
        for c in &f.caps {
            if let Some(fmt) = consts.get(c.name.as_str()) {
                sites.entry((*fmt).to_string()).or_default().push(Site {
                    rel: f.rel.clone(),
                    line: c.line,
                    col: c.col,
                    in_test: c.in_test,
                    parse_ctx: c.parse_ctx,
                });
            }
        }
    }

    let mut diags = Vec::new();

    // Unregistered emissions. Test code is exempt — negative fixtures
    // ("ppm-bench v2 must be rejected") are exactly what tests contain.
    for (fmt, fmt_sites) in &sites {
        if KNOWN_FORMATS.contains(&fmt.as_str()) {
            continue;
        }
        for s in fmt_sites.iter().filter(|s| !s.in_test) {
            diags.push(Diagnostic {
                rule: "wire-format",
                path: s.rel.clone(),
                line: s.line,
                col: s.col,
                message: format!(
                    "version string `{fmt}` is not in the wire-format registry \
                     ({REGISTRY_REL}) — register it with a parser and a golden test, \
                     or fix the string"
                ),
            });
        }
    }

    // Registered formats: stale entries, missing tests, missing parse
    // sites. Stale-entry detection only makes sense when the scanned
    // tree actually contains the registry (i.e. this workspace, not a
    // fixture tree).
    let registry_present = files.iter().any(|f| f.rel == REGISTRY_REL);
    for fmt in KNOWN_FORMATS {
        let fmt_sites = sites.get(fmt).map(Vec::as_slice).unwrap_or(&[]);
        let emit = fmt_sites.iter().find(|s| !s.in_test);
        match emit {
            None => {
                if registry_present {
                    diags.push(Diagnostic {
                        rule: "wire-format",
                        path: REGISTRY_REL.to_string(),
                        line: 0,
                        col: 0,
                        message: format!(
                            "registry entry `{fmt}` has no non-test emitter left in the \
                             workspace — remove the stale entry or restore the emitter"
                        ),
                    });
                }
            }
            Some(first) => {
                if !fmt_sites.iter().any(|s| s.in_test) {
                    diags.push(Diagnostic {
                        rule: "wire-format",
                        path: first.rel.clone(),
                        line: first.line,
                        col: first.col,
                        message: format!(
                            "`{fmt}` is emitted but no test pins it — add a golden test \
                             (tests/wire_formats.rs) so a version bump cannot ship silently"
                        ),
                    });
                }
                if !fmt_sites.iter().any(|s| s.parse_ctx) {
                    diags.push(Diagnostic {
                        rule: "wire-format",
                        path: first.rel.clone(),
                        line: first.line,
                        col: first.col,
                        message: format!(
                            "`{fmt}` is emitted but never parsed or validated — no \
                             `==`/`strip_prefix`/`starts_with` site references it; add a \
                             consumer-side check so producers cannot drift"
                        ),
                    });
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::index_file;

    #[test]
    fn unregistered_format_in_prod_code_is_reported() {
        let f = index_file(
            "crates/serve/src/a.rs",
            "pub fn schema() -> &'static str { \"ppm-bogus v7\" }\n",
        );
        let diags = check(&[f]);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("ppm-bogus v7") && d.message.contains("registry")),
            "{diags:?}"
        );
    }

    #[test]
    fn unregistered_format_in_test_code_is_fine() {
        let f = index_file(
            "tests/neg.rs",
            "fn t() { assert!(parse(\"ppm-bench v9\").is_err()); }\n",
        );
        let diags = check(&[f]);
        assert!(
            !diags.iter().any(|d| d.message.contains("ppm-bench v9")),
            "{diags:?}"
        );
    }

    #[test]
    fn emitted_format_without_test_or_parser_is_reported() {
        let f = index_file(
            "crates/obs/src/a.rs",
            "pub fn header() -> &'static str { \"ppm-ledger v1\" }\n",
        );
        let diags = check(&[f]);
        assert!(
            diags.iter().any(|d| d.message.contains("no test pins it")),
            "{diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("never parsed or validated")),
            "{diags:?}"
        );
    }

    #[test]
    fn parse_context_and_golden_test_satisfy_the_rule() {
        let emit = index_file(
            "crates/obs/src/a.rs",
            "pub fn header() -> &'static str { \"ppm-ledger v1\" }\n",
        );
        let test = index_file(
            "tests/wire.rs",
            "fn t() { assert!(header() == \"ppm-ledger v1\"); }\n",
        );
        let parse = index_file(
            "crates/obs/src/b.rs",
            "pub fn ok(h: &str) -> bool { h.starts_with(\"ppm-ledger v1\") }\n",
        );
        let diags = check(&[emit, test, parse]);
        assert!(
            !diags.iter().any(|d| d.message.contains("ppm-ledger v1")),
            "{diags:?}"
        );
    }

    #[test]
    fn const_bindings_carry_coverage_across_files() {
        let emit = index_file(
            "crates/serve/src/a.rs",
            "pub const TRACEZ_SCHEMA: &str = \"ppm-tracez v1\";\n",
        );
        let test = index_file(
            "tests/wire.rs",
            "fn t() { assert!(doc == TRACEZ_SCHEMA); }\n",
        );
        let diags = check(&[emit, test]);
        assert!(
            !diags.iter().any(|d| d.message.contains("ppm-tracez v1")),
            "{diags:?}"
        );
    }

    #[test]
    fn stale_registry_entries_fire_only_with_the_registry_present() {
        let lone = index_file(
            "crates/serve/src/a.rs",
            "pub fn schema() -> &'static str { \"ppm-serve v1\" }\n",
        );
        let diags = check(std::slice::from_ref(&lone));
        assert!(
            !diags.iter().any(|d| d.message.contains("stale entry")),
            "fixture trees must not see stale-entry findings: {diags:?}"
        );
        let registry = index_file(REGISTRY_REL, "// the registry file\n");
        let diags = check(&[lone, registry]);
        assert!(
            diags.iter().any(|d| d.message.contains("stale entry")),
            "{diags:?}"
        );
    }
}
