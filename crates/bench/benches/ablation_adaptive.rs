//! Ablation: adaptive sampling (the paper's future-work suggestion)
//! versus a one-shot latin hypercube at the same simulation budget.

use ppm_core::adaptive::{build_adaptive, AdaptiveConfig};
use ppm_core::builder::RbfModelBuilder;
use ppm_core::response::eval_batch;
use ppm_core::space::DesignSpace;
use ppm_experiments::{fmt, Report, Scale};
use ppm_workload::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let test_space = DesignSpace::paper_table2();
    let bench = Benchmark::Twolf;
    let response = scale.response(bench);
    let budget = scale.final_sample;

    let builder = RbfModelBuilder::new(space.clone(), scale.build_config(budget));
    let test = builder.test_points(&test_space, scale.test_points);
    let actual = eval_batch(&response, &test, 1).expect("clean batch");

    let mut report = Report::new(
        "ablation_adaptive",
        &format!("Ablation: adaptive sampling vs one-shot LHS ({bench}, budget={budget})"),
        &["strategy", "points", "mean_err_pct", "max_err_pct"],
    );

    // One-shot LHS at the full budget.
    let one_shot = builder.build(&response).expect("finite CPI responses");
    let s1 = one_shot.evaluate(&test, &actual);
    report.row(vec![
        "one-shot LHS (paper)".into(),
        one_shot.design.len().to_string(),
        fmt(s1.mean_pct, 2),
        fmt(s1.max_pct, 2),
    ]);

    // Adaptive: a third of the budget up front, the rest in batches.
    let config = AdaptiveConfig {
        initial_size: (budget / 3).max(10),
        batch_size: (budget / 6).max(5),
        budget,
        candidate_pool: 256,
        build: scale.build_config(budget),
    };
    let adaptive = build_adaptive(&space, &response, &config).expect("finite CPI responses");
    let s2 = adaptive.evaluate(&test, &actual);
    report.row(vec![
        "adaptive refinement".into(),
        adaptive.design.len().to_string(),
        fmt(s2.mean_pct, 2),
        fmt(s2.max_pct, 2),
    ]);
    report.emit();
    println!(
        "adaptive vs one-shot at equal budget: {:.2}% vs {:.2}% mean error",
        s2.mean_pct, s1.mean_pct
    );
}
