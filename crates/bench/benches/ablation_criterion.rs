//! Ablation: the model-selection criterion. The paper modified Orr's
//! software to use AICc; this ablation compares AICc against BIC and
//! GCV on the same samples.

use ppm_core::builder::RbfModelBuilder;
use ppm_core::response::eval_batch;
use ppm_core::space::DesignSpace;
use ppm_experiments::{fmt, Report, Scale};
use ppm_rbf::Criterion;
use ppm_workload::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let test_space = DesignSpace::paper_table2();
    let bench = Benchmark::Mcf;
    let response = scale.response(bench);
    let n = scale.final_sample;

    // One shared sample so only the criterion varies.
    let base_builder = RbfModelBuilder::new(space.clone(), scale.build_config(n));
    let (design, disc) = base_builder.select_sample().expect("valid sweep config");
    let responses = eval_batch(&response, &design, 1).expect("clean batch");
    let test = base_builder.test_points(&test_space, scale.test_points);
    let actual = eval_batch(&response, &test, 1).expect("clean batch");

    let mut report = Report::new(
        "ablation_criterion",
        &format!("Ablation: selection criterion ({bench}, n={n})"),
        &["criterion", "mean_err_pct", "max_err_pct", "centers", "p_min", "alpha"],
    );

    for criterion in [Criterion::Aicc, Criterion::Bic, Criterion::Gcv] {
        let mut config = scale.build_config(n);
        config.trainer.criterion = criterion;
        let builder = RbfModelBuilder::new(space.clone(), config);
        let built = builder
            .fit(design.clone(), responses.clone(), disc)
            .expect("finite CPI responses");
        let stats = built.evaluate(&test, &actual);
        report.row(vec![
            format!("{criterion:?}"),
            fmt(stats.mean_pct, 2),
            fmt(stats.max_pct, 2),
            built.model.network.num_centers().to_string(),
            built.model.p_min.to_string(),
            fmt(built.model.alpha, 0),
        ]);
    }
    report.emit();
    println!("(the paper uses AICc; all three should be in the same accuracy band, with BIC usually selecting fewer centers)");
}
