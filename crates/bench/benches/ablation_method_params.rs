//! Ablation: sensitivity of model accuracy to the method parameters
//! `p_min` and α away from the grid-searched optimum (paper §2.6 finds
//! the best by AICc; Table 4 reports the winners).

use ppm_core::builder::RbfModelBuilder;
use ppm_core::metrics::ErrorStats;
use ppm_core::response::eval_batch;
use ppm_core::space::DesignSpace;
use ppm_experiments::{fmt, Report, Scale};
use ppm_workload::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let test_space = DesignSpace::paper_table2();
    let bench = Benchmark::Mcf;
    let response = scale.response(bench);
    let n = scale.final_sample;

    let builder = RbfModelBuilder::new(space.clone(), scale.build_config(n));
    let (design, _) = builder.select_sample().expect("valid sweep config");
    let responses = eval_batch(&response, &design, 1).expect("clean batch");
    let test = builder.test_points(&test_space, scale.test_points);
    let actual = eval_batch(&response, &test, 1).expect("clean batch");

    let p_mins: &[usize] = &[1, 2, 4];
    let alphas: &[f64] = if scale.full {
        &[1.0, 2.0, 4.0, 7.0, 10.0, 14.0, 20.0]
    } else {
        &[1.0, 4.0, 7.0, 14.0]
    };

    let mut report = Report::new(
        "ablation_method_params",
        &format!("Ablation: (p_min, alpha) sensitivity ({bench}, n={n})"),
        &["p_min", "alpha", "aicc", "centers", "mean_err_pct"],
    );

    let mut best_by_aicc: Option<(f64, f64)> = None; // (aicc, mean_err)
    let mut best_err = f64::INFINITY;
    for &p_min in p_mins {
        for &alpha in alphas {
            let trainer = scale.trainer();
            let fitted = trainer.fit_fixed(
                &ppm_regtree::Dataset::new(design.clone(), responses.clone())
                    .expect("finite CPI responses"),
                p_min,
                alpha,
            );
            let predicted: Vec<f64> = test.iter().map(|p| fitted.network.predict(p)).collect();
            let stats = ErrorStats::from_predictions(&predicted, &actual);
            report.row(vec![
                p_min.to_string(),
                fmt(alpha, 0),
                fmt(fitted.score, 1),
                fitted.network.num_centers().to_string(),
                fmt(stats.mean_pct, 2),
            ]);
            if best_by_aicc.as_ref().is_none_or(|(a, _)| fitted.score < *a) {
                best_by_aicc = Some((fitted.score, stats.mean_pct));
            }
            best_err = best_err.min(stats.mean_pct);
        }
    }
    report.emit();
    let (_, aicc_err) = best_by_aicc.expect("grid evaluated");
    println!(
        "AICc-chosen combination test error {:.2}% vs oracle-best {:.2}% \
         (AICc should track the oracle without seeing test data)",
        aicc_err, best_err
    );
}
