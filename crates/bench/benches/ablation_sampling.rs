//! Ablation: does the paper's discrepancy-optimized latin hypercube
//! sampling actually beat plain LHS and uniform random sampling?
//!
//! Compares model accuracy (same trainer, same test set) when the
//! training sample is (a) the best-of-N LHS by L2-star discrepancy, (b)
//! a single LHS draw, (c) uniform random points.

use ppm_core::builder::RbfModelBuilder;
use ppm_core::response::eval_batch;
use ppm_core::space::DesignSpace;
use ppm_experiments::{fmt, Report, Scale};
use ppm_rng::Rng;
use ppm_sampling::discrepancy::l2_star;
use ppm_sampling::halton::halton_design;
use ppm_sampling::lhs::LatinHypercube;
use ppm_sampling::random::random_design;
use ppm_workload::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let test_space = DesignSpace::paper_table2();
    let bench = Benchmark::Twolf;
    let response = scale.response(bench);
    let n = scale.final_sample;

    let builder = RbfModelBuilder::new(space.clone(), scale.build_config(n));
    let test = builder.test_points(&test_space, scale.test_points);
    let actual = eval_batch(&response, &test, 1).expect("clean batch");

    let mut report = Report::new(
        "ablation_sampling",
        &format!("Ablation: sampling strategy ({bench}, n={n}, averaged over 3 seeds)"),
        &["strategy", "mean_discrepancy", "mean_err_pct", "max_err_pct"],
    );

    let seeds = [11u64, 22, 33];
    let strategies: [(&str, Box<dyn Fn(u64) -> Vec<Vec<f64>>>); 4] = [
        (
            "best-of-N LHS (paper)",
            Box::new(|seed| {
                let mut rng = Rng::seed_from_u64(seed);
                LatinHypercube::new(space.params(), n)
                    .best_of(scale.lhs_candidates, &mut rng)
                    .expect("non-zero candidates")
            }),
        ),
        (
            "single LHS",
            Box::new(|seed| {
                let mut rng = Rng::seed_from_u64(seed);
                LatinHypercube::new(space.params(), n).generate(&mut rng)
            }),
        ),
        (
            "uniform random",
            Box::new(|seed| {
                let mut rng = Rng::seed_from_u64(seed);
                random_design(space.params(), n, &mut rng)
            }),
        ),
        (
            "halton sequence",
            Box::new(|seed| halton_design(space.params(), n, 20 + seed)),
        ),
    ];

    let mut means = Vec::new();
    for (name, make) in &strategies {
        let mut err_sum = 0.0;
        let mut max_sum = 0.0;
        let mut disc_sum = 0.0;
        for &seed in &seeds {
            let design = make(seed);
            disc_sum += l2_star(&design);
            let responses = eval_batch(&response, &design, 1).expect("clean batch");
            let built = builder
                .fit(design, responses, f64::NAN)
                .expect("finite CPI responses");
            let stats = built.evaluate(&test, &actual);
            err_sum += stats.mean_pct;
            max_sum += stats.max_pct;
        }
        let k = seeds.len() as f64;
        report.row(vec![
            name.to_string(),
            fmt(disc_sum / k, 5),
            fmt(err_sum / k, 2),
            fmt(max_sum / k, 2),
        ]);
        means.push(err_sum / k);
    }
    report.emit();
    println!(
        "best-of-N LHS vs random: {:.2}% vs {:.2}% mean error ({})",
        means[0],
        means[2],
        if means[0] <= means[2] {
            "LHS no worse, as expected"
        } else {
            "random won here (small-sample noise)"
        }
    );
}
