//! Ablation: the center-selection strategy. The paper uses Orr's
//! tree-ordered selection; this compares it against plain greedy
//! forward selection over all tree nodes and against using every leaf
//! as a center (no selection).

use ppm_core::builder::RbfModelBuilder;
use ppm_core::metrics::ErrorStats;
use ppm_core::response::eval_batch;
use ppm_core::space::DesignSpace;
use ppm_experiments::{fmt, Report, Scale};
use ppm_rbf::{select_all_leaves, select_centers, select_centers_forward, SelectionConfig, SelectionResult};
use ppm_regtree::{Dataset, RegressionTree};
use ppm_workload::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let test_space = DesignSpace::paper_table2();
    let bench = Benchmark::Vortex;
    let response = scale.response(bench);
    let n = scale.final_sample;

    let builder = RbfModelBuilder::new(space.clone(), scale.build_config(n));
    let (design, _) = builder.select_sample().expect("valid sweep config");
    let responses = eval_batch(&response, &design, 1).expect("clean batch");
    let test = builder.test_points(&test_space, scale.test_points);
    let actual = eval_batch(&response, &test, 1).expect("clean batch");

    let data = Dataset::new(design, responses).expect("finite CPI responses");
    let tree = RegressionTree::fit(&data, 1);
    let config = SelectionConfig::with_alpha(7.0);

    let strategies: [(&str, fn(&RegressionTree, &Dataset, &SelectionConfig) -> SelectionResult); 3] = [
        ("tree-ordered (Orr, paper)", select_centers),
        ("greedy forward", select_centers_forward),
        ("all leaves (no selection)", select_all_leaves),
    ];

    let mut report = Report::new(
        "ablation_selection",
        &format!("Ablation: center-selection strategy ({bench}, n={n}, alpha=7, p_min=1)"),
        &["strategy", "centers", "train_sse", "mean_err_pct", "max_err_pct"],
    );

    for (name, select) in strategies {
        let t0 = std::time::Instant::now();
        let result = select(&tree, &data, &config);
        let elapsed = t0.elapsed().as_secs_f64();
        let predicted: Vec<f64> = test.iter().map(|p| result.network.predict(p)).collect();
        let stats = ErrorStats::from_predictions(&predicted, &actual);
        report.row(vec![
            format!("{name} ({elapsed:.2}s)"),
            result.network.num_centers().to_string(),
            fmt(result.sse, 4),
            fmt(stats.mean_pct, 2),
            fmt(stats.max_pct, 2),
        ]);
    }
    report.emit();
    println!("(expected: all-leaves overfits — low train SSE, worse test error; tree-ordered matches forward at lower cost)");
}
