//! Ablation: robustness of the modeling methodology to the fixed
//! machine. The paper's procedure should work for *any* deterministic
//! simulator — here we swap the fixed-machine details (branch
//! predictor scheme, cache replacement, instruction prefetch) and check
//! that model accuracy is unaffected.

use ppm_core::builder::RbfModelBuilder;
use ppm_core::response::{eval_batch, FnResponse};
use ppm_core::space::DesignSpace;
use ppm_experiments::{fmt, Report, Scale};
use ppm_sim::{FixedMachine, PredictorKind, Processor, ReplacementPolicy, SimConfig};
use ppm_workload::{Benchmark, TraceGenerator};

fn machine(name: &str) -> FixedMachine {
    let mut f = FixedMachine::default();
    match name {
        "default (bimodal, LRU)" => {}
        "tournament + prefetch" => {
            f.predictor = PredictorKind::Tournament;
            f.gshare_history = 10;
            f.next_line_prefetch = true;
        }
        "random replacement" => {
            f.replacement = ReplacementPolicy::Random;
        }
        other => panic!("unknown machine {other}"),
    }
    f
}

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let test_space = DesignSpace::paper_table2();
    let bench = Benchmark::Vortex;

    let mut report = Report::new(
        "ablation_substrate",
        &format!("Ablation: fixed-machine variants ({bench}, n={})", scale.final_sample),
        &["machine", "mid_cpi", "mean_err_pct", "max_err_pct", "centers"],
    );

    for name in [
        "default (bimodal, LRU)",
        "tournament + prefetch",
        "random replacement",
    ] {
        let fixed = machine(name);
        let space_for_response = space.clone();
        let trace_len = scale.trace_len;
        let fixed_for_response = fixed.clone();
        let response = FnResponse::new(9, move |unit: &[f64]| {
            let config = SimConfig {
                fixed: fixed_for_response.clone(),
                ..space_for_response.to_config(unit)
            };
            let trace = TraceGenerator::new(bench, 1).take(trace_len);
            Processor::new(config).run(trace).cpi()
        })
        .expect("non-zero dimension");

        let builder =
            RbfModelBuilder::new(space.clone(), scale.build_config(scale.final_sample));
        let built = builder.build(&response).expect("finite CPI responses");
        let test = builder.test_points(&test_space, scale.test_points);
        let actual = eval_batch(&response, &test, 1).expect("clean batch");
        let stats = built.evaluate(&test, &actual);
        let mid = ppm_core::response::Response::eval(&response, &[0.5; 9]);
        report.row(vec![
            name.to_string(),
            fmt(mid, 3),
            fmt(stats.mean_pct, 2),
            fmt(stats.max_pct, 2),
            built.model.network.num_centers().to_string(),
        ]);
    }
    report.emit();
    println!("(expected: absolute CPI shifts with the machine, model accuracy does not — the methodology is substrate-agnostic)");
}
