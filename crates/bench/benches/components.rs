//! Criterion micro-benchmarks of the substrates: simulator throughput,
//! sampling, discrepancy computation, tree construction and RBF
//! fitting. These quantify where the model-building time goes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ppm_core::space::DesignSpace;
use ppm_rbf::{select_centers, SelectionConfig};
use ppm_regtree::{Dataset, RegressionTree};
use ppm_rng::Rng;
use ppm_sampling::discrepancy::{centered_l2, l2_star};
use ppm_sampling::lhs::LatinHypercube;
use ppm_sim::{Processor, SimConfig};
use ppm_workload::{Benchmark, TraceGenerator};

fn sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for bench in [Benchmark::Crafty, Benchmark::Mcf] {
        group.bench_function(format!("run_30k_{bench}"), |b| {
            b.iter(|| {
                let trace = TraceGenerator::new(bench, 1).take(30_000);
                Processor::new(SimConfig::default()).run(trace).cpi()
            })
        });
    }
    group.bench_function("trace_gen_100k_vortex", |b| {
        b.iter(|| TraceGenerator::new(Benchmark::Vortex, 1).take(100_000).count())
    });
    group.finish();
}

fn sampling(c: &mut Criterion) {
    let space = DesignSpace::paper_table1();
    let mut group = c.benchmark_group("sampling");
    group.sample_size(20);
    group.bench_function("lhs_generate_90", |b| {
        let mut rng = Rng::seed_from_u64(1);
        let lhs = LatinHypercube::new(space.params(), 90);
        b.iter(|| lhs.generate(&mut rng))
    });
    let mut rng = Rng::seed_from_u64(2);
    let design = LatinHypercube::new(space.params(), 200).generate(&mut rng);
    group.bench_function("l2_star_200x9", |b| b.iter(|| l2_star(&design)));
    group.bench_function("centered_l2_200x9", |b| b.iter(|| centered_l2(&design)));
    group.finish();
}

fn modeling(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(3);
    let points: Vec<Vec<f64>> = (0..200)
        .map(|_| (0..9).map(|_| rng.unit_f64()).collect())
        .collect();
    let y: Vec<f64> = points
        .iter()
        .map(|p| 2.0 + p[0] + (3.0 * p[4]).sin() * p[5] + 0.02 * rng.normal())
        .collect();
    let data = Dataset::new(points, y).expect("valid data");

    let mut group = c.benchmark_group("modeling");
    group.sample_size(10);
    group.bench_function("regtree_fit_200x9_pmin1", |b| {
        b.iter(|| RegressionTree::fit(&data, 1))
    });
    let tree = RegressionTree::fit(&data, 1);
    group.bench_function("rbf_select_200x9", |b| {
        b.iter_batched(
            || SelectionConfig::with_alpha(7.0),
            |config| select_centers(&tree, &data, &config),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, sim_throughput, sampling, modeling);
criterion_main!(benches);
