//! Extension (paper §3 remark): "the relative significance of
//! microarchitectural parameters is input dependent. For instance, the
//! memory subsystem parameters would have a higher influence on
//! performance if the SPEC reference inputs were used."
//!
//! This harness measures parameter significance (regression-tree split
//! ranking) for twolf under MinneSPEC-scale and reference-scale inputs
//! and reports how the memory parameters move up the ranking.

use ppm_core::builder::RbfModelBuilder;
use ppm_core::response::{eval_batch, FnResponse};
use ppm_core::space::DesignSpace;
use ppm_core::study::significant_splits;
use ppm_experiments::{fmt, Report, Scale};
use ppm_sim::Processor;
use ppm_workload::{Benchmark, InputSet, TraceGenerator};

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let bench = Benchmark::Twolf;

    let mut report = Report::new(
        "extension_input_sets",
        "Extension: parameter significance under lgred vs reference inputs (twolf)",
        &["input_set", "rank", "parameter", "value", "sse_reduction"],
    );

    for (name, input) in [("lgred", InputSet::MinneLgred), ("reference", InputSet::Reference)] {
        let space_for_response = space.clone();
        let trace_len = scale.trace_len;
        let response = FnResponse::new(9, move |unit: &[f64]| {
            let config = space_for_response.to_config(unit);
            let trace = TraceGenerator::with_input(bench, input, 1).take(trace_len);
            Processor::new(config).run(trace).cpi()
        })
        .expect("non-zero dimension");
        let builder =
            RbfModelBuilder::new(space.clone(), scale.build_config(scale.final_sample));
        let (design, _) = builder.select_sample().expect("valid sweep config");
        let responses = eval_batch(&response, &design, 1).expect("clean batch");
        let splits = significant_splits(&space, &design, &responses, 1, 6).expect("valid");
        for (rank, s) in splits.iter().enumerate() {
            report.row(vec![
                name.to_string(),
                (rank + 1).to_string(),
                s.param.to_string(),
                fmt(s.value, 2),
                fmt(s.sse_reduction, 3),
            ]);
        }
        let memory = ["L2_lat", "L2_size", "dl1_lat", "dl1_size"];
        let mem_weight: f64 = splits
            .iter()
            .filter(|s| memory.contains(&s.param))
            .map(|s| s.sse_reduction)
            .sum();
        let total: f64 = splits.iter().map(|s| s.sse_reduction).sum();
        println!(
            "{name}: memory-parameter split significance {:.2} CPI^2              ({:.0}% of the top-6 total)",
            mem_weight,
            100.0 * mem_weight / total
        );
    }
    report.emit();
    println!(
        "(expected: the memory parameters' absolute significance grows under          reference inputs — the paper's §3 remark. In our substrate the window's          significance grows alongside it, since more misses also mean more          latency to tolerate.)"
    );
}
