//! Extension (paper §6): predictive models for power-related metrics.
//! Builds RBF models of energy-per-instruction for three benchmarks and
//! reports the same error diagnostics as Table 3 does for CPI.

use ppm_core::builder::RbfModelBuilder;
use ppm_core::response::{eval_batch, Metric};
use ppm_core::space::DesignSpace;
use ppm_experiments::{fmt, Report, Scale};
use ppm_workload::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let test_space = DesignSpace::paper_table2();

    let mut report = Report::new(
        "extension_power",
        &format!(
            "Extension: RBF models of energy metrics (sample {})",
            scale.final_sample
        ),
        &["benchmark", "metric", "mean_err_pct", "max_err_pct", "centers"],
    );

    for bench in [Benchmark::Mcf, Benchmark::Vortex, Benchmark::Equake] {
        for (name, metric) in [("EPI", Metric::Epi), ("EDP", Metric::Edp)] {
            let response = scale.response(bench).with_metric(metric);
            let builder =
                RbfModelBuilder::new(space.clone(), scale.build_config(scale.final_sample));
            let built = builder.build(&response).expect("finite responses");
            let test = builder.test_points(&test_space, scale.test_points);
            let actual = eval_batch(&response, &test, 1).expect("clean batch");
            let stats = built.evaluate(&test, &actual);
            report.row(vec![
                bench.to_string(),
                name.to_string(),
                fmt(stats.mean_pct, 2),
                fmt(stats.max_pct, 2),
                built.model.network.num_centers().to_string(),
            ]);
        }
    }
    report.emit();
    println!("(the paper's conclusion: the same procedure should model power; this confirms it on our substrate)");
}
