//! Figure 1: the CPI response surface of *vortex* as a function of the
//! L1 instruction cache size and L2 latency, all other parameters fixed
//! at mid-range — the motivating example for non-linear modeling.
//!
//! The paper's claim to reproduce: higher L2 latencies hurt more when
//! the instruction cache is small (curvature / interaction), with sharp
//! changes at low cache sizes.

use ppm_core::response::Response;
use ppm_core::space::DesignSpace;
use ppm_core::study::interaction_grid;
use ppm_experiments::{fmt, Report, Scale};
use ppm_workload::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let response = scale.response(Benchmark::Vortex);

    // Sweep il1_size (param 6, 4 levels) x L2_lat (param 5, 16 levels).
    let (il1_vals, l2lat_vals, grid) = interaction_grid(
        &space,
        |x| response.eval(x),
        6,
        5,
        &[0.5; 9],
        scale.final_sample,
    );

    let mut columns = vec!["il1_size_kb".to_string()];
    columns.extend(l2lat_vals.iter().map(|v| format!("L2_lat={v:.0}")));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut report = Report::new(
        "fig1_response_surface",
        "Figure 1: vortex CPI surface over (il1 size, L2 latency)",
        &col_refs,
    );
    for (i, &il1) in il1_vals.iter().enumerate() {
        let mut row = vec![fmt(il1, 0)];
        row.extend(grid[i].iter().map(|&c| fmt(c, 3)));
        report.row(row);
    }
    report.emit();

    // Shape checks mirroring the paper's qualitative claims.
    let small_il1_worst = grid[0][0]; // 8 KB, L2_lat=20
    let small_il1_best = grid[0][l2lat_vals.len() - 1]; // 8 KB, L2_lat=5
    let big_il1_worst = grid[il1_vals.len() - 1][0];
    let big_il1_best = grid[il1_vals.len() - 1][l2lat_vals.len() - 1];
    let slope_small = small_il1_worst - small_il1_best;
    let slope_big = big_il1_worst - big_il1_best;
    println!(
        "L2-latency CPI swing: {:.3} at il1=8KB vs {:.3} at il1=64KB (paper: larger at small il1)",
        slope_small, slope_big
    );
    println!(
        "interaction present: {}",
        if slope_small > slope_big { "yes" } else { "NO (unexpected)" }
    );
}
