//! Figure 2: the best obtained L2-star discrepancy as a function of the
//! number of simulations (latin hypercube sample size).
//!
//! The paper's claim to reproduce: the discrepancy falls with sample
//! size and the curve has a knee (around 90 in their setup) beyond
//! which extra simulations improve space coverage slowly.

use ppm_core::space::DesignSpace;
use ppm_experiments::{fmt, Report, Scale};
use ppm_rng::Rng;
use ppm_sampling::lhs::LatinHypercube;

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let sizes: Vec<usize> = if scale.full {
        vec![10, 20, 30, 50, 70, 90, 110, 140, 170, 200]
    } else {
        vec![10, 20, 30, 50, 70, 90, 110, 140]
    };

    let mut report = Report::new(
        "fig2_discrepancy",
        "Figure 2: best L2-star discrepancy vs number of simulations",
        &["sample_size", "best_l2_star", "reduction_vs_prev_pct"],
    );
    let mut prev: Option<f64> = None;
    let mut values = Vec::new();
    for &n in &sizes {
        let mut rng = Rng::seed_from_u64(42);
        let (_, score) = LatinHypercube::new(space.params(), n)
            .best_of_with_score(scale.lhs_candidates, &mut rng)
            .expect("non-zero candidates");
        let reduction = prev.map(|p| 100.0 * (p - score) / p).unwrap_or(0.0);
        report.row(vec![n.to_string(), fmt(score, 5), fmt(reduction, 1)]);
        prev = Some(score);
        values.push(score);
    }
    report.emit();

    // Knee check: the early reductions dwarf the late ones.
    let early = values[0] - values[2];
    let late = values[values.len() - 3] - values[values.len() - 1];
    println!(
        "early improvement {:.5} vs late improvement {:.5} (paper: tapering curve)",
        early, late
    );
    println!(
        "tapering: {}",
        if early > 3.0 * late { "yes" } else { "weak" }
    );
}
