//! Figure 4: mean error, standard deviation, and maximum error of the
//! RBF predictive model for *mcf* and *twolf* at different sample
//! sizes.
//!
//! The paper's claims to reproduce: model error decreases with sample
//! size, and the decrease tapers at higher sizes (knee around the
//! L2-star discrepancy knee).

use ppm_core::builder::RbfModelBuilder;
use ppm_core::response::eval_batch;
use ppm_core::space::DesignSpace;
use ppm_experiments::{fmt, Report, Scale};
use ppm_workload::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let test_space = DesignSpace::paper_table2();

    let mut report = Report::new(
        "fig4_error_vs_samples",
        "Figure 4: RBF model error vs sample size (mcf, twolf)",
        &["benchmark", "sample_size", "mean_pct", "std_pct", "max_pct"],
    );

    for bench in [Benchmark::Mcf, Benchmark::Twolf] {
        let response = scale.response(bench);
        // One fixed test set per benchmark, shared across sample sizes.
        let probe = RbfModelBuilder::new(space.clone(), scale.build_config(30));
        let test = probe.test_points(&test_space, scale.test_points);
        let actual = eval_batch(&response, &test, 1).expect("clean batch");

        let mut means = Vec::new();
        for &n in &scale.sample_sizes {
            let builder = RbfModelBuilder::new(space.clone(), scale.build_config(n));
            let built = builder.build(&response).expect("finite CPI responses");
            let stats = built.evaluate(&test, &actual);
            report.row(vec![
                bench.to_string(),
                n.to_string(),
                fmt(stats.mean_pct, 2),
                fmt(stats.std_pct, 2),
                fmt(stats.max_pct, 2),
            ]);
            means.push(stats.mean_pct);
        }
        let first = means[0];
        let last = *means.last().expect("nonempty");
        println!(
            "{bench}: mean error {first:.2}% at n={} -> {last:.2}% at n={} ({})",
            scale.sample_sizes[0],
            scale.sample_sizes.last().unwrap(),
            if last < first {
                "decreasing, as in the paper"
            } else {
                "NOT decreasing (unexpected)"
            }
        );
    }
    report.emit();
}
