//! Figure 5: the distribution of parameter values at which regression
//! tree splitting occurs, for *mcf*.
//!
//! The paper's claim to reproduce: the parameters that drive mcf's
//! performance (memory-system parameters) are split most often, and
//! splits concentrate where the response changes fastest.

use std::collections::BTreeMap;

use ppm_core::builder::RbfModelBuilder;
use ppm_core::space::{DesignSpace, PARAM_NAMES};
use ppm_core::study::significant_splits;
use ppm_experiments::{fmt, Report, Scale};
use ppm_workload::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let response = scale.response(Benchmark::Mcf);
    let builder = RbfModelBuilder::new(space.clone(), scale.build_config(scale.final_sample));
    let built = builder.build(&response).expect("finite CPI responses");
    // All splits (large k), p_min = 1 as the paper typically selects.
    let splits = significant_splits(&space, &built.design, &built.responses, 1, usize::MAX)
        .expect("valid sample");

    // Per-parameter split counts and value histograms.
    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
    let mut values: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for s in &splits {
        *counts.entry(s.param_index).or_default() += 1;
        values.entry(s.param_index).or_default().push(s.value);
    }

    let mut report = Report::new(
        "fig5_split_distribution",
        "Figure 5: distribution of tree-split values per parameter (mcf)",
        &["parameter", "splits", "min_value", "median_value", "max_value"],
    );
    for (idx, name) in PARAM_NAMES.iter().enumerate() {
        let n = counts.get(&idx).copied().unwrap_or(0);
        let (lo, med, hi) = match values.get(&idx) {
            Some(v) => {
                let mut v = v.clone();
                v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                (v[0], v[v.len() / 2], v[v.len() - 1])
            }
            None => (f64::NAN, f64::NAN, f64::NAN),
        };
        report.row(vec![
            name.to_string(),
            n.to_string(),
            if n > 0 { fmt(lo, 2) } else { "-".into() },
            if n > 0 { fmt(med, 2) } else { "-".into() },
            if n > 0 { fmt(hi, 2) } else { "-".into() },
        ]);
    }
    report.emit();

    let mem_splits: usize = [4usize, 5, 7, 8]
        .iter()
        .map(|i| counts.get(i).copied().unwrap_or(0))
        .sum();
    let total: usize = counts.values().sum();
    println!(
        "memory-system parameters account for {mem_splits}/{total} splits \
         (paper: mcf splits concentrate on memory parameters)"
    );
}
