//! Figure 6: using the RBF network to predict the variation in *vortex*
//! performance across instruction-cache sizes and L2 latencies, against
//! fresh detailed simulation.
//!
//! The paper's claim to reproduce: the model's predicted curves closely
//! mirror the simulated trends for the il1 × L2-latency interaction
//! (with the largest deviations at small caches and high latencies).

use ppm_core::builder::RbfModelBuilder;
use ppm_core::response::Response;
use ppm_core::space::DesignSpace;
use ppm_core::study::interaction_grid;
use ppm_experiments::{fmt, Report, Scale};
use ppm_workload::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let response = scale.response(Benchmark::Vortex);
    let builder = RbfModelBuilder::new(space.clone(), scale.build_config(scale.final_sample));
    let built = builder.build(&response).expect("finite CPI responses");

    // Use a coarse L2-latency axis so simulation stays cheap: every
    // third level.
    let base = [0.5; 9];
    let (il1_vals, l2_vals, sim_grid) =
        interaction_grid(&space, |x| response.eval(x), 6, 5, &base, 16);
    let (_, _, model_grid) = interaction_grid(&space, |x| built.predict(x), 6, 5, &base, 16);

    let mut report = Report::new(
        "fig6_trend_prediction",
        "Figure 6: simulated vs model-predicted vortex CPI over (il1, L2 lat)",
        &["il1_size_kb", "L2_lat", "simulated_cpi", "predicted_cpi", "err_pct"],
    );
    let mut worst: f64 = 0.0;
    let mut mean = 0.0;
    let mut count = 0;
    let stride = if scale.full { 3 } else { 5 };
    for (i, &il1) in il1_vals.iter().enumerate() {
        for (j, &lat) in l2_vals.iter().enumerate().step_by(stride) {
            let s = sim_grid[i][j];
            let m = model_grid[i][j];
            let err = 100.0 * ((m - s) / s).abs();
            worst = worst.max(err);
            mean += err;
            count += 1;
            report.row(vec![
                fmt(il1, 0),
                fmt(lat, 0),
                fmt(s, 3),
                fmt(m, 3),
                fmt(err, 2),
            ]);
        }
    }
    report.emit();
    println!(
        "trend tracking: mean err {:.2}%, worst err {:.2}% across the interaction grid \
         (paper: predictions closely mirror simulation)",
        mean / count as f64,
        worst
    );

    // Direction agreement: does the model rank il1=8KB slower than 64KB
    // at the highest latency, as simulation does?
    let sim_says = sim_grid[0][0] > sim_grid[il1_vals.len() - 1][0];
    let model_says = model_grid[0][0] > model_grid[il1_vals.len() - 1][0];
    println!(
        "interaction direction agreement: {}",
        if sim_says == model_says { "yes" } else { "NO" }
    );
}
