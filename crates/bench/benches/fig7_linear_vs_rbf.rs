//! Figure 7: comparison of the predictive accuracies of linear
//! regression models (main effects + two-factor interactions, AIC
//! variable selection) and RBF network models, across sample sizes, for
//! three benchmarks.
//!
//! The paper's claims to reproduce: the non-linear models are
//! consistently more accurate at every sample size; for mcf the linear
//! model's error stays several times higher even at the largest sample
//! (paper: 6.5% vs 2.1% at n=200).

use ppm_core::builder::RbfModelBuilder;
use ppm_core::metrics::ErrorStats;
use ppm_core::response::eval_batch;
use ppm_core::space::DesignSpace;
use ppm_core::study::fit_linear_baseline;
use ppm_experiments::{fmt, Report, Scale};
use ppm_workload::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let test_space = DesignSpace::paper_table2();

    let mut report = Report::new(
        "fig7_linear_vs_rbf",
        "Figure 7: linear vs RBF model accuracy across sample sizes",
        &[
            "benchmark",
            "sample_size",
            "rbf_mean_pct",
            "linear_mean_pct",
            "linear_terms",
            "rbf_wins",
        ],
    );

    let mut rbf_wins = 0usize;
    let mut comparisons = 0usize;
    for bench in [Benchmark::Mcf, Benchmark::Vortex, Benchmark::Twolf] {
        let response = scale.response(bench);
        let probe = RbfModelBuilder::new(space.clone(), scale.build_config(30));
        let test = probe.test_points(&test_space, scale.test_points);
        let actual = eval_batch(&response, &test, 1).expect("clean batch");

        for &n in &scale.sample_sizes {
            let builder = RbfModelBuilder::new(space.clone(), scale.build_config(n));
            let built = builder.build(&response).expect("finite CPI responses");
            let rbf_stats = built.evaluate(&test, &actual);

            let (lin_mean, lin_terms) =
                match fit_linear_baseline(&built.design, &built.responses) {
                    Ok(lin) => {
                        let pred: Vec<f64> = test.iter().map(|p| lin.predict(p)).collect();
                        let stats = ErrorStats::from_predictions(&pred, &actual);
                        (stats.mean_pct, lin.num_terms())
                    }
                    Err(e) => {
                        println!("{bench} n={n}: linear model failed: {e}");
                        (f64::NAN, 0)
                    }
                };

            comparisons += 1;
            let wins = rbf_stats.mean_pct < lin_mean;
            if wins {
                rbf_wins += 1;
            }
            report.row(vec![
                bench.to_string(),
                n.to_string(),
                fmt(rbf_stats.mean_pct, 2),
                fmt(lin_mean, 2),
                lin_terms.to_string(),
                wins.to_string(),
            ]);
        }
    }
    report.emit();
    println!(
        "RBF more accurate in {rbf_wins}/{comparisons} (benchmark, sample) cells \
         (paper: consistently better at every size)"
    );
}
