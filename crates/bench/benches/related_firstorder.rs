//! Related work (paper §5): first-order analytical models
//! (Karkhanis & Smith, Noonburg & Shen) "are useful to evaluate and
//! compare the performance of closely related designs, but they have
//! not been demonstrated to be accurate across the entire feasible
//! design space."
//!
//! This harness measures exactly that: the first-order model's CPI
//! error across random points of the full Table 2 space, against the
//! RBF surrogate built from the same simulation budget that the
//! profiling pass costs (~1 trace pass ≈ 1 simulation; we grant the
//! RBF its usual sample).

use ppm_core::builder::RbfModelBuilder;
use ppm_core::metrics::ErrorStats;
use ppm_core::response::eval_batch;
use ppm_core::space::DesignSpace;
use ppm_experiments::{fmt, Report, Scale};
use ppm_firstorder::{FirstOrderModel, ProgramStats};
use ppm_sim::SimConfig;
use ppm_workload::{Benchmark, TraceGenerator};

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let test_space = DesignSpace::paper_table2();

    let mut report = Report::new(
        "related_firstorder",
        "Related work: first-order analytical model vs RBF surrogate",
        &[
            "benchmark",
            "firstorder_mean_pct",
            "firstorder_max_pct",
            "rbf_mean_pct",
            "rbf_max_pct",
        ],
    );

    for bench in [Benchmark::Mcf, Benchmark::Crafty, Benchmark::Equake] {
        let response = scale.response(bench);
        let builder =
            RbfModelBuilder::new(space.clone(), scale.build_config(scale.final_sample));
        let test = builder.test_points(&test_space, scale.test_points);
        let actual = eval_batch(&response, &test, 1).expect("clean batch");

        // First-order: one profiling pass, then analytic evaluation.
        let fo = FirstOrderModel::new(ProgramStats::collect(
            TraceGenerator::new(bench, 1).take(scale.trace_len),
            &SimConfig::default(),
        ));
        let fo_pred: Vec<f64> = test
            .iter()
            .map(|p| fo.predict(&space.to_config(p)))
            .collect();
        let fo_stats = ErrorStats::from_predictions(&fo_pred, &actual);

        // RBF surrogate.
        let built = builder.build(&response).expect("finite CPI responses");
        let rbf_stats = built.evaluate(&test, &actual);

        report.row(vec![
            bench.to_string(),
            fmt(fo_stats.mean_pct, 1),
            fmt(fo_stats.max_pct, 1),
            fmt(rbf_stats.mean_pct, 2),
            fmt(rbf_stats.max_pct, 2),
        ]);
    }
    report.emit();
    println!(
        "(expected: the first-order model gets trends right but its absolute error \
         across the space is an order of magnitude above the RBF surrogate's — \
         the paper's §5 argument)"
    );
}
