//! Related work (paper §5): Plackett–Burman screening (Yi et al.,
//! HPCA 2005) estimates the significance of the nine parameters in a
//! handful of simulations — but "these designs cannot quantify all the
//! interactions between processor parameters, which we observe are
//! significant."
//!
//! This harness runs a foldover PB-12 screening (24 simulations) per
//! benchmark, reports the estimated main effects, and compares the
//! significance ranking against the regression tree's split ranking
//! from the full sample.

use ppm_core::builder::RbfModelBuilder;
use ppm_core::response::eval_batch;
use ppm_core::space::DesignSpace;
use ppm_core::study::{pb_screening, significant_splits};
use ppm_experiments::{fmt, Report, Scale};
use ppm_workload::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();

    let mut report = Report::new(
        "related_pb_screening",
        "Related work: Plackett-Burman (foldover, 24 runs) main effects",
        &["benchmark", "rank", "parameter", "effect_cpi", "tree_rank_of_param"],
    );

    for bench in [Benchmark::Mcf, Benchmark::Vortex] {
        let response = scale.response(bench);
        let effects = pb_screening(&space, &response, 12, 1).expect("supported PB design");

        // Tree ranking from a proper LHS sample for comparison.
        let builder =
            RbfModelBuilder::new(space.clone(), scale.build_config(scale.final_sample));
        let (design, _) = builder.select_sample().expect("valid sweep config");
        let responses = eval_batch(&response, &design, 1).expect("clean batch");
        let splits =
            significant_splits(&space, &design, &responses, 1, usize::MAX).expect("valid");
        let tree_rank = |param: &str| -> String {
            splits
                .iter()
                .position(|s| s.param == param)
                .map(|r| (r + 1).to_string())
                .unwrap_or_else(|| "-".into())
        };

        for (rank, e) in effects.iter().take(5).enumerate() {
            report.row(vec![
                bench.to_string(),
                (rank + 1).to_string(),
                e.param.to_string(),
                fmt(e.effect, 3),
                tree_rank(e.param),
            ]);
        }
        let agree = effects
            .iter()
            .take(3)
            .filter(|e| {
                splits
                    .iter()
                    .take(8)
                    .any(|s| s.param == e.param)
            })
            .count();
        println!(
            "{bench}: {agree}/3 of PB's top factors appear in the tree's top-8 splits"
        );
    }
    report.emit();
    println!(
        "(PB screens main effects in 24 runs but models nothing — no interactions, \
         no predictions; the paper's procedure needs ~4x the runs and yields a full \
         predictive surface)"
    );
}
