//! Table 3: error diagnostics (mean / max / std of the absolute CPI
//! percentage error) of the RBF predictive model for all eight
//! benchmarks at the largest sample size.
//!
//! The paper's claims to reproduce: low mean errors across all
//! benchmarks (paper average 2.8%), bounded maxima (paper max 17%), and
//! the floating-point benchmarks (equake, ammp) showing the lowest
//! maximum errors.

use ppm_core::builder::RbfModelBuilder;
use ppm_core::response::eval_batch;
use ppm_core::space::DesignSpace;
use ppm_experiments::{fmt, Report, Scale};
use ppm_workload::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let test_space = DesignSpace::paper_table2();
    let paper = [
        (Benchmark::Mcf, (2.1, 12.7, 1.8)),
        (Benchmark::Crafty, (2.9, 10.8, 2.7)),
        (Benchmark::Parser, (2.2, 8.4, 2.0)),
        (Benchmark::Perlbmk, (4.0, 17.0, 3.1)),
        (Benchmark::Vortex, (3.4, 12.0, 2.7)),
        (Benchmark::Twolf, (3.2, 11.9, 2.3)),
        (Benchmark::Equake, (1.9, 5.9, 1.3)),
        (Benchmark::Ammp, (2.5, 4.8, 1.2)),
    ];

    let mut report = Report::new(
        "table3_error_diagnostics",
        &format!(
            "Table 3: error diagnostics of the predictive model (sample size {})",
            scale.final_sample
        ),
        &[
            "benchmark",
            "mean_pct",
            "max_pct",
            "std_pct",
            "paper_mean",
            "paper_max",
            "paper_std",
        ],
    );

    let mut mean_sum = 0.0;
    let mut fp_max: f64 = 0.0;
    let mut int_max: f64 = 0.0;
    for (bench, (pm, px, ps)) in paper {
        let response = scale.response(bench);
        let builder = RbfModelBuilder::new(space.clone(), scale.build_config(scale.final_sample));
        let built = builder.build(&response).expect("finite CPI responses");
        let test = builder.test_points(&test_space, scale.test_points);
        let actual = eval_batch(&response, &test, 1).expect("clean batch");
        let stats = built.evaluate(&test, &actual);
        report.row(vec![
            bench.to_string(),
            fmt(stats.mean_pct, 2),
            fmt(stats.max_pct, 2),
            fmt(stats.std_pct, 2),
            fmt(pm, 1),
            fmt(px, 1),
            fmt(ps, 1),
        ]);
        mean_sum += stats.mean_pct;
        if matches!(bench, Benchmark::Equake | Benchmark::Ammp) {
            fp_max = fp_max.max(stats.max_pct);
        } else {
            int_max = int_max.max(stats.max_pct);
        }
    }
    report.emit();
    println!(
        "average mean error {:.2}% (paper: 2.8%); fp max {:.2}% vs int max {:.2}% (paper: fp lower)",
        mean_sum / 8.0,
        fp_max,
        int_max
    );
}
