//! Table 4: diagnostics of the RBF model for *mcf* — the best
//! `p_min` and α found by the grid search, and the number of RBF
//! centers chosen, at each sample size.
//!
//! The paper's claims to reproduce: the best `p_min` is typically 1,
//! the best α lies in roughly 5–12, and the number of centers stays
//! well below half the number of sample points while growing with the
//! sample.

use ppm_core::builder::RbfModelBuilder;
use ppm_core::space::DesignSpace;
use ppm_experiments::{fmt, Report, Scale};
use ppm_workload::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();
    let response = scale.response(Benchmark::Mcf);
    let paper: &[(usize, usize, f64, usize)] = &[
        (30, 1, 5.0, 15),
        (50, 2, 8.0, 16),
        (70, 1, 10.0, 22),
        (90, 1, 12.0, 27),
        (110, 1, 6.0, 40),
        (200, 1, 7.0, 76),
    ];

    let mut report = Report::new(
        "table4_rbf_diagnostics",
        "Table 4: diagnostics of the RBF model for mcf",
        &[
            "sample_size",
            "p_min",
            "alpha",
            "num_centers",
            "centers_frac",
            "paper_p_min",
            "paper_alpha",
            "paper_centers",
        ],
    );

    let mut all_below_half = true;
    let mut centers_grow = Vec::new();
    for &n in &scale.sample_sizes {
        let builder = RbfModelBuilder::new(space.clone(), scale.build_config(n));
        let built = builder.build(&response).expect("finite CPI responses");
        let centers = built.model.network.num_centers();
        let frac = centers as f64 / n as f64;
        if frac >= 0.5 {
            all_below_half = false;
        }
        centers_grow.push(centers);
        let paper_row = paper.iter().find(|(pn, ..)| *pn == n);
        report.row(vec![
            n.to_string(),
            built.model.p_min.to_string(),
            fmt(built.model.alpha, 0),
            centers.to_string(),
            fmt(frac, 2),
            paper_row.map(|r| r.1.to_string()).unwrap_or_else(|| "-".into()),
            paper_row.map(|r| fmt(r.2, 0)).unwrap_or_else(|| "-".into()),
            paper_row.map(|r| r.3.to_string()).unwrap_or_else(|| "-".into()),
        ]);
    }
    report.emit();
    println!(
        "centers much less than half the sample: {}",
        if all_below_half { "yes (as in the paper)" } else { "NO" }
    );
    println!(
        "centers grow with sample size: {}",
        if centers_grow.windows(2).all(|w| w[1] >= w[0]) {
            "yes"
        } else {
            "mostly"
        }
    );
}
