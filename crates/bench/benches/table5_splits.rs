//! Table 5: the most significant splitting points during regression
//! tree construction, for *mcf* and *vortex*.
//!
//! The paper's claims to reproduce: for mcf the most significant splits
//! are on memory-system parameters (L2 latency, L1 data latency, L2
//! size); for vortex they involve the L1 data latency, the instruction
//! cache and window parameters. The most significant splits occur at
//! shallow depths.

use ppm_core::builder::RbfModelBuilder;
use ppm_core::space::DesignSpace;
use ppm_core::study::significant_splits;
use ppm_experiments::{fmt, Report, Scale};
use ppm_workload::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let space = DesignSpace::paper_table1();

    let mut report = Report::new(
        "table5_splits",
        "Table 5: most significant regression-tree splits (rank 1..8)",
        &["benchmark", "rank", "parameter", "value", "depth", "sse_reduction"],
    );

    for bench in [Benchmark::Mcf, Benchmark::Vortex] {
        let response = scale.response(bench);
        let builder =
            RbfModelBuilder::new(space.clone(), scale.build_config(scale.final_sample));
        let built = builder.build(&response).expect("finite CPI responses");
        let splits = significant_splits(&space, &built.design, &built.responses, 1, 8)
            .expect("valid sample");
        let mut top_params = Vec::new();
        for (rank, s) in splits.iter().enumerate() {
            report.row(vec![
                bench.to_string(),
                (rank + 1).to_string(),
                s.param.to_string(),
                fmt(s.value, 2),
                s.depth.to_string(),
                fmt(s.sse_reduction, 3),
            ]);
            if rank < 3 {
                top_params.push(s.param);
            }
        }
        println!("{bench}: top-3 split parameters: {top_params:?}");
        if bench == Benchmark::Mcf {
            let memory_params = ["L2_lat", "L2_size", "dl1_lat", "dl1_size"];
            let hits = top_params
                .iter()
                .filter(|p| memory_params.contains(p))
                .count();
            println!(
                "  mcf splits dominated by memory parameters: {}/3 (paper: 3/3)",
                hits
            );
        }
    }
    report.emit();
    println!("paper reference — mcf: L2_lat(11.5,d1), dl1_lat(2.5,d2), L2_size(370KB,d2); vortex: dl1_lat(2.5,d1), il1_size(12KB,d2), IQ_size(0.34,d2)");
}
