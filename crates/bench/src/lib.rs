//! Shared infrastructure for the paper-reproduction harnesses.
//!
//! Each bench target of this crate regenerates one table or figure of
//! the paper (see DESIGN.md for the index). Run one with
//!
//! ```text
//! cargo bench -p ppm-experiments --bench table3_error_diagnostics
//! ```
//!
//! By default the harnesses run at a *reduced scale* (shorter traces,
//! smaller samples) so the whole suite completes in minutes on one
//! core; set `PPM_FULL=1` for paper-scale runs. Every harness prints a
//! markdown table to stdout and writes the same data as CSV under
//! `results/`.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use ppm_core::builder::BuildConfig;
use ppm_core::response::SimulatorResponse;
use ppm_rbf::RbfTrainer;
use ppm_workload::Benchmark;

/// Experiment scale, controlled by the `PPM_FULL` environment variable.
#[derive(Debug, Clone)]
pub struct Scale {
    /// True when `PPM_FULL=1`.
    pub full: bool,
    /// Instructions simulated per design point.
    pub trace_len: usize,
    /// The sample-size sweep (paper: 30..200).
    pub sample_sizes: Vec<usize>,
    /// The "large" sample size used for Tables 3 and 5 (paper: 200).
    pub final_sample: usize,
    /// Number of random test points (paper: 50).
    pub test_points: usize,
    /// Latin hypercube candidates per selection.
    pub lhs_candidates: usize,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Self {
        let full = std::env::var("PPM_FULL").map(|v| v == "1").unwrap_or(false);
        if full {
            Scale {
                full,
                trace_len: 300_000,
                sample_sizes: vec![30, 50, 70, 90, 110, 200],
                final_sample: 200,
                test_points: 50,
                lhs_candidates: 200,
            }
        } else {
            Scale {
                full,
                trace_len: 100_000,
                sample_sizes: vec![30, 50, 90],
                final_sample: 90,
                test_points: 25,
                lhs_candidates: 40,
            }
        }
    }

    /// The RBF training grid appropriate for this scale.
    pub fn trainer(&self) -> RbfTrainer {
        if self.full {
            RbfTrainer::default()
        } else {
            RbfTrainer::quick()
        }
    }

    /// A build configuration for the given sample size.
    pub fn build_config(&self, sample_size: usize) -> BuildConfig {
        BuildConfig {
            sample_size,
            lhs_candidates: self.lhs_candidates,
            trainer: self.trainer(),
            seed: 1,
            threads: ppm_core::response::default_threads(),
        }
    }

    /// The simulator-backed response for a benchmark at this scale.
    pub fn response(&self, benchmark: Benchmark) -> SimulatorResponse {
        SimulatorResponse::new(benchmark, self.trace_len)
    }
}

/// A simple experiment report: a header, column names and rows, printed
/// as markdown and mirrored to `results/<name>.csv`.
#[derive(Debug, Clone)]
pub struct Report {
    name: String,
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report.
    pub fn new(name: &str, title: &str, columns: &[&str]) -> Self {
        Report {
            name: name.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the column count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the report as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }

    /// Prints the markdown table and writes the CSV mirror.
    pub fn emit(&self) {
        println!("{}", self.to_markdown());
        let dir = results_dir();
        if fs::create_dir_all(&dir).is_ok() {
            let mut csv = String::new();
            let _ = writeln!(csv, "{}", self.columns.join(","));
            for r in &self.rows {
                let _ = writeln!(csv, "{}", r.join(","));
            }
            let path = dir.join(format!("{}.csv", self.name));
            if let Err(e) = fs::write(&path, csv) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(written to {})", path.display());
            }
        }
    }
}

/// The `results/` directory at the workspace root.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live two levels up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// Formats a float with the given precision for report cells.
pub fn fmt(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_has_sane_defaults() {
        let scale = Scale::from_env();
        assert!(scale.final_sample <= 200);
        assert!(!scale.sample_sizes.is_empty());
        assert!(scale.trace_len >= 10_000);
    }

    #[test]
    fn report_renders_markdown_and_respects_width() {
        let mut r = Report::new("t", "Test", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        let md = r.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_panics() {
        let mut r = Report::new("t", "Test", &["a", "b"]);
        r.row(vec!["1".into()]);
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(1.23456, 2), "1.23");
    }

    #[test]
    fn results_dir_is_workspace_level() {
        assert!(results_dir().ends_with("results"));
    }
}
