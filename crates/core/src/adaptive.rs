//! Adaptive sampling — the extension sketched in the paper's
//! conclusion: "the simulation costs involved in constructing
//! predictive models can potentially be reduced using adaptive
//! sampling, wherein sets of design points to simulate are selected
//! based on data from initial small samples."
//!
//! The strategy implemented here starts from a small latin hypercube,
//! then repeatedly (i) fits the RBF network and a regression tree to
//! the data so far, (ii) scores a pool of random candidate points by
//! the *disagreement* between the two learners (a cheap proxy for local
//! model uncertainty), and (iii) simulates the most uncertain
//! candidates and adds them to the sample.

use ppm_regtree::{Dataset, RegressionTree};
use ppm_rng::{derive_seed, Rng};
use ppm_sampling::lhs::LatinHypercube;

use crate::builder::{BuildConfig, BuildError, BuiltModel, RbfModelBuilder};
use crate::response::{eval_batch, Response};
use crate::space::DesignSpace;

/// Configuration of the adaptive-sampling loop.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Size of the initial latin hypercube.
    pub initial_size: usize,
    /// Points added per refinement round.
    pub batch_size: usize,
    /// Total simulation budget (initial + added points).
    pub budget: usize,
    /// Random candidates scored per round.
    pub candidate_pool: usize,
    /// The underlying build configuration (trainer, seed, threads).
    pub build: BuildConfig,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            initial_size: 30,
            batch_size: 10,
            budget: 90,
            candidate_pool: 256,
            build: BuildConfig::default(),
        }
    }
}

impl AdaptiveConfig {
    fn validate(&self) -> Result<(), BuildError> {
        if self.initial_size < 2 {
            return Err(BuildError::InvalidConfig(
                "initial sample too small (need at least 2 points)".to_string(),
            ));
        }
        if self.batch_size == 0 {
            return Err(BuildError::InvalidConfig(
                "batch size must be positive".to_string(),
            ));
        }
        if self.budget < self.initial_size {
            return Err(BuildError::InvalidConfig(format!(
                "budget {} below the initial sample size {}",
                self.budget, self.initial_size
            )));
        }
        Ok(())
    }
}

/// Builds a model by adaptive refinement instead of a one-shot latin
/// hypercube (see module docs).
///
/// # Errors
///
/// Returns [`BuildError::InvalidConfig`] if `initial_size < 2`,
/// `batch_size == 0`, or `budget < initial_size`;
/// [`BuildError::ExcessiveFaults`] if a simulation batch fails; and
/// [`BuildError::BadData`] if the sample cannot form a dataset.
pub fn build_adaptive<R: Response>(
    space: &DesignSpace,
    response: &R,
    config: &AdaptiveConfig,
) -> Result<BuiltModel, BuildError> {
    config.validate()?;
    let mut rng = Rng::seed_from_u64(derive_seed(config.build.seed, 400));

    // Round 0: a small space-filling sample.
    let lhs = LatinHypercube::new(space.params(), config.initial_size)
        .with_threads(config.build.train_threads);
    let mut design = lhs.best_of(config.build.lhs_candidates.max(1), &mut rng)?;
    let mut responses = eval_batch(response, &design, config.build.threads)?;

    let builder = RbfModelBuilder::new(space.clone(), config.build.clone());
    while design.len() < config.budget {
        ppm_telemetry::counter("adaptive.rounds").inc();
        ppm_telemetry::event("adaptive.round", &[("points", design.len().into())]);
        // Fit both learners to the data so far.
        let built = builder.fit(design.clone(), responses.clone(), f64::NAN)?;
        let data = Dataset::new(design.clone(), responses.clone())?;
        let tree = RegressionTree::fit(&data, built.model.p_min.max(1));

        // Score random candidates by learner disagreement.
        let mut scored: Vec<(f64, Vec<f64>)> = (0..config.candidate_pool)
            .map(|_| {
                let raw: Vec<f64> = (0..space.dim()).map(|_| rng.unit_f64()).collect();
                let unit = space.snap(&raw, config.budget);
                let disagreement = (built.predict(&unit) - tree.predict(&unit)).abs();
                (disagreement, unit)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));

        let remaining = config.budget - design.len();
        let take = config.batch_size.min(remaining);
        let new_points: Vec<Vec<f64>> = scored.into_iter().take(take).map(|(_, p)| p).collect();
        let new_responses = eval_batch(response, &new_points, config.build.threads)?;
        design.extend(new_points);
        responses.extend(new_responses);
    }
    builder.fit(design, responses, f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::FnResponse;

    fn bumpy() -> FnResponse<impl Fn(&[f64]) -> f64 + Sync> {
        // Smooth background plus a localized bump that uniform samples
        // often miss — the case adaptive refinement should help with.
        FnResponse::new(9, |x| {
            let d2: f64 = (0..3).map(|k| (x[k] - 0.8) * (x[k] - 0.8)).sum();
            2.0 + x[0] + 2.5 * (-d2 / 0.02).exp()
        })
        .unwrap()
    }

    #[test]
    fn adaptive_build_respects_budget() {
        let space = DesignSpace::paper_table1();
        let config = AdaptiveConfig {
            initial_size: 20,
            batch_size: 8,
            budget: 44,
            candidate_pool: 64,
            build: BuildConfig::quick(20),
        };
        let built = build_adaptive(&space, &bumpy(), &config).unwrap();
        assert_eq!(built.design.len(), 44);
        assert_eq!(built.responses.len(), 44);
    }

    #[test]
    fn adaptive_concentrates_points_near_the_bump() {
        let space = DesignSpace::paper_table1();
        let config = AdaptiveConfig {
            initial_size: 24,
            batch_size: 12,
            budget: 72,
            candidate_pool: 256,
            build: BuildConfig::quick(24),
        };
        let built = build_adaptive(&space, &bumpy(), &config).unwrap();
        // Count refinement points inside the bump's neighbourhood vs the
        // fraction of volume it occupies (~0.3^3 of the first 3 dims).
        let added = &built.design[24..];
        let near = added
            .iter()
            .filter(|p| (0..3).all(|k| (p[k] - 0.8).abs() < 0.2))
            .count();
        let frac = near as f64 / added.len() as f64;
        assert!(
            frac > 0.1,
            "adaptive rounds placed only {near}/{} points near the bump",
            added.len()
        );
    }

    #[test]
    fn bad_budget_is_a_typed_error() {
        let space = DesignSpace::paper_table1();
        let config = AdaptiveConfig {
            initial_size: 30,
            budget: 10,
            ..AdaptiveConfig::default()
        };
        let err = build_adaptive(&space, &bumpy(), &config).unwrap_err();
        assert!(matches!(err, BuildError::InvalidConfig(_)));
        assert!(err.to_string().contains("budget 10 below"));
    }

    #[test]
    fn zero_batch_size_is_a_typed_error() {
        let space = DesignSpace::paper_table1();
        let config = AdaptiveConfig {
            batch_size: 0,
            ..AdaptiveConfig::default()
        };
        let err = build_adaptive(&space, &bumpy(), &config).unwrap_err();
        assert!(matches!(err, BuildError::InvalidConfig(_)));
    }
}
