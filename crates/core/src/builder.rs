//! The `BuildRBFmodel` procedure (paper §1, steps 1–6).

use std::error::Error;
use std::fmt;

use ppm_rbf::{FittedRbf, RbfTrainer, TrainError};
use ppm_regtree::{Dataset, DatasetError, RegressionTree};
use ppm_rng::{derive_seed, Rng};
use ppm_sampling::lhs::{LatinHypercube, SampleError};
use ppm_sampling::random::random_design;

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::metrics::ErrorStats;
use crate::response::Response;
use crate::space::DesignSpace;
use crate::supervise::{eval_batch_supervised, Quarantine, SupervisorPolicy};

/// Errors from model building.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BuildError {
    /// The simulated responses could not form a dataset (e.g. non-finite
    /// CPI values).
    BadData(DatasetError),
    /// The accuracy target was not reached at the largest sample size.
    TargetNotReached {
        /// The best mean error achieved (percent).
        best_mean_pct: f64,
        /// The target (percent).
        target_pct: f64,
    },
    /// A caller-supplied parameter was unusable (zero dimension, zero
    /// threads, empty budget, ...).
    InvalidConfig(String),
    /// Too many design points were quarantined for the model to be
    /// trustworthy (the graceful-degradation threshold was exceeded).
    ExcessiveFaults {
        /// Number of quarantined points.
        quarantined: usize,
        /// Batch size.
        total: usize,
        /// Evidence from the first quarantined point.
        detail: String,
    },
    /// The checkpoint journal could not be read or written; the message
    /// carries the rendered [`CheckpointError`].
    Checkpoint(String),
    /// RBF training failed (empty parameter grid, zero threads).
    Train(TrainError),
    /// Sample selection failed (zero candidates, zero threads).
    Sample(SampleError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::BadData(e) => write!(f, "invalid sample data: {e}"),
            BuildError::TargetNotReached {
                best_mean_pct,
                target_pct,
            } => write!(
                f,
                "accuracy target {target_pct}% not reached (best {best_mean_pct:.2}%)"
            ),
            BuildError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            BuildError::ExcessiveFaults {
                quarantined,
                total,
                detail,
            } => write!(
                f,
                "{quarantined} of {total} design points quarantined ({detail})"
            ),
            BuildError::Checkpoint(msg) => write!(f, "checkpoint failure: {msg}"),
            BuildError::Train(e) => write!(f, "training failed: {e}"),
            BuildError::Sample(e) => write!(f, "sample selection failed: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::BadData(e) => Some(e),
            BuildError::Train(e) => Some(e),
            BuildError::Sample(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TrainError> for BuildError {
    fn from(e: TrainError) -> Self {
        BuildError::Train(e)
    }
}

impl From<SampleError> for BuildError {
    fn from(e: SampleError) -> Self {
        BuildError::Sample(e)
    }
}

impl From<DatasetError> for BuildError {
    fn from(e: DatasetError) -> Self {
        BuildError::BadData(e)
    }
}

impl From<CheckpointError> for BuildError {
    fn from(e: CheckpointError) -> Self {
        BuildError::Checkpoint(e.to_string())
    }
}

/// Configuration of the model-building procedure.
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Number of design points to simulate (paper: 30–200).
    pub sample_size: usize,
    /// Number of candidate latin hypercubes generated; the one with the
    /// lowest L2-star discrepancy is kept (paper §2.2).
    pub lhs_candidates: usize,
    /// The RBF training grid (p_min and α candidates, criterion).
    pub trainer: RbfTrainer,
    /// Seed for sampling decisions.
    pub seed: u64,
    /// Worker threads for simulation.
    pub threads: usize,
    /// Worker threads for the training-side hot paths (LHS candidate
    /// sweep and the RBF grid search). The built model is byte-identical
    /// for any value ≥ 1.
    pub train_threads: usize,
    /// Fault-tolerance policy for the simulation batches: retry budget,
    /// backoff, and the quarantine threshold for graceful degradation.
    pub supervisor: SupervisorPolicy,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            sample_size: 90,
            lhs_candidates: 200,
            trainer: RbfTrainer::default(),
            seed: 1,
            threads: crate::response::default_threads(),
            train_threads: ppm_exec::default_threads(),
            supervisor: SupervisorPolicy::default(),
        }
    }
}

impl BuildConfig {
    /// A reduced configuration for fast tests: small candidate pool and
    /// training grid.
    pub fn quick(sample_size: usize) -> Self {
        BuildConfig {
            sample_size,
            lhs_candidates: 16,
            trainer: RbfTrainer::quick(),
            ..BuildConfig::default()
        }
    }

    /// Sets the sample size.
    pub fn with_sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fault-tolerance policy.
    pub fn with_supervisor(mut self, policy: SupervisorPolicy) -> Self {
        self.supervisor = policy;
        self
    }

    /// Sets the worker-thread count for the training-side hot paths.
    pub fn with_train_threads(mut self, threads: usize) -> Self {
        self.train_threads = threads;
        self
    }

    /// Sets the latin-hypercube candidate pool size.
    pub fn with_lhs_candidates(mut self, candidates: usize) -> Self {
        self.lhs_candidates = candidates;
        self
    }
}

/// The outcome of one model build: the fitted network plus the sample it
/// was trained on.
#[derive(Debug, Clone)]
pub struct BuiltModel {
    /// The fitted RBF network with its method parameters.
    pub model: FittedRbf,
    /// The training design (unit coordinates) — survivors only.
    pub design: Vec<Vec<f64>>,
    /// The simulated responses, aligned with `design`.
    pub responses: Vec<f64>,
    /// The L2-star discrepancy of the chosen sample.
    pub discrepancy: f64,
    /// Design points dropped by the supervisor (empty for a clean
    /// build). The model was trained without them.
    pub quarantined: Vec<Quarantine>,
}

/// Training-residual summary for one leaf region of the regression-tree
/// partition behind the fitted model (the paper's §2.4 cells). Regions
/// with systematically large residuals localize where the surrogate is
/// weakest in design space.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionResidual {
    /// Arena index of the leaf in the refitted tree (stable for a fixed
    /// sample and `p_min`).
    pub leaf: usize,
    /// Number of training points in the region.
    pub count: usize,
    /// Mean |prediction − actual| / |actual| over the region, percent.
    pub mean_abs_pct: f64,
    /// Largest single relative residual in the region, percent.
    pub max_abs_pct: f64,
}

/// Model-quality diagnostics for one build, as recorded in the run
/// ledger: held-out accuracy, per-region training residuals, and the
/// winning model-selection parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDiagnostics {
    /// CPI error statistics on a held-out test set, when one was
    /// evaluated.
    pub holdout: Option<ErrorStats>,
    /// Training residuals grouped by regression-tree region, ordered by
    /// leaf index.
    pub regions: Vec<RegionResidual>,
    /// Number of selected RBF centers.
    pub centers: usize,
    /// The winning leaf-size parameter.
    pub p_min: usize,
    /// The winning width scale.
    pub alpha: f64,
    /// The winning model-selection score (AICc by default).
    pub aicc: f64,
    /// Training sum of squared errors of the winning model.
    pub train_sse: f64,
    /// L2-star discrepancy of the training sample.
    pub discrepancy: f64,
    /// Number of design points quarantined by the supervisor.
    pub quarantined: usize,
}

impl BuiltModel {
    /// Predicts the response at a unit design point.
    pub fn predict(&self, unit: &[f64]) -> f64 {
        self.model.network.predict(unit)
    }

    /// Evaluates the model on a test set.
    pub fn evaluate(&self, test_points: &[Vec<f64>], test_actual: &[f64]) -> ErrorStats {
        let predicted: Vec<f64> = test_points.iter().map(|p| self.predict(p)).collect();
        ErrorStats::from_predictions(&predicted, test_actual)
    }

    /// Training residuals grouped by the leaf regions of the tree
    /// partition that produced the model's centers: the tree is refitted
    /// with the winning `p_min` (deterministic for a fixed sample), and
    /// each training point's relative residual is attributed to its
    /// containing leaf. Ordered by leaf index.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::BadData`] if the stored sample cannot form
    /// a dataset (cannot happen for a model built by this crate).
    pub fn region_residuals(&self) -> Result<Vec<RegionResidual>, BuildError> {
        let data = Dataset::new(self.design.clone(), self.responses.clone())?;
        let tree = RegressionTree::fit(&data, self.model.p_min);
        // leaf arena index -> (count, sum of |rel|, max |rel|)
        let mut by_leaf: std::collections::BTreeMap<usize, (usize, f64, f64)> =
            std::collections::BTreeMap::new();
        for (x, &y) in self.design.iter().zip(&self.responses) {
            let rel_pct = if y.abs() > 1e-12 {
                (self.predict(x) - y).abs() / y.abs() * 100.0
            } else {
                0.0
            };
            let entry = by_leaf.entry(tree.leaf_index(x)).or_insert((0, 0.0, 0.0));
            entry.0 += 1;
            entry.1 += rel_pct;
            entry.2 = entry.2.max(rel_pct);
        }
        Ok(by_leaf
            .into_iter()
            .map(|(leaf, (count, sum, max))| RegionResidual {
                leaf,
                count,
                mean_abs_pct: sum / count as f64,
                max_abs_pct: max,
            })
            .collect())
    }

    /// Assembles the full diagnostics record for this build, attaching
    /// `holdout` statistics when a held-out evaluation was run.
    ///
    /// # Errors
    ///
    /// As [`BuiltModel::region_residuals`].
    pub fn diagnostics(&self, holdout: Option<ErrorStats>) -> Result<ModelDiagnostics, BuildError> {
        Ok(ModelDiagnostics {
            holdout,
            regions: self.region_residuals()?,
            centers: self.model.network.num_centers(),
            p_min: self.model.p_min,
            alpha: self.model.alpha,
            aicc: self.model.score,
            train_sse: self.model.sse,
            discrepancy: self.discrepancy,
            quarantined: self.quarantined.len(),
        })
    }
}

/// Builds RBF network models of a response over a design space,
/// following the paper's procedure.
///
/// # Examples
///
/// ```
/// use ppm_core::builder::{BuildConfig, BuildError, RbfModelBuilder};
/// use ppm_core::response::FnResponse;
/// use ppm_core::space::DesignSpace;
///
/// let builder = RbfModelBuilder::new(DesignSpace::paper_table1(), BuildConfig::quick(30));
/// let response = FnResponse::new(9, |x| 2.0 + x[0] * x[5])?;
/// let built = builder.build(&response)?;
/// let pred = built.predict(&[0.5; 9]);
/// assert!(pred.is_finite());
/// # Ok::<(), BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RbfModelBuilder {
    space: DesignSpace,
    config: BuildConfig,
}

impl RbfModelBuilder {
    /// Creates a builder over a space with the given configuration.
    pub fn new(space: DesignSpace, config: BuildConfig) -> Self {
        RbfModelBuilder { space, config }
    }

    /// The design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The configuration.
    pub fn config(&self) -> &BuildConfig {
        &self.config
    }

    /// Selects the training sample: the best of many latin hypercubes by
    /// L2-star discrepancy (paper steps 1–2). Returns the design and its
    /// discrepancy. Candidates are scored over
    /// [`BuildConfig::train_threads`] workers; the chosen design does
    /// not depend on the thread count.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Sample`] if `lhs_candidates` or
    /// `train_threads` is zero.
    pub fn select_sample(&self) -> Result<(Vec<Vec<f64>>, f64), BuildError> {
        let mut rng = Rng::seed_from_u64(derive_seed(self.config.seed, 100));
        let lhs = LatinHypercube::new(self.space.params(), self.config.sample_size)
            .with_threads(self.config.train_threads);
        Ok(lhs.best_of_with_score(self.config.lhs_candidates, &mut rng)?)
    }

    /// Runs the full procedure: sample, simulate under supervision, fit
    /// (paper steps 1–4). Faulty points within the policy's quarantine
    /// threshold are dropped and reported in
    /// [`BuiltModel::quarantined`]; the model trains on the survivors.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::ExcessiveFaults`] if too many points were
    /// quarantined, or [`BuildError::BadData`] if the surviving sample
    /// cannot form a dataset.
    pub fn build<R: Response>(&self, response: &R) -> Result<BuiltModel, BuildError> {
        self.build_with_checkpoint(response, None)
    }

    /// Like [`RbfModelBuilder::build`], journaling every completed
    /// simulation into `checkpoint` so an interrupted run can resume.
    ///
    /// Points already present in the journal are served from it without
    /// re-simulation (emitting a `robust.resume` event). New results are
    /// recorded and flushed atomically after the batch — including when
    /// the batch then fails the quarantine threshold, so the completed
    /// work survives the failure.
    ///
    /// Because sampling is deterministic in the seed, a resumed build
    /// produces a model bit-identical to an uninterrupted one.
    ///
    /// # Errors
    ///
    /// As [`RbfModelBuilder::build`], plus [`BuildError::Checkpoint`]
    /// if the journal cannot be flushed.
    pub fn build_checkpointed<R: Response>(
        &self,
        response: &R,
        checkpoint: &mut Checkpoint,
    ) -> Result<BuiltModel, BuildError> {
        self.build_with_checkpoint(response, Some(checkpoint))
    }

    fn build_with_checkpoint<R: Response>(
        &self,
        response: &R,
        mut checkpoint: Option<&mut Checkpoint>,
    ) -> Result<BuiltModel, BuildError> {
        let (design, discrepancy) = self.select_sample()?;
        let precomputed: Vec<Option<f64>> = match checkpoint.as_deref() {
            Some(cp) if !cp.is_empty() => {
                let cached: Vec<Option<f64>> = design.iter().map(|p| cp.lookup(p)).collect();
                let hits = cached.iter().filter(|v| v.is_some()).count();
                if hits > 0 {
                    ppm_telemetry::counter("robust.resumed").add(hits as u64);
                    ppm_telemetry::event(
                        "robust.resume",
                        &[("cached", hits.into()), ("points", design.len().into())],
                    );
                }
                cached
            }
            _ => Vec::new(),
        };
        // Run permissively so partial results reach the journal even
        // when the batch will fail the quarantine threshold below.
        let permissive = self
            .config
            .supervisor
            .clone()
            .with_max_quarantined_frac(1.0);
        let outcome = eval_batch_supervised(
            response,
            &design,
            self.config.threads,
            &permissive,
            &precomputed,
        )?;
        if let Some(cp) = checkpoint.take() {
            for (p, v) in design.iter().zip(&outcome.values) {
                if let Some(y) = v {
                    cp.record(p, *y);
                }
            }
            cp.flush()?;
        }
        outcome.check_threshold(&self.config.supervisor)?;
        let (survivors, responses) = outcome.survivors(&design);
        let mut built = self.fit(survivors, responses, discrepancy)?;
        built.quarantined = outcome.quarantined;
        Ok(built)
    }

    /// Fits a model to an existing simulated sample (useful when the
    /// responses were computed elsewhere or cached).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::BadData`] if the data are inconsistent, or
    /// [`BuildError::Train`] if the training grid is unusable.
    pub fn fit(
        &self,
        design: Vec<Vec<f64>>,
        responses: Vec<f64>,
        discrepancy: f64,
    ) -> Result<BuiltModel, BuildError> {
        let data = Dataset::new(design.clone(), responses.clone())?;
        let trainer = self
            .config
            .trainer
            .clone()
            .with_threads(self.config.train_threads);
        let model = trainer.fit(&data)?;
        Ok(BuiltModel {
            model,
            design,
            responses,
            discrepancy,
            quarantined: Vec::new(),
        })
    }

    /// Generates the independent random test set of the paper's §3:
    /// `count` points in the (narrower) test space, expressed in the
    /// *training* space's unit coordinates.
    pub fn test_points(&self, test_space: &DesignSpace, count: usize) -> Vec<Vec<f64>> {
        let mut rng = Rng::seed_from_u64(derive_seed(self.config.seed, 200));
        random_design(test_space.params(), count, &mut rng)
            .into_iter()
            .map(|unit| {
                let actual = test_space.to_actual(&unit);
                self.space.params().to_unit(&actual)
            })
            .collect()
    }

    /// The iterative procedure of step 6: build models at increasing
    /// sample sizes until the mean test error falls below
    /// `target_mean_pct`.
    ///
    /// Returns the first model meeting the target together with its
    /// error statistics.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidConfig`] if `sample_sizes` is
    /// empty, [`BuildError::TargetNotReached`] if even the largest
    /// sample size misses the target, or [`BuildError::BadData`] on
    /// invalid responses.
    pub fn build_to_accuracy<R: Response>(
        &self,
        response: &R,
        sample_sizes: &[usize],
        target_mean_pct: f64,
        test_points: &[Vec<f64>],
        test_actual: &[f64],
    ) -> Result<(BuiltModel, ErrorStats), BuildError> {
        if sample_sizes.is_empty() {
            return Err(BuildError::InvalidConfig(
                "no sample sizes given".to_string(),
            ));
        }
        let mut best: Option<(BuiltModel, ErrorStats)> = None;
        for &n in sample_sizes {
            ppm_telemetry::counter("build.escalations").inc();
            ppm_telemetry::event("build.sample_size", &[("points", n.into())]);
            let mut builder = self.clone();
            builder.config.sample_size = n;
            let built = builder.build(response)?;
            let stats = built.evaluate(test_points, test_actual);
            ppm_telemetry::event(
                "build.evaluated",
                &[("points", n.into()), ("mean_pct", stats.mean_pct.into())],
            );
            if stats.mean_pct <= target_mean_pct {
                return Ok((built, stats));
            }
            if best
                .as_ref()
                .is_none_or(|(_, s)| stats.mean_pct < s.mean_pct)
            {
                best = Some((built, stats));
            }
        }
        let best_mean = best.map(|(_, s)| s.mean_pct).unwrap_or(f64::INFINITY);
        Err(BuildError::TargetNotReached {
            best_mean_pct: best_mean,
            target_pct: target_mean_pct,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::FnResponse;

    fn smooth_response() -> FnResponse<impl Fn(&[f64]) -> f64 + Sync> {
        FnResponse::new(9, |x| {
            2.0 + 1.5 * x[0] + (2.0 * x[4]).exp() * 0.2 + x[5] * x[5] - 0.5 * x[5] * x[6]
        })
        .unwrap()
    }

    #[test]
    fn build_produces_accurate_model_on_smooth_response() {
        let builder = RbfModelBuilder::new(DesignSpace::paper_table1(), BuildConfig::quick(80));
        let built = builder.build(&smooth_response()).unwrap();
        assert!(built.quarantined.is_empty());
        let test = builder.test_points(&DesignSpace::paper_table2(), 40);
        let actual: Vec<f64> = test.iter().map(|p| smooth_response().eval(p)).collect();
        let stats = built.evaluate(&test, &actual);
        assert!(stats.mean_pct < 5.0, "mean error {stats}");
    }

    #[test]
    fn sample_selection_is_deterministic_and_snapped() {
        let builder = RbfModelBuilder::new(DesignSpace::paper_table1(), BuildConfig::quick(30));
        let (a, da) = builder.select_sample().unwrap();
        let (b, db) = builder.select_sample().unwrap();
        assert_eq!(a, b);
        assert_eq!(da, db);
        assert_eq!(a.len(), 30);
        // L2 size has 6 levels: unit coordinates are multiples of 1/5.
        for p in &a {
            let scaled = p[4] * 5.0;
            assert!((scaled - scaled.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn different_seeds_give_different_samples() {
        let b1 = RbfModelBuilder::new(
            DesignSpace::paper_table1(),
            BuildConfig::quick(30).with_seed(1),
        );
        let b2 = RbfModelBuilder::new(
            DesignSpace::paper_table1(),
            BuildConfig::quick(30).with_seed(2),
        );
        assert_ne!(b1.select_sample().unwrap().0, b2.select_sample().unwrap().0);
    }

    #[test]
    fn test_points_lie_in_the_restricted_region() {
        let builder = RbfModelBuilder::new(DesignSpace::paper_table1(), BuildConfig::quick(30));
        let test = builder.test_points(&DesignSpace::paper_table2(), 50);
        assert_eq!(test.len(), 50);
        for p in &test {
            // In training-space unit coordinates the pipe-depth axis is
            // confined to Table 2's [2/17, 15/17] window.
            assert!(p[0] >= 2.0 / 17.0 - 1e-6 && p[0] <= 15.0 / 17.0 + 1e-6);
            // ROB confined to [0.125, 0.875].
            assert!(p[1] >= 0.124 && p[1] <= 0.876);
            for &v in p.iter() {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn region_residuals_cover_every_training_point() {
        let builder = RbfModelBuilder::new(DesignSpace::paper_table1(), BuildConfig::quick(50));
        let built = builder.build(&smooth_response()).unwrap();
        let regions = built.region_residuals().unwrap();
        assert!(!regions.is_empty());
        let covered: usize = regions.iter().map(|r| r.count).sum();
        assert_eq!(covered, built.design.len());
        for r in &regions {
            assert!(r.mean_abs_pct.is_finite() && r.mean_abs_pct >= 0.0);
            assert!(r.max_abs_pct >= r.mean_abs_pct - 1e-12);
        }
        // Leaf order and values are deterministic.
        assert_eq!(regions, built.region_residuals().unwrap());
    }

    #[test]
    fn diagnostics_reflect_the_winning_model() {
        let builder = RbfModelBuilder::new(DesignSpace::paper_table1(), BuildConfig::quick(50));
        let built = builder.build(&smooth_response()).unwrap();
        let test = builder.test_points(&DesignSpace::paper_table2(), 20);
        let actual: Vec<f64> = test.iter().map(|p| smooth_response().eval(p)).collect();
        let holdout = built.evaluate(&test, &actual);
        let diag = built.diagnostics(Some(holdout)).unwrap();
        assert_eq!(diag.holdout, Some(holdout));
        assert_eq!(diag.centers, built.model.network.num_centers());
        assert_eq!(diag.p_min, built.model.p_min);
        assert_eq!(diag.aicc, built.model.score);
        assert_eq!(diag.quarantined, 0);
        assert!(diag.discrepancy > 0.0);
    }

    #[test]
    fn build_degrades_gracefully_on_sparse_faults() {
        // One specific point region yields NaN; everything else is fine.
        let response = FnResponse::new(9, |x: &[f64]| {
            if x[0] > 0.97 {
                f64::NAN
            } else {
                2.0 + 1.5 * x[0] + x[5]
            }
        })
        .unwrap();
        let config = BuildConfig::quick(60)
            .with_supervisor(SupervisorPolicy::default().with_max_quarantined_frac(0.2));
        let builder = RbfModelBuilder::new(DesignSpace::paper_table1(), config);
        let built = builder.build(&response).unwrap();
        // An LHS of 60 points covers the faulty stratum at least once.
        assert!(!built.quarantined.is_empty(), "fault region never sampled");
        assert_eq!(built.design.len() + built.quarantined.len(), 60);
        assert!(built.predict(&[0.5; 9]).is_finite());
    }

    #[test]
    fn build_fails_typed_when_faults_exceed_threshold() {
        let response = FnResponse::new(9, |_: &[f64]| f64::NAN).unwrap();
        let builder = RbfModelBuilder::new(DesignSpace::paper_table1(), BuildConfig::quick(20));
        let err = builder.build(&response).unwrap_err();
        assert!(matches!(err, BuildError::ExcessiveFaults { .. }), "{err:?}");
    }

    #[test]
    fn build_to_accuracy_stops_at_first_adequate_size() {
        let builder = RbfModelBuilder::new(DesignSpace::paper_table1(), BuildConfig::quick(30));
        let response = smooth_response();
        let test = builder.test_points(&DesignSpace::paper_table2(), 30);
        let actual: Vec<f64> = test.iter().map(|p| response.eval(p)).collect();
        let (built, stats) = builder
            .build_to_accuracy(&response, &[30, 60, 90], 8.0, &test, &actual)
            .unwrap();
        assert!(stats.mean_pct <= 8.0);
        assert!(built.design.len() <= 90);
    }

    #[test]
    fn build_to_accuracy_reports_unreachable_target() {
        let builder = RbfModelBuilder::new(DesignSpace::paper_table1(), BuildConfig::quick(20));
        // A response too rough to model with 20 points.
        let response = FnResponse::new(9, |x| {
            1.0 + (37.0 * x[0]).sin() + (53.0 * x[1]).cos() * (29.0 * x[2]).sin()
        })
        .unwrap();
        let test = builder.test_points(&DesignSpace::paper_table2(), 30);
        let actual: Vec<f64> = test.iter().map(|p| response.eval(p)).collect();
        let err = builder
            .build_to_accuracy(&response, &[20], 0.01, &test, &actual)
            .unwrap_err();
        assert!(matches!(err, BuildError::TargetNotReached { .. }));
        assert!(err.to_string().contains("not reached"));
    }

    #[test]
    fn build_to_accuracy_rejects_empty_budget() {
        let builder = RbfModelBuilder::new(DesignSpace::paper_table1(), BuildConfig::quick(20));
        let err = builder
            .build_to_accuracy(&smooth_response(), &[], 5.0, &[], &[])
            .unwrap_err();
        assert!(matches!(err, BuildError::InvalidConfig(_)));
    }
}
