//! Crash-safe checkpointing of simulated responses.
//!
//! Simulation batches are hours of work; a mid-run crash must not force
//! re-simulation of finished points. A [`Checkpoint`] journals every
//! completed `(design point, value)` pair to a small line-oriented text
//! file. Writes go to a sibling temporary file which is atomically
//! renamed into place, so the journal on disk is always a complete,
//! verifiable snapshot — never a torn write.
//!
//! ```text
//! ppm-checkpoint v1
//! meta <key> <value>                 # zero or more
//! point <x0..xd> | <value> | <fnv64 of the payload>
//! ...
//! checksum <fnv64 of everything above>
//! ```
//!
//! Values are recorded with 17 significant digits, so a resumed run
//! reproduces bit-identical responses (and therefore bit-identical
//! models) without re-simulating journaled points. Both the per-line and
//! whole-file FNV-1a checksums are verified on load; corrupted or
//! truncated journals are rejected with a typed [`CheckpointError`].

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::hash::fnv1a64;

/// Errors from reading or writing checkpoint journals.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The journal is not valid (message describes the problem).
    Format(String),
    /// The journal's metadata does not match the requesting run.
    Mismatch {
        /// Metadata key that disagrees.
        key: String,
        /// Value recorded in the journal.
        found: String,
        /// Value the current run expects.
        expected: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(msg) => write!(f, "invalid checkpoint: {msg}"),
            CheckpointError::Mismatch {
                key,
                found,
                expected,
            } => write!(
                f,
                "checkpoint belongs to a different run: {key} is {found:?}, expected {expected:?}"
            ),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A crash-safe journal of completed simulation results.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    meta: Vec<(String, String)>,
    entries: Vec<(Vec<f64>, f64)>,
    index: BTreeMap<String, f64>,
}

fn point_key(point: &[f64]) -> String {
    point
        .iter()
        .map(|x| format!("{x:.17e}"))
        .collect::<Vec<_>>()
        .join(" ")
}

impl Checkpoint {
    /// Creates an empty journal that will be written to `path`. Nothing
    /// touches the filesystem until [`Checkpoint::flush`].
    ///
    /// # Panics
    ///
    /// Panics if a metadata key contains whitespace or a value contains
    /// a newline (mirrors [`crate::persist::to_string`]).
    pub fn create(path: impl Into<PathBuf>, meta: &[(String, String)]) -> Self {
        for (k, v) in meta {
            assert!(
                !k.contains(char::is_whitespace),
                "metadata key {k:?} contains whitespace"
            );
            assert!(!v.contains('\n'), "metadata value contains a newline");
        }
        Checkpoint {
            path: path.into(),
            meta: meta.to_vec(),
            entries: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// Loads and verifies an existing journal.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure,
    /// [`CheckpointError::Format`] on any corruption: bad header, a
    /// point line whose per-line checksum disagrees, a missing or wrong
    /// whole-file checksum (truncation), or trailing garbage.
    pub fn load(path: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let path = path.into();
        let text = fs::read_to_string(&path)?;
        let bad = |msg: String| CheckpointError::Format(msg);

        // The whole-file checksum must be the final non-empty line; it
        // covers every byte before its own first character.
        let trimmed = text.trim_end();
        let (sum_start, sum_line) = match trimmed.rfind('\n') {
            Some(i) => (i + 1, &trimmed[i + 1..]),
            None => (0, trimmed),
        };
        let recorded = sum_line
            .strip_prefix("checksum ")
            .ok_or_else(|| bad("missing checksum line (truncated journal?)".to_string()))?
            .trim()
            .to_string();
        let actual = format!("{:016x}", fnv1a64(&text.as_bytes()[..sum_start]));
        if recorded != actual {
            return Err(bad(format!(
                "file checksum mismatch: recorded {recorded}, computed {actual} (corrupted journal)"
            )));
        }

        let mut lines = text[..sum_start].lines().filter(|l| !l.trim().is_empty());
        match lines.next() {
            Some("ppm-checkpoint v1") => {}
            Some(other) => return Err(bad(format!("unknown header {other:?}"))),
            None => return Err(bad("empty journal".to_string())),
        }
        let mut ckpt = Checkpoint {
            path,
            meta: Vec::new(),
            entries: Vec::new(),
            index: BTreeMap::new(),
        };
        for line in lines {
            let mut parts = line.splitn(2, ' ');
            let tag = parts.next().unwrap_or("");
            let rest = parts.next().unwrap_or("").trim();
            match tag {
                "meta" => {
                    let mut kv = rest.splitn(2, ' ');
                    let k = kv.next().unwrap_or("").to_string();
                    let v = kv.next().unwrap_or("").to_string();
                    if k.is_empty() {
                        return Err(bad("meta line without a key".to_string()));
                    }
                    ckpt.meta.push((k, v));
                }
                "point" => {
                    let (payload, line_sum) = rest
                        .rsplit_once('|')
                        .ok_or_else(|| bad("point line without checksum".to_string()))?;
                    let payload = payload.trim_end();
                    let expected = format!("{:016x}", fnv1a64(payload.as_bytes()));
                    if line_sum.trim() != expected {
                        return Err(bad(format!("point line checksum mismatch on {payload:?}")));
                    }
                    let (coords, value) = payload
                        .split_once('|')
                        .ok_or_else(|| bad("point line without value".to_string()))?;
                    let point: Vec<f64> = coords
                        .split_whitespace()
                        .map(|t| {
                            t.parse::<f64>()
                                .map_err(|_| bad(format!("bad coordinate {t:?}")))
                        })
                        .collect::<Result<_, _>>()?;
                    let value: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("bad value {:?}", value.trim())))?;
                    if point.is_empty() {
                        return Err(bad("point line without coordinates".to_string()));
                    }
                    ckpt.index.insert(point_key(&point), value);
                    ckpt.entries.push((point, value));
                }
                other => return Err(bad(format!("unknown line tag {other:?}"))),
            }
        }
        Ok(ckpt)
    }

    /// The journal's filesystem path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `(key, value)` metadata pairs, in file order.
    pub fn meta(&self) -> &[(String, String)] {
        &self.meta
    }

    /// Looks up a metadata value.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Verifies that the journal's metadata agrees with the current
    /// run's on every given key (keys absent from the journal pass).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] on the first disagreement.
    pub fn verify_meta(&self, expected: &[(String, String)]) -> Result<(), CheckpointError> {
        for (k, want) in expected {
            if let Some(found) = self.meta_value(k) {
                if found != want {
                    return Err(CheckpointError::Mismatch {
                        key: k.clone(),
                        found: found.to_string(),
                        expected: want.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of journaled results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The journaled value for a point, if present (bit-exact match on
    /// the coordinates).
    pub fn lookup(&self, point: &[f64]) -> Option<f64> {
        self.index.get(&point_key(point)).copied()
    }

    /// Journals one completed result in memory (call
    /// [`Checkpoint::flush`] to persist). Re-recording a point
    /// overwrites its value.
    pub fn record(&mut self, point: &[f64], value: f64) {
        let key = point_key(point);
        if self.index.insert(key, value).is_some() {
            if let Some(e) = self.entries.iter_mut().find(|(p, _)| p.as_slice() == point) {
                e.1 = value;
            }
        } else {
            self.entries.push((point.to_vec(), value));
        }
    }

    /// Serializes the journal (header, meta, points, file checksum).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "ppm-checkpoint v1");
        for (k, v) in &self.meta {
            let _ = writeln!(out, "meta {k} {v}");
        }
        for (point, value) in &self.entries {
            // The per-line checksum covers the payload after the tag,
            // matching what `load` sees after splitting it off.
            let payload = format!("{} | {value:.17e}", point_key(point));
            let sum = fnv1a64(payload.as_bytes());
            let _ = writeln!(out, "point {payload} | {sum:016x}");
        }
        let sum = fnv1a64(out.as_bytes());
        let _ = writeln!(out, "checksum {sum:016x}");
        out
    }

    /// Atomically persists the journal: writes a sibling temporary
    /// file, syncs it, and renames it over `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn flush(&self) -> Result<(), CheckpointError> {
        let file_name = self
            .path
            .file_name()
            .ok_or_else(|| CheckpointError::Format("checkpoint path has no file name".into()))?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp = self.path.with_file_name(tmp_name);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(self.to_text().as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ppm_checkpoint_tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Checkpoint {
        let meta = vec![
            ("benchmark".to_string(), "mcf".to_string()),
            ("seed".to_string(), "1".to_string()),
        ];
        let mut c = Checkpoint::create(temp_path("sample.ckpt"), &meta);
        c.record(&[0.25, 0.5], 1.75);
        c.record(&[0.1, 0.9], std::f64::consts::PI);
        c
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let c = sample();
        c.flush().unwrap();
        let loaded = Checkpoint::load(c.path()).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.lookup(&[0.25, 0.5]), Some(1.75));
        assert_eq!(loaded.lookup(&[0.1, 0.9]), Some(std::f64::consts::PI));
        assert_eq!(loaded.lookup(&[0.25, 0.51]), None);
        assert_eq!(loaded.meta_value("benchmark"), Some("mcf"));
        fs::remove_file(c.path()).ok();
    }

    #[test]
    fn rerecording_overwrites() {
        let mut c = Checkpoint::create(temp_path("overwrite.ckpt"), &[]);
        c.record(&[0.5], 1.0);
        c.record(&[0.5], 2.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(&[0.5]), Some(2.0));
    }

    #[test]
    fn truncated_journal_is_rejected() {
        let c = sample();
        let text = c.to_text();
        // Drop the checksum line entirely.
        let truncated = text.rsplit_once("checksum").unwrap().0;
        let path = temp_path("truncated.ckpt");
        fs::write(&path, truncated).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_point_line_is_rejected() {
        let c = sample();
        let text = c.to_text().replace("1.75", "9.75");
        let path = temp_path("corrupt.ckpt");
        fs::write(&path, text).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("mismatch"), "{err}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_header_is_rejected() {
        let path = temp_path("header.ckpt");
        let body = "ppm-checkpoint v2\n";
        let sum = fnv1a64(body.as_bytes());
        fs::write(&path, format!("{body}checksum {sum:016x}\n")).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("unknown header"), "{err}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn meta_mismatch_is_typed() {
        let c = sample();
        let err = c
            .verify_meta(&[("benchmark".to_string(), "ammp".to_string())])
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }));
        // Matching and absent keys pass.
        c.verify_meta(&[
            ("benchmark".to_string(), "mcf".to_string()),
            ("absent".to_string(), "x".to_string()),
        ])
        .unwrap();
    }

    #[test]
    fn flush_is_atomic_rename() {
        let c = sample();
        c.flush().unwrap();
        // No temporary file is left behind.
        let tmp = c.path().with_file_name("sample.ckpt.tmp");
        assert!(!tmp.exists());
        assert!(c.path().exists());
        fs::remove_file(c.path()).ok();
    }
}
