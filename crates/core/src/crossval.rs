//! K-fold cross-validation for fitted surrogate models.
//!
//! The paper assesses accuracy with a dedicated random test set (50
//! fresh simulations). When simulations are too expensive even for
//! that, cross-validation estimates the generalization error from the
//! training sample alone: the sample is split into `k` folds, the model
//! is refitted `k` times holding one fold out, and the held-out
//! predictions are scored. Fold refits are independent, so they fan out
//! over [`CrossValidator::with_threads`] workers; held-out predictions
//! are reassembled in fold order, so the statistics are byte-identical
//! for every thread count.

use std::error::Error;
use std::fmt;

use ppm_exec::Executor;
use ppm_rbf::{RbfTrainer, TrainError};
use ppm_regtree::{Dataset, DatasetError};

use crate::metrics::ErrorStats;

/// Errors from cross-validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CrossValError {
    /// The sample could not form a dataset.
    Data(DatasetError),
    /// A fold refit failed.
    Train(TrainError),
    /// The fold count was unusable for this sample.
    BadFolds(String),
}

impl fmt::Display for CrossValError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossValError::Data(e) => write!(f, "invalid sample data: {e}"),
            CrossValError::Train(e) => write!(f, "fold refit failed: {e}"),
            CrossValError::BadFolds(msg) => write!(f, "bad fold count: {msg}"),
        }
    }
}

impl Error for CrossValError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CrossValError::Data(e) => Some(e),
            CrossValError::Train(e) => Some(e),
            CrossValError::BadFolds(_) => None,
        }
    }
}

impl From<DatasetError> for CrossValError {
    fn from(e: DatasetError) -> Self {
        CrossValError::Data(e)
    }
}

impl From<TrainError> for CrossValError {
    fn from(e: TrainError) -> Self {
        CrossValError::Train(e)
    }
}

/// K-fold cross-validation of an [`RbfTrainer`] with configurable fold
/// parallelism.
///
/// # Examples
///
/// ```
/// use ppm_core::crossval::CrossValidator;
/// use ppm_rbf::RbfTrainer;
/// use ppm_rng::Rng;
///
/// let mut rng = Rng::seed_from_u64(1);
/// let points: Vec<Vec<f64>> = (0..40).map(|_| vec![rng.unit_f64(), rng.unit_f64()]).collect();
/// let y: Vec<f64> = points.iter().map(|p| 1.0 + p[0] + p[1] * p[1]).collect();
/// let stats = CrossValidator::new(RbfTrainer::quick(), 5).run(&points, &y)?;
/// assert!(stats.mean_pct < 20.0);
/// # Ok::<(), ppm_core::crossval::CrossValError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CrossValidator {
    /// The trainer refitted on each fold's training split.
    pub trainer: RbfTrainer,
    /// Number of folds (k).
    pub folds: usize,
    /// Worker threads for the fold refits (results are identical for
    /// any value ≥ 1).
    pub threads: usize,
}

impl CrossValidator {
    /// Creates a validator with the default worker-thread count
    /// (`PPM_THREADS`-aware).
    pub fn new(trainer: RbfTrainer, folds: usize) -> Self {
        CrossValidator {
            trainer,
            folds,
            threads: ppm_exec::default_threads(),
        }
    }

    /// Sets the worker-thread count for the fold refits.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs the cross-validation, returning error statistics over all
    /// held-out predictions (the same mean/max/std percentages as the
    /// paper's test-set metric).
    ///
    /// # Errors
    ///
    /// * [`CrossValError::BadFolds`] if `folds < 2`, `folds` exceeds
    ///   the sample size, or `threads == 0`.
    /// * [`CrossValError::Data`] if the sample is inconsistent.
    /// * [`CrossValError::Train`] if a fold refit fails.
    pub fn run(&self, design: &[Vec<f64>], responses: &[f64]) -> Result<ErrorStats, CrossValError> {
        self.run_detailed(design, responses).map(|d| d.overall)
    }

    /// Like [`CrossValidator::run`], but also returns per-fold error
    /// statistics (fold `i` holds out points `i mod k`) — the spread
    /// across folds indicates how sensitive the fit is to the sample.
    ///
    /// # Errors
    ///
    /// As [`CrossValidator::run`].
    pub fn run_detailed(
        &self,
        design: &[Vec<f64>],
        responses: &[f64],
    ) -> Result<DetailedCrossVal, CrossValError> {
        let k = self.folds;
        if k < 2 {
            return Err(CrossValError::BadFolds(
                "cross-validation needs at least 2 folds".to_string(),
            ));
        }
        if k > design.len() {
            return Err(CrossValError::BadFolds(format!(
                "more folds ({k}) than points ({})",
                design.len()
            )));
        }
        let exec = Executor::new(self.threads)
            .map_err(|_| CrossValError::BadFolds("zero worker threads".to_string()))?;
        // Validate the whole sample up front for consistent errors.
        Dataset::new(design.to_vec(), responses.to_vec())?;
        let _span = ppm_telemetry::span("stage.crossval");

        // A fold's held-out indices and its predictions for them.
        type FoldResult = Result<(Vec<usize>, Vec<f64>), TrainError>;

        let n = design.len();
        // Each fold refits independently; fold index fully determines
        // the train/test split (deterministic striping: point i belongs
        // to fold i mod k).
        let fold_results: Vec<FoldResult> = exec.map("crossval", k, |fold| {
            let mut train_x = Vec::new();
            let mut train_y = Vec::new();
            let mut test_idx = Vec::new();
            for i in 0..n {
                if i % k == fold {
                    test_idx.push(i);
                } else {
                    train_x.push(design[i].clone());
                    train_y.push(responses[i]);
                }
            }
            let data = Dataset::new(train_x, train_y)
                .unwrap_or_else(|e| unreachable!("validated above: {e}"));
            let fitted = self.trainer.fit(&data)?;
            ppm_telemetry::counter("crossval.folds").inc();
            let predictions = test_idx
                .iter()
                .map(|&i| fitted.network.predict(&design[i]))
                .collect();
            Ok((test_idx, predictions))
        });

        // Reassemble in fold order — exactly the serial loop's order.
        let mut predicted = Vec::with_capacity(n);
        let mut actual = Vec::with_capacity(n);
        let mut folds = Vec::with_capacity(k);
        for fold in fold_results {
            let (test_idx, predictions) = fold?;
            let fold_actual: Vec<f64> = test_idx.iter().map(|&i| responses[i]).collect();
            folds.push(ErrorStats::from_predictions(&predictions, &fold_actual));
            for (i, pred) in test_idx.into_iter().zip(predictions) {
                predicted.push(pred);
                actual.push(responses[i]);
            }
        }
        Ok(DetailedCrossVal {
            overall: ErrorStats::from_predictions(&predicted, &actual),
            folds,
        })
    }
}

/// The result of [`CrossValidator::run_detailed`]: pooled error
/// statistics plus the per-fold breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailedCrossVal {
    /// Statistics over all held-out predictions pooled together (what
    /// [`CrossValidator::run`] returns).
    pub overall: ErrorStats,
    /// Statistics of each fold's held-out predictions, in fold order.
    pub folds: Vec<ErrorStats>,
}

/// Cross-validates an RBF trainer on a sample with `k` folds — the
/// functional shorthand for [`CrossValidator`] at default parallelism.
///
/// # Errors
///
/// See [`CrossValidator::run`].
pub fn cross_validate(
    trainer: &RbfTrainer,
    design: &[Vec<f64>],
    responses: &[f64],
    k: usize,
) -> Result<ErrorStats, CrossValError> {
    CrossValidator::new(trainer.clone(), k).run(design, responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    fn sample(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = Rng::seed_from_u64(4);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.unit_f64()).collect())
            .collect();
        let y = pts
            .iter()
            .map(|p| 2.0 + p[0] + (2.0 * p[1]).sin() * 0.5 + 0.02 * rng.normal())
            .collect();
        (pts, y)
    }

    #[test]
    fn cv_error_tracks_true_generalization() {
        let (pts, y) = sample(60);
        let trainer = RbfTrainer::quick();
        let cv = cross_validate(&trainer, &pts, &y, 5).unwrap();
        // A learnable smooth function: CV error should be small but
        // nonzero (the noise floor is ~1%).
        assert!(cv.mean_pct > 0.0);
        assert!(cv.mean_pct < 10.0, "cv error {cv}");
    }

    #[test]
    fn cv_covers_every_point_exactly_once() {
        // With k folds striped by index, predicted length == n.
        let (pts, y) = sample(23);
        let cv = cross_validate(&RbfTrainer::quick(), &pts, &y, 4).unwrap();
        // Indirectly verified by ErrorStats not panicking and mean
        // being finite; also determinism:
        let cv2 = cross_validate(&RbfTrainer::quick(), &pts, &y, 4).unwrap();
        assert_eq!(cv, cv2);
    }

    #[test]
    fn cv_is_identical_across_thread_counts() {
        let (pts, y) = sample(30);
        let reference = CrossValidator::new(RbfTrainer::quick(), 5)
            .with_threads(1)
            .run(&pts, &y)
            .unwrap();
        for threads in [2, 8] {
            let got = CrossValidator::new(RbfTrainer::quick(), 5)
                .with_threads(threads)
                .run(&pts, &y)
                .unwrap();
            assert_eq!(reference, got, "threads={threads}");
        }
    }

    #[test]
    fn detailed_run_matches_pooled_run_and_counts_folds() {
        let (pts, y) = sample(40);
        let cv = CrossValidator::new(RbfTrainer::quick(), 5);
        let pooled = cv.run(&pts, &y).unwrap();
        let detailed = cv.run_detailed(&pts, &y).unwrap();
        assert_eq!(detailed.overall, pooled);
        assert_eq!(detailed.folds.len(), 5);
        for f in &detailed.folds {
            assert!(f.mean_pct.is_finite() && f.mean_pct >= 0.0);
        }
        // Deterministic across thread counts, like run().
        let d1 = cv.clone().with_threads(1).run_detailed(&pts, &y).unwrap();
        let d8 = cv.clone().with_threads(8).run_detailed(&pts, &y).unwrap();
        assert_eq!(d1, d8);
    }

    #[test]
    fn harder_function_has_higher_cv_error() {
        let mut rng = Rng::seed_from_u64(8);
        let pts: Vec<Vec<f64>> = (0..50)
            .map(|_| (0..3).map(|_| rng.unit_f64()).collect())
            .collect();
        let easy: Vec<f64> = pts.iter().map(|p| 2.0 + p[0]).collect();
        let hard: Vec<f64> = pts
            .iter()
            .map(|p| 2.0 + (17.0 * p[0]).sin() + (23.0 * p[1]).cos())
            .collect();
        let trainer = RbfTrainer::quick();
        let e = cross_validate(&trainer, &pts, &easy, 5).unwrap();
        let h = cross_validate(&trainer, &pts, &hard, 5).unwrap();
        assert!(h.mean_pct > e.mean_pct, "hard {h} vs easy {e}");
    }

    #[test]
    fn one_fold_is_a_typed_error() {
        let (pts, y) = sample(10);
        let err = cross_validate(&RbfTrainer::quick(), &pts, &y, 1).unwrap_err();
        assert!(matches!(err, CrossValError::BadFolds(_)));
        assert!(err.to_string().contains("at least 2 folds"));
    }

    #[test]
    fn too_many_folds_is_a_typed_error() {
        let (pts, y) = sample(5);
        let err = cross_validate(&RbfTrainer::quick(), &pts, &y, 10).unwrap_err();
        assert!(matches!(err, CrossValError::BadFolds(_)));
        assert!(err.to_string().contains("more folds"));
    }

    #[test]
    fn broken_trainer_surfaces_a_train_error() {
        let (pts, y) = sample(10);
        let trainer = RbfTrainer {
            p_min_candidates: vec![],
            ..RbfTrainer::default()
        };
        let err = cross_validate(&trainer, &pts, &y, 2).unwrap_err();
        assert_eq!(err, CrossValError::Train(TrainError::EmptyGrid("p_min")));
    }
}
