//! K-fold cross-validation for fitted surrogate models.
//!
//! The paper assesses accuracy with a dedicated random test set (50
//! fresh simulations). When simulations are too expensive even for
//! that, cross-validation estimates the generalization error from the
//! training sample alone: the sample is split into `k` folds, the model
//! is refitted `k` times holding one fold out, and the held-out
//! predictions are scored.

use ppm_rbf::RbfTrainer;
use ppm_regtree::{Dataset, DatasetError};

use crate::metrics::ErrorStats;

/// Cross-validates an RBF trainer on a sample.
///
/// Returns error statistics over all held-out predictions (the same
/// mean/max/std percentages as the paper's test-set metric).
///
/// # Errors
///
/// Returns a [`DatasetError`] if the sample is inconsistent.
///
/// # Panics
///
/// Panics if `k < 2` or `k` exceeds the number of points.
///
/// # Examples
///
/// ```
/// use ppm_core::crossval::cross_validate;
/// use ppm_rbf::RbfTrainer;
/// use ppm_rng::Rng;
///
/// let mut rng = Rng::seed_from_u64(1);
/// let points: Vec<Vec<f64>> = (0..40).map(|_| vec![rng.unit_f64(), rng.unit_f64()]).collect();
/// let y: Vec<f64> = points.iter().map(|p| 1.0 + p[0] + p[1] * p[1]).collect();
/// let stats = cross_validate(&RbfTrainer::quick(), &points, &y, 5)?;
/// assert!(stats.mean_pct < 20.0);
/// # Ok::<(), ppm_regtree::DatasetError>(())
/// ```
pub fn cross_validate(
    trainer: &RbfTrainer,
    design: &[Vec<f64>],
    responses: &[f64],
    k: usize,
) -> Result<ErrorStats, DatasetError> {
    assert!(k >= 2, "cross-validation needs at least 2 folds");
    assert!(
        k <= design.len(),
        "more folds ({k}) than points ({})",
        design.len()
    );
    // Validate the whole sample up front for consistent errors.
    Dataset::new(design.to_vec(), responses.to_vec())?;

    let n = design.len();
    let mut predicted = Vec::with_capacity(n);
    let mut actual = Vec::with_capacity(n);
    for fold in 0..k {
        // Deterministic striped folds: index i belongs to fold i mod k.
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut test_idx = Vec::new();
        for i in 0..n {
            if i % k == fold {
                test_idx.push(i);
            } else {
                train_x.push(design[i].clone());
                train_y.push(responses[i]);
            }
        }
        let data = Dataset::new(train_x, train_y)?;
        let fitted = trainer.fit(&data);
        for i in test_idx {
            predicted.push(fitted.network.predict(&design[i]));
            actual.push(responses[i]);
        }
    }
    Ok(ErrorStats::from_predictions(&predicted, &actual))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    fn sample(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = Rng::seed_from_u64(4);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.unit_f64()).collect())
            .collect();
        let y = pts
            .iter()
            .map(|p| 2.0 + p[0] + (2.0 * p[1]).sin() * 0.5 + 0.02 * rng.normal())
            .collect();
        (pts, y)
    }

    #[test]
    fn cv_error_tracks_true_generalization() {
        let (pts, y) = sample(60);
        let trainer = RbfTrainer::quick();
        let cv = cross_validate(&trainer, &pts, &y, 5).unwrap();
        // A learnable smooth function: CV error should be small but
        // nonzero (the noise floor is ~1%).
        assert!(cv.mean_pct > 0.0);
        assert!(cv.mean_pct < 10.0, "cv error {cv}");
    }

    #[test]
    fn cv_covers_every_point_exactly_once() {
        // With k folds striped by index, predicted length == n.
        let (pts, y) = sample(23);
        let cv = cross_validate(&RbfTrainer::quick(), &pts, &y, 4).unwrap();
        // Indirectly verified by ErrorStats not panicking and mean
        // being finite; also determinism:
        let cv2 = cross_validate(&RbfTrainer::quick(), &pts, &y, 4).unwrap();
        assert_eq!(cv, cv2);
    }

    #[test]
    fn harder_function_has_higher_cv_error() {
        let mut rng = Rng::seed_from_u64(8);
        let pts: Vec<Vec<f64>> = (0..50)
            .map(|_| (0..3).map(|_| rng.unit_f64()).collect())
            .collect();
        let easy: Vec<f64> = pts.iter().map(|p| 2.0 + p[0]).collect();
        let hard: Vec<f64> = pts
            .iter()
            .map(|p| 2.0 + (17.0 * p[0]).sin() + (23.0 * p[1]).cos())
            .collect();
        let trainer = RbfTrainer::quick();
        let e = cross_validate(&trainer, &pts, &easy, 5).unwrap();
        let h = cross_validate(&trainer, &pts, &hard, 5).unwrap();
        assert!(h.mean_pct > e.mean_pct, "hard {h} vs easy {e}");
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_panics() {
        let (pts, y) = sample(10);
        let _ = cross_validate(&RbfTrainer::quick(), &pts, &y, 1);
    }

    #[test]
    #[should_panic(expected = "more folds")]
    fn too_many_folds_panics() {
        let (pts, y) = sample(5);
        let _ = cross_validate(&RbfTrainer::quick(), &pts, &y, 10);
    }
}
