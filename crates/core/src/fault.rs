//! Deterministic fault injection for testing the fault-tolerant
//! pipeline.
//!
//! [`FaultyResponse`] wraps any [`Response`] and injects failures —
//! panics, NaN/∞ values, and slow evaluations — at configurable rates.
//! Which points fail is a pure function of the plan's seed and the
//! point's coordinates, so scenarios are reproducible run to run. With
//! [`FaultPlan::transient_attempts`] set, a faulty point recovers after
//! that many failed attempts, which exercises the supervisor's retry
//! path; with it at 0, faults are permanent and exercise quarantine,
//! degradation, and checkpoint-resume.
//!
//! This is a test harness: a transiently-faulty wrapper is
//! intentionally *not* deterministic across attempts (that is the
//! point), so it must never back a production model build.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::hash::hash_point;
use crate::response::Response;

/// What to inject at a faulty point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Evaluation panics.
    Panic,
    /// Evaluation returns NaN.
    Nan,
    /// Evaluation returns +∞.
    Inf,
    /// Evaluation sleeps before answering (still returns the true
    /// value).
    Slow,
}

/// Seed-driven fault schedule for a [`FaultyResponse`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-point fault decision.
    pub seed: u64,
    /// Fraction of points that panic.
    pub panic_rate: f64,
    /// Fraction of points that return NaN.
    pub nan_rate: f64,
    /// Fraction of points that return +∞.
    pub inf_rate: f64,
    /// Fraction of points that evaluate slowly.
    pub slow_rate: f64,
    /// Sleep injected at slow points.
    pub slow_delay: Duration,
    /// When non-zero, a faulty point succeeds once it has failed this
    /// many times (models transient faults; exercises retry). When 0,
    /// faults are permanent.
    pub transient_attempts: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 1,
            panic_rate: 0.0,
            nan_rate: 0.0,
            inf_rate: 0.0,
            slow_rate: 0.0,
            slow_delay: Duration::from_millis(1),
            transient_attempts: 0,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (sanity baseline).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Sets the decision seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the panic rate.
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// Sets the NaN rate.
    pub fn with_nan_rate(mut self, rate: f64) -> Self {
        self.nan_rate = rate;
        self
    }

    /// Sets the +∞ rate.
    pub fn with_inf_rate(mut self, rate: f64) -> Self {
        self.inf_rate = rate;
        self
    }

    /// Sets the slow-evaluation rate.
    pub fn with_slow_rate(mut self, rate: f64) -> Self {
        self.slow_rate = rate;
        self
    }

    /// Makes faults transient: they clear after `attempts` failures.
    pub fn with_transient_attempts(mut self, attempts: u32) -> Self {
        self.transient_attempts = attempts;
        self
    }

    /// The fault scheduled for a point, if any — a pure function of
    /// `(seed, point)`.
    pub fn fault_at(&self, point: &[f64]) -> Option<InjectedFault> {
        // Map the point hash to a uniform draw in [0, 1) and carve it
        // into the configured rate segments.
        let draw = (hash_point(self.seed, point) >> 11) as f64 / (1u64 << 53) as f64;
        let mut edge = self.panic_rate;
        if draw < edge {
            return Some(InjectedFault::Panic);
        }
        edge += self.nan_rate;
        if draw < edge {
            return Some(InjectedFault::Nan);
        }
        edge += self.inf_rate;
        if draw < edge {
            return Some(InjectedFault::Inf);
        }
        edge += self.slow_rate;
        if draw < edge {
            return Some(InjectedFault::Slow);
        }
        None
    }

    /// The fault scheduled for a request *index* — a pure function of
    /// `(seed, index)`. This is the serving-side twin of
    /// [`FaultPlan::fault_at`]: a request stream has no design point to
    /// hash, but its sequence number is just as reproducible, so a chaos
    /// run injects the same faults at the same request ordinals for a
    /// given seed.
    pub fn fault_at_index(&self, index: u64) -> Option<InjectedFault> {
        self.fault_at(&[index as f64])
    }
}

/// A [`Response`] wrapper that injects deterministic faults per
/// [`FaultPlan`]. See the module docs.
pub struct FaultyResponse<R> {
    inner: R,
    plan: FaultPlan,
    /// Failed-attempt counts per point hash (for transient faults).
    attempts: Mutex<BTreeMap<u64, u32>>,
}

impl<R: Response> FaultyResponse<R> {
    /// Wraps a response with a fault plan.
    pub fn new(inner: R, plan: FaultPlan) -> Self {
        FaultyResponse {
            inner,
            plan,
            attempts: Mutex::new(BTreeMap::new()),
        }
    }

    /// The wrapped response.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// The fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total failed attempts injected so far.
    pub fn injected_failures(&self) -> u32 {
        self.attempts
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .values()
            .sum()
    }
}

impl<R: Response> Response for FaultyResponse<R> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn eval(&self, unit: &[f64]) -> f64 {
        let Some(fault) = self.plan.fault_at(unit) else {
            return self.inner.eval(unit);
        };
        if fault == InjectedFault::Slow {
            std::thread::sleep(self.plan.slow_delay);
            return self.inner.eval(unit);
        }
        if self.plan.transient_attempts > 0 {
            let key = hash_point(self.plan.seed, unit);
            let mut attempts = self
                .attempts
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            let count = attempts.entry(key).or_insert(0);
            if *count >= self.plan.transient_attempts {
                // The fault has cleared; answer truthfully.
                return self.inner.eval(unit);
            }
            *count += 1;
        } else {
            let key = hash_point(self.plan.seed, unit);
            *self
                .attempts
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .entry(key)
                .or_insert(0) += 1;
        }
        match fault {
            // Panicking is this harness's entire purpose: it exercises
            // the supervisor's catch_unwind path. lint:allow(panic-path)
            InjectedFault::Panic => panic!("injected fault at {unit:?}"),
            InjectedFault::Nan => f64::NAN,
            InjectedFault::Inf => f64::INFINITY,
            InjectedFault::Slow => unreachable!("handled above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::FnResponse;

    fn inner() -> FnResponse<impl Fn(&[f64]) -> f64 + Sync> {
        FnResponse::new(2, |x| 1.0 + x[0] + x[1]).unwrap()
    }

    #[test]
    fn no_faults_passes_through() {
        let r = FaultyResponse::new(inner(), FaultPlan::none());
        assert_eq!(r.dim(), 2);
        assert_eq!(r.eval(&[0.25, 0.5]), 1.75);
        assert_eq!(r.injected_failures(), 0);
    }

    #[test]
    fn fault_decision_is_deterministic_and_rate_plausible() {
        let plan = FaultPlan::default().with_panic_rate(0.3);
        let hits: Vec<bool> = (0..1000)
            .map(|i| plan.fault_at(&[i as f64 / 1000.0, 0.5]) == Some(InjectedFault::Panic))
            .collect();
        let again: Vec<bool> = (0..1000)
            .map(|i| plan.fault_at(&[i as f64 / 1000.0, 0.5]) == Some(InjectedFault::Panic))
            .collect();
        assert_eq!(hits, again);
        let rate = hits.iter().filter(|&&h| h).count() as f64 / 1000.0;
        assert!((0.2..0.4).contains(&rate), "observed panic rate {rate}");
    }

    #[test]
    fn fault_at_index_is_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::default()
            .with_seed(9)
            .with_panic_rate(0.2)
            .with_nan_rate(0.2);
        let first: Vec<_> = (0..500).map(|i| plan.fault_at_index(i)).collect();
        let again: Vec<_> = (0..500).map(|i| plan.fault_at_index(i)).collect();
        assert_eq!(first, again);
        let hits = first.iter().filter(|f| f.is_some()).count();
        assert!((100..300).contains(&hits), "observed {hits} faults in 500");
        let other = plan.clone().with_seed(10);
        let differs = (0..500).any(|i| plan.fault_at_index(i) != other.fault_at_index(i));
        assert!(differs, "seed does not influence the index schedule");
    }

    #[test]
    fn segments_do_not_overlap() {
        let plan = FaultPlan::default()
            .with_panic_rate(0.25)
            .with_nan_rate(0.25)
            .with_inf_rate(0.25)
            .with_slow_rate(0.25);
        // Every point draws exactly one fault when rates sum to 1.
        for i in 0..200 {
            assert!(plan.fault_at(&[i as f64, 1.0]).is_some());
        }
    }

    #[test]
    fn nan_and_inf_injection() {
        let all_nan = FaultyResponse::new(inner(), FaultPlan::default().with_nan_rate(1.0));
        assert!(all_nan.eval(&[0.1, 0.2]).is_nan());
        let all_inf = FaultyResponse::new(inner(), FaultPlan::default().with_inf_rate(1.0));
        assert_eq!(all_inf.eval(&[0.1, 0.2]), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_injection_panics() {
        let r = FaultyResponse::new(inner(), FaultPlan::default().with_panic_rate(1.0));
        r.eval(&[0.1, 0.2]);
    }

    #[test]
    fn transient_faults_clear_after_budget() {
        let plan = FaultPlan::default()
            .with_nan_rate(1.0)
            .with_transient_attempts(2);
        let r = FaultyResponse::new(inner(), plan);
        let x = [0.3, 0.4];
        assert!(r.eval(&x).is_nan());
        assert!(r.eval(&x).is_nan());
        assert_eq!(r.eval(&x), 1.0 + 0.3 + 0.4, "third attempt succeeds");
        assert_eq!(r.injected_failures(), 2);
    }

    #[test]
    fn slow_points_still_answer_correctly() {
        let mut plan = FaultPlan::default().with_slow_rate(1.0);
        plan.slow_delay = Duration::from_millis(2);
        let r = FaultyResponse::new(inner(), plan);
        let t0 = std::time::Instant::now();
        assert_eq!(r.eval(&[0.25, 0.5]), 1.75);
        assert!(t0.elapsed() >= Duration::from_millis(2));
    }
}
