//! FNV-1a hashing shared by the checkpoint journal, the persisted model
//! checksum, and the deterministic fault-injection harness.

/// 64-bit FNV-1a over a byte slice.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over the bit patterns of a unit point, seeded — the stable
/// per-point identity used to key checkpoints and fault decisions.
pub(crate) fn hash_point(seed: u64, point: &[f64]) -> u64 {
    let mut bytes = Vec::with_capacity(8 + point.len() * 8);
    bytes.extend_from_slice(&seed.to_le_bytes());
    for &x in point {
        bytes.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn point_hash_is_stable_and_seed_sensitive() {
        let p = [0.25, 0.5, 0.75];
        assert_eq!(hash_point(7, &p), hash_point(7, &p));
        assert_ne!(hash_point(7, &p), hash_point(8, &p));
        assert_ne!(hash_point(7, &p), hash_point(7, &[0.25, 0.5, 0.7500001]));
    }
}
