//! The paper's end-to-end `BuildRBFmodel` procedure.
//!
//! This crate ties the substrates together into the workflow of
//! Joseph et al. (MICRO 2006), §1:
//!
//! 1. [`space::DesignSpace`] specifies the microarchitectural design
//!    space — the nine parameters of the paper's Table 1 with their
//!    ranges, levels and transforms — and converts design points into
//!    simulator configurations.
//! 2. [`builder::RbfModelBuilder`] selects a latin hypercube sample with
//!    the best L2-star discrepancy (§2.2), ...
//! 3. ... evaluates the processor [`response::Response`] at each point
//!    (detailed simulation, run in parallel), ...
//! 4. ... and fits a radial basis function network with
//!    regression-tree-derived centers and AICc subset selection
//!    (§2.3–§2.6).
//! 5. [`metrics::ErrorStats`] scores predictions on an independently
//!    generated random test set (§3, Table 2).
//! 6. [`builder::RbfModelBuilder::build_to_accuracy`] repeats with
//!    increasing sample sizes until the desired accuracy is reached.
//!
//! The linear-regression baseline of §4.2 is available through
//! [`study::fit_linear_baseline`], and [`study::interaction_grid`]
//! reproduces the two-factor trend analysis of §4.1.
//!
//! # Examples
//!
//! Build a model of an analytic response (fast; no simulation):
//!
//! ```
//! use ppm_core::builder::{BuildConfig, RbfModelBuilder};
//! use ppm_core::response::FnResponse;
//! use ppm_core::space::DesignSpace;
//!
//! let space = DesignSpace::paper_table1();
//! let response = FnResponse::new(9, |x| 1.0 + x[0] + (3.0 * x[4]).sin() * x[5])?;
//! let config = BuildConfig::quick(40);
//! let built = RbfModelBuilder::new(space, config).build(&response)?;
//! assert!(built.model.network.num_centers() >= 1);
//! # Ok::<(), ppm_core::builder::BuildError>(())
//! ```
//!
//! # Fault tolerance
//!
//! Simulation batches run under a supervised executor
//! ([`supervise::eval_batch_supervised`]) that isolates panics,
//! retries transient failures, and quarantines bad points; completed
//! results can be journaled to a crash-safe [`checkpoint::Checkpoint`]
//! and resumed without re-simulation. [`fault::FaultyResponse`] injects
//! deterministic faults for testing these paths.

pub mod adaptive;
pub mod builder;
pub mod checkpoint;
pub mod crossval;
pub mod fault;
mod hash;
pub mod metrics;
pub mod persist;
pub mod response;
pub mod space;
pub mod study;
pub mod supervise;

pub use adaptive::{build_adaptive, AdaptiveConfig};
pub use builder::{BuildConfig, BuildError, BuiltModel, RbfModelBuilder};
pub use checkpoint::{Checkpoint, CheckpointError};
pub use fault::{FaultPlan, FaultyResponse, InjectedFault};
pub use metrics::ErrorStats;
pub use response::{FnResponse, Metric, Response, SimulatorResponse};
pub use space::DesignSpace;
pub use supervise::{eval_batch_supervised, BatchOutcome, Fault, Quarantine, SupervisorPolicy};
