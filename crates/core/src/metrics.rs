//! Model-accuracy metrics (the paper's §3: mean/max/std of the absolute
//! percentage error in CPI).

use std::fmt;

/// Error diagnostics of a predictive model on a test set, in percent —
/// the columns of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Mean absolute percentage error.
    pub mean_pct: f64,
    /// Maximum absolute percentage error.
    pub max_pct: f64,
    /// Standard deviation of the absolute percentage errors.
    pub std_pct: f64,
}

impl ErrorStats {
    /// Computes error statistics from predictions and true responses.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty, differ in length, or any true
    /// response is zero or non-finite (percentage error is undefined).
    pub fn from_predictions(predicted: &[f64], actual: &[f64]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "length mismatch");
        assert!(!actual.is_empty(), "no test points");
        let errs: Vec<f64> = predicted
            .iter()
            .zip(actual)
            .map(|(&p, &a)| {
                assert!(a.is_finite() && a != 0.0, "invalid true response {a}");
                100.0 * ((p - a) / a).abs()
            })
            .collect();
        let n = errs.len() as f64;
        let mean = errs.iter().sum::<f64>() / n;
        let max = errs.iter().fold(0.0f64, |m, &e| m.max(e));
        let var = errs.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / n;
        ErrorStats {
            mean_pct: mean,
            max_pct: max,
            std_pct: var.sqrt(),
        }
    }
}

impl fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.1}% max {:.1}% std {:.1}%",
            self.mean_pct, self.max_pct, self.std_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_have_zero_error() {
        let s = ErrorStats::from_predictions(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        assert_eq!(s.mean_pct, 0.0);
        assert_eq!(s.max_pct, 0.0);
        assert_eq!(s.std_pct, 0.0);
    }

    #[test]
    fn known_errors() {
        // Errors: 10%, 20%.
        let s = ErrorStats::from_predictions(&[1.1, 1.6], &[1.0, 2.0]);
        assert!((s.mean_pct - 15.0).abs() < 1e-9);
        assert!((s.max_pct - 20.0).abs() < 1e-9);
        assert!((s.std_pct - 5.0).abs() < 1e-9);
    }

    #[test]
    fn sign_of_error_is_ignored() {
        let over = ErrorStats::from_predictions(&[1.1], &[1.0]);
        let under = ErrorStats::from_predictions(&[0.9], &[1.0]);
        assert!((over.mean_pct - under.mean_pct).abs() < 1e-9);
    }

    #[test]
    fn display_is_readable() {
        let s = ErrorStats::from_predictions(&[1.1], &[1.0]);
        let text = s.to_string();
        assert!(text.contains("mean") && text.contains('%'));
    }

    #[test]
    #[should_panic(expected = "invalid true response")]
    fn zero_actual_panics() {
        ErrorStats::from_predictions(&[1.0], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        ErrorStats::from_predictions(&[1.0], &[1.0, 2.0]);
    }
}
