//! Saving and loading fitted models as a plain-text format.
//!
//! The format is a small, versioned, line-oriented text file so models
//! can be trained once (simulations are expensive) and reused from the
//! CLI or other tools without any serialization dependency:
//!
//! ```text
//! ppm-rbf-model v1
//! meta <key> <value>        # zero or more
//! dim 9
//! centers 2
//! rbf <c0..c8> | <r0..r8> | <weight>
//! rbf ...
//! checksum <fnv1a64 of everything above, 16 hex digits>
//! ```
//!
//! The trailing checksum makes truncation and corruption detectable,
//! and [`save`] writes through a sibling temp file renamed into place,
//! so a crash mid-write can never leave a half-written model at the
//! target path.

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use ppm_rbf::{Rbf, RbfNetwork};

use crate::hash::fnv1a64;

/// Errors from reading or writing model files.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid model (message describes the problem).
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format(msg) => write!(f, "invalid model file: {msg}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// A model together with free-form metadata (benchmark name, metric,
/// sample size, ...).
#[derive(Debug, Clone)]
pub struct SavedModel {
    /// The network.
    pub network: RbfNetwork,
    /// `(key, value)` metadata pairs, in file order.
    pub meta: Vec<(String, String)>,
}

impl SavedModel {
    /// Looks up a metadata value.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Serializes a network (with metadata) to a string.
///
/// # Panics
///
/// Panics if a metadata key contains whitespace or a value contains a
/// newline.
pub fn to_string(network: &RbfNetwork, meta: &[(String, String)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "ppm-rbf-model v1");
    for (k, v) in meta {
        assert!(
            !k.contains(char::is_whitespace),
            "metadata key {k:?} contains whitespace"
        );
        assert!(!v.contains('\n'), "metadata value contains a newline");
        let _ = writeln!(out, "meta {k} {v}");
    }
    let _ = writeln!(out, "dim {}", network.dim());
    let _ = writeln!(out, "centers {}", network.num_centers());
    let fmt_vec = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x:.17e}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    for (basis, &w) in network.bases().iter().zip(network.weights()) {
        let _ = writeln!(
            out,
            "rbf {} | {} | {w:.17e}",
            fmt_vec(basis.center()),
            fmt_vec(basis.radius())
        );
    }
    let sum = fnv1a64(out.as_bytes());
    let _ = writeln!(out, "checksum {sum:016x}");
    out
}

/// Writes a model file crash-safely: the content goes to a sibling
/// `.tmp` file, is synced, and is renamed over `path`, so an
/// interrupted save can never leave a torn file at the target.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure.
pub fn save(
    network: &RbfNetwork,
    meta: &[(String, String)],
    path: &Path,
) -> Result<(), PersistError> {
    let mut tmp = path.to_path_buf();
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("model");
    tmp.set_file_name(format!("{name}.tmp"));
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(to_string(network, meta).as_bytes())?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Parses a model from a string.
///
/// # Errors
///
/// Returns [`PersistError::Format`] describing the first problem found.
pub fn from_str(text: &str) -> Result<SavedModel, PersistError> {
    let bad = |msg: &str| PersistError::Format(msg.to_string());
    match text.lines().find(|l| !l.trim().is_empty()) {
        Some("ppm-rbf-model v1") => {}
        Some(other) => return Err(bad(&format!("unknown header {other:?}"))),
        None => return Err(bad("empty file")),
    }
    // The last line must be the checksum over everything before it.
    let trimmed = text.trim_end();
    let (body, sum_line) = match trimmed.rfind('\n') {
        Some(idx) => (&trimmed[..idx + 1], &trimmed[idx + 1..]),
        None => ("", trimmed),
    };
    let sum_hex = sum_line
        .strip_prefix("checksum ")
        .ok_or_else(|| bad("missing checksum line (file truncated?)"))?;
    let expected = u64::from_str_radix(sum_hex.trim(), 16)
        .map_err(|_| bad(&format!("bad checksum {sum_hex:?}")))?;
    let actual = fnv1a64(body.as_bytes());
    if actual != expected {
        return Err(bad(&format!(
            "checksum mismatch (stored {expected:016x}, computed {actual:016x}): \
             file truncated or corrupted"
        )));
    }
    let mut lines = body.lines().filter(|l| !l.trim().is_empty());
    lines.next(); // the header, validated above
    let mut meta = Vec::new();
    let mut dim: Option<usize> = None;
    let mut centers: Option<usize> = None;
    let mut bases = Vec::new();
    let mut weights = Vec::new();
    for line in lines {
        let mut parts = line.splitn(2, ' ');
        let tag = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("").trim();
        match tag {
            "meta" => {
                let mut kv = rest.splitn(2, ' ');
                let k = kv.next().unwrap_or("").to_string();
                let v = kv.next().unwrap_or("").to_string();
                if k.is_empty() {
                    return Err(bad("meta line without a key"));
                }
                meta.push((k, v));
            }
            "dim" => {
                dim = Some(
                    rest.parse()
                        .map_err(|_| bad(&format!("bad dim {rest:?}")))?,
                );
            }
            "centers" => {
                centers = Some(
                    rest.parse()
                        .map_err(|_| bad(&format!("bad center count {rest:?}")))?,
                );
            }
            "rbf" => {
                let dim = dim.ok_or_else(|| bad("rbf line before dim"))?;
                let mut fields = rest.split('|');
                let parse_vec = |s: &str| -> Result<Vec<f64>, PersistError> {
                    s.split_whitespace()
                        .map(|t| {
                            t.parse::<f64>()
                                .map_err(|_| bad(&format!("bad float {t:?}")))
                        })
                        .collect()
                };
                let center = parse_vec(fields.next().ok_or_else(|| bad("missing center"))?)?;
                let radius = parse_vec(fields.next().ok_or_else(|| bad("missing radius"))?)?;
                let w: f64 = fields
                    .next()
                    .ok_or_else(|| bad("missing weight"))?
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad weight"))?;
                if center.len() != dim || radius.len() != dim {
                    return Err(bad("center/radius dimension mismatch"));
                }
                bases.push(Rbf::new(center, radius));
                weights.push(w);
            }
            other => return Err(bad(&format!("unknown line tag {other:?}"))),
        }
    }
    let expected = centers.ok_or_else(|| bad("missing centers line"))?;
    if bases.len() != expected {
        return Err(bad(&format!(
            "expected {expected} rbf lines, found {}",
            bases.len()
        )));
    }
    if bases.is_empty() {
        return Err(bad("model has no centers"));
    }
    Ok(SavedModel {
        network: RbfNetwork::new(bases, weights),
        meta,
    })
}

/// Reads a model file.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or format problems.
pub fn load(path: &Path) -> Result<SavedModel, PersistError> {
    from_str(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    fn network() -> RbfNetwork {
        let mut rng = Rng::seed_from_u64(5);
        let bases: Vec<Rbf> = (0..7)
            .map(|_| {
                let c: Vec<f64> = (0..9).map(|_| rng.unit_f64()).collect();
                let r: Vec<f64> = (0..9).map(|_| 0.1 + rng.unit_f64()).collect();
                Rbf::new(c, r)
            })
            .collect();
        let w: Vec<f64> = (0..7).map(|_| rng.normal()).collect();
        RbfNetwork::new(bases, w)
    }

    #[test]
    fn round_trip_preserves_predictions_exactly() {
        let net = network();
        let meta = vec![
            ("benchmark".to_string(), "181.mcf".to_string()),
            ("metric".to_string(), "cpi".to_string()),
        ];
        let text = to_string(&net, &meta);
        let loaded = from_str(&text).unwrap();
        assert_eq!(loaded.meta_value("benchmark"), Some("181.mcf"));
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..50 {
            let x: Vec<f64> = (0..9).map(|_| rng.unit_f64()).collect();
            assert_eq!(net.predict(&x), loaded.network.predict(&x));
        }
    }

    #[test]
    fn file_round_trip() {
        let net = network();
        let dir = std::env::temp_dir().join("ppm_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        save(&net, &[], &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.network.num_centers(), net.num_centers());
        std::fs::remove_file(&path).ok();
    }

    /// Appends a valid checksum line so tests can target payload-level
    /// errors past the integrity check.
    fn with_checksum(payload: &str) -> String {
        let sum = fnv1a64(payload.as_bytes());
        format!("{payload}checksum {sum:016x}\n")
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("not a model").is_err());
        assert!(from_str(&with_checksum("ppm-rbf-model v1\ndim 2\ncenters 1\n")).is_err());
        assert!(from_str(&with_checksum(
            "ppm-rbf-model v1\ndim 2\ncenters 1\nrbf 0.5 | 0.5 | 1.0\n"
        ))
        .is_err());
        let err = from_str("ppm-rbf-model v2").unwrap_err();
        assert!(err.to_string().contains("unknown header"));
    }

    #[test]
    fn rejects_truncated_file() {
        let text = to_string(&network(), &[]);
        // Drop the checksum line entirely: simulates a crash mid-write.
        let cut = text.trim_end().rfind('\n').unwrap();
        let err = from_str(&text[..cut]).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // Drop an rbf line but keep the checksum: content mismatch.
        let lines: Vec<&str> = text.lines().collect();
        let dropped = [&lines[..4], &lines[lines.len() - 1..]].concat().join("\n");
        let err = from_str(&dropped).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn rejects_flipped_checksum() {
        let text = to_string(&network(), &[]);
        let flipped = if text.trim_end().ends_with('0') {
            format!("{}1\n", &text.trim_end()[..text.trim_end().len() - 1])
        } else {
            format!("{}0\n", &text.trim_end()[..text.trim_end().len() - 1])
        };
        let err = from_str(&flipped).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn rejects_corrupted_payload_byte() {
        let text = to_string(&network(), &[("benchmark".into(), "mcf".into())]);
        let corrupted = text.replacen("mcf", "mcg", 1);
        let err = from_str(&corrupted).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn rejects_unknown_header_version() {
        let err = from_str(&with_checksum("ppm-rbf-model v2\ndim 2\ncenters 0\n")).unwrap_err();
        assert!(err.to_string().contains("unknown header"), "{err}");
    }

    #[test]
    fn save_leaves_no_temp_file_behind() {
        let dir = std::env::temp_dir().join("ppm_persist_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        save(&network(), &[], &path).unwrap();
        assert!(path.exists());
        assert!(!dir.join("model.txt.tmp").exists());
        load(&path).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn meta_is_preserved_in_order() {
        let net = network();
        let meta = vec![
            ("a".to_string(), "1".to_string()),
            ("b".to_string(), "two words".to_string()),
        ];
        let loaded = from_str(&to_string(&net, &meta)).unwrap();
        assert_eq!(loaded.meta, meta);
    }
}
