//! Saving and loading fitted models as a plain-text format.
//!
//! The format is a small, versioned, line-oriented text file so models
//! can be trained once (simulations are expensive) and reused from the
//! CLI or other tools without any serialization dependency:
//!
//! ```text
//! ppm-rbf-model v1
//! meta <key> <value>        # zero or more
//! dim 9
//! centers 2
//! rbf <c0..c8> | <r0..r8> | <weight>
//! rbf ...
//! ```

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

use ppm_rbf::{Rbf, RbfNetwork};

/// Errors from reading or writing model files.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid model (message describes the problem).
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format(msg) => write!(f, "invalid model file: {msg}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// A model together with free-form metadata (benchmark name, metric,
/// sample size, ...).
#[derive(Debug, Clone)]
pub struct SavedModel {
    /// The network.
    pub network: RbfNetwork,
    /// `(key, value)` metadata pairs, in file order.
    pub meta: Vec<(String, String)>,
}

impl SavedModel {
    /// Looks up a metadata value.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Serializes a network (with metadata) to a string.
///
/// # Panics
///
/// Panics if a metadata key contains whitespace or a value contains a
/// newline.
pub fn to_string(network: &RbfNetwork, meta: &[(String, String)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "ppm-rbf-model v1");
    for (k, v) in meta {
        assert!(
            !k.contains(char::is_whitespace),
            "metadata key {k:?} contains whitespace"
        );
        assert!(!v.contains('\n'), "metadata value contains a newline");
        let _ = writeln!(out, "meta {k} {v}");
    }
    let _ = writeln!(out, "dim {}", network.dim());
    let _ = writeln!(out, "centers {}", network.num_centers());
    let fmt_vec = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x:.17e}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    for (basis, &w) in network.bases().iter().zip(network.weights()) {
        let _ = writeln!(
            out,
            "rbf {} | {} | {w:.17e}",
            fmt_vec(basis.center()),
            fmt_vec(basis.radius())
        );
    }
    out
}

/// Writes a model file.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure.
pub fn save(
    network: &RbfNetwork,
    meta: &[(String, String)],
    path: &Path,
) -> Result<(), PersistError> {
    fs::write(path, to_string(network, meta))?;
    Ok(())
}

/// Parses a model from a string.
///
/// # Errors
///
/// Returns [`PersistError::Format`] describing the first problem found.
pub fn from_str(text: &str) -> Result<SavedModel, PersistError> {
    let bad = |msg: &str| PersistError::Format(msg.to_string());
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    match lines.next() {
        Some("ppm-rbf-model v1") => {}
        Some(other) => return Err(bad(&format!("unknown header {other:?}"))),
        None => return Err(bad("empty file")),
    }
    let mut meta = Vec::new();
    let mut dim: Option<usize> = None;
    let mut centers: Option<usize> = None;
    let mut bases = Vec::new();
    let mut weights = Vec::new();
    for line in lines {
        let mut parts = line.splitn(2, ' ');
        let tag = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("").trim();
        match tag {
            "meta" => {
                let mut kv = rest.splitn(2, ' ');
                let k = kv.next().unwrap_or("").to_string();
                let v = kv.next().unwrap_or("").to_string();
                if k.is_empty() {
                    return Err(bad("meta line without a key"));
                }
                meta.push((k, v));
            }
            "dim" => {
                dim = Some(
                    rest.parse()
                        .map_err(|_| bad(&format!("bad dim {rest:?}")))?,
                );
            }
            "centers" => {
                centers = Some(
                    rest.parse()
                        .map_err(|_| bad(&format!("bad center count {rest:?}")))?,
                );
            }
            "rbf" => {
                let dim = dim.ok_or_else(|| bad("rbf line before dim"))?;
                let mut fields = rest.split('|');
                let parse_vec = |s: &str| -> Result<Vec<f64>, PersistError> {
                    s.split_whitespace()
                        .map(|t| {
                            t.parse::<f64>()
                                .map_err(|_| bad(&format!("bad float {t:?}")))
                        })
                        .collect()
                };
                let center = parse_vec(fields.next().ok_or_else(|| bad("missing center"))?)?;
                let radius = parse_vec(fields.next().ok_or_else(|| bad("missing radius"))?)?;
                let w: f64 = fields
                    .next()
                    .ok_or_else(|| bad("missing weight"))?
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad weight"))?;
                if center.len() != dim || radius.len() != dim {
                    return Err(bad("center/radius dimension mismatch"));
                }
                bases.push(Rbf::new(center, radius));
                weights.push(w);
            }
            other => return Err(bad(&format!("unknown line tag {other:?}"))),
        }
    }
    let expected = centers.ok_or_else(|| bad("missing centers line"))?;
    if bases.len() != expected {
        return Err(bad(&format!(
            "expected {expected} rbf lines, found {}",
            bases.len()
        )));
    }
    if bases.is_empty() {
        return Err(bad("model has no centers"));
    }
    Ok(SavedModel {
        network: RbfNetwork::new(bases, weights),
        meta,
    })
}

/// Reads a model file.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or format problems.
pub fn load(path: &Path) -> Result<SavedModel, PersistError> {
    from_str(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    fn network() -> RbfNetwork {
        let mut rng = Rng::seed_from_u64(5);
        let bases: Vec<Rbf> = (0..7)
            .map(|_| {
                let c: Vec<f64> = (0..9).map(|_| rng.unit_f64()).collect();
                let r: Vec<f64> = (0..9).map(|_| 0.1 + rng.unit_f64()).collect();
                Rbf::new(c, r)
            })
            .collect();
        let w: Vec<f64> = (0..7).map(|_| rng.normal()).collect();
        RbfNetwork::new(bases, w)
    }

    #[test]
    fn round_trip_preserves_predictions_exactly() {
        let net = network();
        let meta = vec![
            ("benchmark".to_string(), "181.mcf".to_string()),
            ("metric".to_string(), "cpi".to_string()),
        ];
        let text = to_string(&net, &meta);
        let loaded = from_str(&text).unwrap();
        assert_eq!(loaded.meta_value("benchmark"), Some("181.mcf"));
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..50 {
            let x: Vec<f64> = (0..9).map(|_| rng.unit_f64()).collect();
            assert_eq!(net.predict(&x), loaded.network.predict(&x));
        }
    }

    #[test]
    fn file_round_trip() {
        let net = network();
        let dir = std::env::temp_dir().join("ppm_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        save(&net, &[], &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.network.num_centers(), net.num_centers());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("not a model").is_err());
        assert!(from_str("ppm-rbf-model v1\ndim 2\ncenters 1\n").is_err());
        assert!(from_str("ppm-rbf-model v1\ndim 2\ncenters 1\nrbf 0.5 | 0.5 | 1.0").is_err());
        let err = from_str("ppm-rbf-model v2").unwrap_err();
        assert!(err.to_string().contains("unknown header"));
    }

    #[test]
    fn meta_is_preserved_in_order() {
        let net = network();
        let meta = vec![
            ("a".to_string(), "1".to_string()),
            ("b".to_string(), "two words".to_string()),
        ];
        let loaded = from_str(&to_string(&net, &meta)).unwrap();
        assert_eq!(loaded.meta, meta);
    }
}
