//! Processor responses: what the model-building procedure measures at a
//! design point.

use ppm_sim::{estimate_energy, BatchProcessor, EnergyParams, Processor};
use ppm_workload::{Benchmark, TraceGenerator};

use crate::builder::BuildError;
use crate::space::DesignSpace;
use crate::supervise::{eval_batch_supervised, SupervisorPolicy};

/// Which scalar a [`SimulatorResponse`] reports per design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Metric {
    /// Cycles per instruction — the paper's response.
    #[default]
    Cpi,
    /// Energy per instruction, from the activity-based energy model
    /// (the extension suggested in the paper's conclusion).
    Epi,
    /// Energy–delay product per instruction.
    Edp,
}

/// A deterministic scalar response over the unit design space.
///
/// The paper's response is the CPI reported by detailed simulation
/// ([`SimulatorResponse`]); analytic responses ([`FnResponse`]) are
/// useful for fast tests of the modeling machinery.
///
/// Implementations must be deterministic: the same point always yields
/// the same value. `Sync` is required so batches can be evaluated in
/// parallel.
///
/// A faulty evaluation may panic or return a non-finite value; the
/// supervised executor ([`crate::supervise`]) isolates both instead of
/// letting them tear down the batch.
pub trait Response: Sync {
    /// The dimensionality of the input space.
    fn dim(&self) -> usize;

    /// Evaluates the response at a unit design point.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `unit.len() != self.dim()`.
    fn eval(&self, unit: &[f64]) -> f64;

    /// Evaluates many points in one pass, when the implementation has a
    /// cheaper-than-serial batched path.
    ///
    /// Returns `None` when no batched path applies (the default); the
    /// caller then falls back to per-point [`Response::eval`] calls. A
    /// `Some` result must contain exactly `points.len()` values, each
    /// equal to what `eval` would have returned for the same point —
    /// batching is an execution strategy, never a semantic change.
    /// Non-finite values are returned as-is so the supervised executor
    /// can quarantine those points individually.
    fn eval_many(&self, points: &[Vec<f64>]) -> Option<Vec<f64>> {
        let _ = points;
        None
    }
}

/// A response computed by running the cycle-level simulator on a
/// benchmark trace (the paper's step 3).
///
/// Simulator failures (invalid derived config, degenerate CPI) surface
/// as NaN from [`Response::eval`], which the supervised executor
/// quarantines as [`crate::supervise::Fault::NonFinite`].
///
/// # Examples
///
/// ```no_run
/// use ppm_core::response::{Response, SimulatorResponse};
/// use ppm_workload::Benchmark;
///
/// let r = SimulatorResponse::new(Benchmark::Mcf, 200_000);
/// let cpi = r.eval(&[0.5; 9]);
/// assert!(cpi > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimulatorResponse {
    benchmark: Benchmark,
    trace_len: usize,
    seed: u64,
    space: DesignSpace,
    metric: Metric,
}

impl SimulatorResponse {
    /// Creates a response for a benchmark, simulating `trace_len`
    /// instructions per design point, over the Table 1 space.
    ///
    /// # Panics
    ///
    /// Panics if `trace_len == 0`.
    pub fn new(benchmark: Benchmark, trace_len: usize) -> Self {
        Self::with_space(benchmark, trace_len, DesignSpace::paper_table1())
    }

    /// Like [`SimulatorResponse::new`] with an explicit design space.
    ///
    /// # Panics
    ///
    /// Panics if `trace_len == 0`.
    pub fn with_space(benchmark: Benchmark, trace_len: usize, space: DesignSpace) -> Self {
        assert!(trace_len > 0, "empty trace");
        SimulatorResponse {
            benchmark,
            trace_len,
            seed: 1,
            space,
            metric: Metric::Cpi,
        }
    }

    /// Overrides the workload seed (default 1).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the reported metric (default CPI).
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// The reported metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The benchmark being modeled.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The design space used to interpret unit points.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }
}

impl Response for SimulatorResponse {
    fn dim(&self) -> usize {
        self.space.dim()
    }

    fn eval(&self, unit: &[f64]) -> f64 {
        let config = self.space.to_config(unit);
        let trace = TraceGenerator::new(self.benchmark, self.seed).take(self.trace_len);
        let stats = Processor::new(config.clone()).run(trace);
        self.report(&stats, &config)
    }

    /// Simulates all points in one trace pass via [`BatchProcessor`].
    /// The batched engine produces byte-identical [`ppm_sim::SimStats`]
    /// to serial runs, so the reported metrics match [`Response::eval`]
    /// exactly. Declines (`None`) for fewer than two points, or if the
    /// batch cannot be assembled (all points share this response's
    /// fixed machine, so that only happens for invalid derived
    /// configurations — the serial path then surfaces the fault
    /// per-point).
    fn eval_many(&self, points: &[Vec<f64>]) -> Option<Vec<f64>> {
        if points.len() < 2 {
            return None;
        }
        let configs: Vec<_> = points.iter().map(|u| self.space.to_config(u)).collect();
        let batch = BatchProcessor::new(configs.clone()).ok()?;
        let trace = TraceGenerator::new(self.benchmark, self.seed).take(self.trace_len);
        let all = batch.run(trace);
        Some(
            all.iter()
                .zip(&configs)
                .map(|(stats, config)| self.report(stats, config))
                .collect(),
        )
    }
}

impl SimulatorResponse {
    /// Reduces simulation statistics to the configured scalar metric.
    fn report(&self, stats: &ppm_sim::SimStats, config: &ppm_sim::SimConfig) -> f64 {
        match self.metric {
            // A degenerate CPI becomes NaN so the supervisor can
            // quarantine the point instead of feeding it to the fit.
            Metric::Cpi => stats.checked_cpi().unwrap_or(f64::NAN),
            Metric::Epi => estimate_energy(stats, config, &EnergyParams::default()).epi(),
            Metric::Edp => estimate_energy(stats, config, &EnergyParams::default()).edp(),
        }
    }
}

/// An analytic response defined by a closure.
pub struct FnResponse<F> {
    dim: usize,
    f: F,
}

impl<F: Fn(&[f64]) -> f64 + Sync> FnResponse<F> {
    /// Wraps a closure as a response over a `dim`-dimensional unit cube.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidConfig`] if `dim == 0`.
    pub fn new(dim: usize, f: F) -> Result<Self, BuildError> {
        if dim == 0 {
            return Err(BuildError::InvalidConfig(
                "response needs at least one dimension".to_string(),
            ));
        }
        Ok(FnResponse { dim, f })
    }
}

impl<F: Fn(&[f64]) -> f64 + Sync> Response for FnResponse<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn eval(&self, unit: &[f64]) -> f64 {
        (self.f)(unit)
    }
}

/// Evaluates a response at many points, in parallel when `threads > 1`.
///
/// Results are returned in input order regardless of thread count, and
/// the computation is deterministic. This is the strict façade over the
/// supervised executor: any panic or non-finite value fails the whole
/// batch as a typed error. Use
/// [`eval_batch_supervised`](crate::supervise::eval_batch_supervised)
/// directly for retries, quarantine, and checkpoint reuse.
///
/// # Errors
///
/// * [`BuildError::InvalidConfig`] if `threads == 0`.
/// * [`BuildError::ExcessiveFaults`] if any evaluation panicked or
///   returned a non-finite value.
pub fn eval_batch<R: Response>(
    response: &R,
    points: &[Vec<f64>],
    threads: usize,
) -> Result<Vec<f64>, BuildError> {
    eval_batch_supervised(response, points, threads, &SupervisorPolicy::strict(), &[])
        .and_then(|outcome| outcome.into_values(points.len()))
}

/// The number of worker threads to use by default: the `PPM_THREADS`
/// override when set and valid, otherwise the available parallelism
/// capped at 16. One environment variable pins both the simulation
/// batches and the training executor (see [`ppm_exec::default_threads`]).
pub fn default_threads() -> usize {
    ppm_exec::default_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_response_evaluates() {
        let r = FnResponse::new(2, |x| x[0] + 2.0 * x[1]).unwrap();
        assert_eq!(r.dim(), 2);
        assert_eq!(r.eval(&[0.5, 0.25]), 1.0);
    }

    #[test]
    fn zero_dim_response_is_invalid_config() {
        let Err(err) = FnResponse::new(0, |_: &[f64]| 0.0) else {
            panic!("zero-dimension response must be rejected");
        };
        assert!(matches!(err, BuildError::InvalidConfig(_)));
    }

    #[test]
    fn eval_batch_matches_serial_and_is_ordered() {
        let r = FnResponse::new(3, |x| x[0] * 100.0 + x[1] * 10.0 + x[2]).unwrap();
        let points: Vec<Vec<f64>> = (0..37).map(|i| vec![i as f64 / 37.0, 0.5, 0.25]).collect();
        let serial = eval_batch(&r, &points, 1).unwrap();
        let parallel = eval_batch(&r, &points, 8).unwrap();
        assert_eq!(serial, parallel);
        assert!(serial[0] < serial[36]);
    }

    #[test]
    fn eval_batch_fails_on_faulty_point() {
        let r = FnResponse::new(1, |x: &[f64]| if x[0] > 0.5 { f64::NAN } else { x[0] }).unwrap();
        let err = eval_batch(&r, &[vec![0.2], vec![0.9]], 1).unwrap_err();
        assert!(matches!(err, BuildError::ExcessiveFaults { .. }), "{err:?}");
    }

    #[test]
    fn simulator_response_is_deterministic_and_sensible() {
        let r = SimulatorResponse::new(ppm_workload::Benchmark::Crafty, 30_000);
        let a = r.eval(&[0.5; 9]);
        let b = r.eval(&[0.5; 9]);
        assert_eq!(a, b);
        assert!(a > 0.2 && a < 20.0, "implausible CPI {a}");
        // The best corner beats the worst corner.
        let worst = r.eval(&[0.0; 9]);
        let best = r.eval(&[1.0; 9]);
        assert!(
            worst > best,
            "low-performance corner ({worst}) should be slower than high ({best})"
        );
    }

    #[test]
    fn metrics_differ_and_relate() {
        let base = SimulatorResponse::new(ppm_workload::Benchmark::Ammp, 20_000);
        let x = [0.5; 9];
        let cpi = base.clone().with_metric(Metric::Cpi).eval(&x);
        let epi = base.clone().with_metric(Metric::Epi).eval(&x);
        let edp = base.clone().with_metric(Metric::Edp).eval(&x);
        assert!(cpi > 0.0 && epi > 0.0);
        // EDP = EPI x CPI by construction.
        assert!(
            (edp - epi * cpi).abs() / edp < 1e-9,
            "{edp} vs {}",
            epi * cpi
        );
    }

    #[test]
    fn batch_of_simulations_in_parallel() {
        let r = SimulatorResponse::new(ppm_workload::Benchmark::Ammp, 20_000);
        let points: Vec<Vec<f64>> = vec![vec![0.2; 9], vec![0.8; 9], vec![0.5; 9]];
        let serial = eval_batch(&r, &points, 1).unwrap();
        let parallel = eval_batch(&r, &points, 3).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_threads_is_a_typed_error() {
        let r = FnResponse::new(1, |x: &[f64]| x[0]).unwrap();
        let err = eval_batch(&r, &[vec![0.0]], 0).unwrap_err();
        assert!(matches!(err, BuildError::InvalidConfig(_)));
    }
}
