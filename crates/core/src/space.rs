//! The microarchitectural design space of the paper's Tables 1 and 2.

use ppm_sampling::space::{Levels, ParamDef, ParamSpace, Transform};
use ppm_sim::SimConfig;

/// Index of each parameter in a design point, in the paper's Table 1
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Param {
    /// Total pipeline depth (stages).
    PipeDepth = 0,
    /// Reorder buffer entries.
    RobSize = 1,
    /// Issue queue size as a fraction of the ROB.
    IqFrac = 2,
    /// Load/store queue size as a fraction of the ROB.
    LsqFrac = 3,
    /// L2 capacity in KiB.
    L2SizeKb = 4,
    /// L2 hit latency in cycles.
    L2Lat = 5,
    /// L1 instruction cache capacity in KiB.
    Il1SizeKb = 6,
    /// L1 data cache capacity in KiB.
    Dl1SizeKb = 7,
    /// L1 data cache hit latency in cycles.
    Dl1Lat = 8,
}

/// Short names of the nine parameters, in Table 1 order (matching the
/// paper's Table 5 terminology).
pub const PARAM_NAMES: [&str; 9] = [
    "pipe_depth",
    "ROB_size",
    "IQ_size",
    "LSQ_size",
    "L2_size",
    "L2_lat",
    "il1_size",
    "dl1_size",
    "dl1_lat",
];

/// The 9-dimensional processor design space.
///
/// Wraps a [`ParamSpace`] and adds the conversion from unit design
/// points to concrete [`SimConfig`]s (with snapping of cache sizes to
/// powers of two and rounding of integer parameters).
///
/// # Examples
///
/// ```
/// use ppm_core::space::DesignSpace;
///
/// let space = DesignSpace::paper_table1();
/// assert_eq!(space.dim(), 9);
/// // Unit 0 is the "low-performance" corner of Table 1.
/// let config = space.to_config(&[0.0; 9]);
/// assert_eq!(config.pipe_depth, 24);
/// assert_eq!(config.rob_size, 24);
/// assert_eq!(config.l2_size_kb, 256);
/// assert_eq!(config.l2_lat, 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    params: ParamSpace,
}

impl DesignSpace {
    /// The training design space of the paper's Table 1.
    ///
    /// Ranges are given in (low performance → high performance) order;
    /// levels and transforms follow the table: cache sizes are
    /// log-spaced with fixed level counts, ROB/IQ/LSQ take
    /// sample-size-dependent levels ("S"), the rest are linear with
    /// fixed counts.
    pub fn paper_table1() -> Self {
        DesignSpace {
            params: ParamSpace::new(vec![
                ParamDef::new(
                    PARAM_NAMES[0],
                    24.0,
                    7.0,
                    Levels::Fixed(18),
                    Transform::Linear,
                ),
                ParamDef::new(
                    PARAM_NAMES[1],
                    24.0,
                    128.0,
                    Levels::SampleSize,
                    Transform::Linear,
                ),
                ParamDef::new(
                    PARAM_NAMES[2],
                    0.25,
                    0.75,
                    Levels::SampleSize,
                    Transform::Linear,
                ),
                ParamDef::new(
                    PARAM_NAMES[3],
                    0.25,
                    0.75,
                    Levels::SampleSize,
                    Transform::Linear,
                ),
                ParamDef::new(
                    PARAM_NAMES[4],
                    256.0,
                    8192.0,
                    Levels::Fixed(6),
                    Transform::Log,
                ),
                ParamDef::new(
                    PARAM_NAMES[5],
                    20.0,
                    5.0,
                    Levels::Fixed(16),
                    Transform::Linear,
                ),
                ParamDef::new(PARAM_NAMES[6], 8.0, 64.0, Levels::Fixed(4), Transform::Log),
                ParamDef::new(PARAM_NAMES[7], 8.0, 64.0, Levels::Fixed(4), Transform::Log),
                ParamDef::new(
                    PARAM_NAMES[8],
                    4.0,
                    1.0,
                    Levels::Fixed(4),
                    Transform::Linear,
                ),
            ]),
        }
    }

    /// The narrower test-point space of the paper's Table 2, expressed
    /// as a restriction of [`DesignSpace::paper_table1`].
    pub fn paper_table2() -> Self {
        let t1 = DesignSpace::paper_table1();
        // Table 2 vs Table 1 endpoints, converted to unit bounds.
        let bounds = [
            ((24.0 - 22.0) / 17.0, (24.0 - 9.0) / 17.0), // pipe 22..9
            ((37.0 - 24.0) / 104.0, (115.0 - 24.0) / 104.0), // rob 37..115
            (0.12, 0.88),                                // iq 0.31..0.69
            (0.12, 0.88),                                // lsq 0.31..0.69
            (0.0, 1.0),                                  // L2 size full
            ((20.0 - 18.0) / 15.0, (20.0 - 7.0) / 15.0), // L2 lat 18..7
            (0.0, 1.0),                                  // il1 full
            (0.0, 1.0),                                  // dl1 full
            (0.0, 1.0),                                  // dl1 lat full
        ];
        DesignSpace {
            params: t1.params.restricted(&bounds),
        }
    }

    /// Builds a design space from an arbitrary parameter space.
    ///
    /// # Panics
    ///
    /// Panics unless the space has exactly the nine Table 1 parameters
    /// (matched by name and order).
    pub fn from_params(params: ParamSpace) -> Self {
        assert_eq!(params.dim(), 9, "the processor space has 9 dimensions");
        for (p, name) in params.params().iter().zip(PARAM_NAMES) {
            assert_eq!(p.name(), name, "unexpected parameter order");
        }
        DesignSpace { params }
    }

    /// The underlying parameter space.
    pub fn params(&self) -> &ParamSpace {
        &self.params
    }

    /// Number of dimensions (always 9).
    pub fn dim(&self) -> usize {
        self.params.dim()
    }

    /// Converts a unit design point into engineering values
    /// (Table 1 units: stages, entries, fractions, KiB, cycles).
    pub fn to_actual(&self, unit: &[f64]) -> Vec<f64> {
        self.params.to_actual(unit)
    }

    /// Converts a unit design point into a validated simulator
    /// configuration.
    ///
    /// Integer parameters are rounded and cache sizes snapped to the
    /// nearest power of two, so any point in the unit cube maps to a
    /// realizable configuration.
    ///
    /// # Panics
    ///
    /// Panics if `unit.len() != 9`.
    pub fn to_config(&self, unit: &[f64]) -> SimConfig {
        let v = self.to_actual(unit);
        let pow2 = |x: f64| -> u32 {
            let kb = x.max(1.0);
            let exp = kb.log2().round() as u32;
            1u32 << exp
        };
        let config = SimConfig {
            pipe_depth: v[0].round() as u32,
            rob_size: v[1].round() as u32,
            iq_frac: v[2],
            lsq_frac: v[3],
            l2_size_kb: pow2(v[4]),
            l2_lat: v[5].round() as u32,
            il1_size_kb: pow2(v[6]),
            dl1_size_kb: pow2(v[7]),
            dl1_lat: v[8].round() as u32,
            ..SimConfig::default()
        };
        debug_assert!(
            config.validate().is_ok(),
            "unit point maps to invalid config"
        );
        config
    }

    /// Snaps a unit point to the parameter level grids for a given
    /// sample size.
    pub fn snap(&self, unit: &[f64], sample_size: usize) -> Vec<f64> {
        self.params.snap(unit, sample_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    #[test]
    fn table1_corners_are_the_paper_values() {
        let s = DesignSpace::paper_table1();
        let lo = s.to_config(&[0.0; 9]);
        assert_eq!(
            (lo.pipe_depth, lo.rob_size, lo.l2_size_kb, lo.l2_lat),
            (24, 24, 256, 20)
        );
        assert_eq!((lo.il1_size_kb, lo.dl1_size_kb, lo.dl1_lat), (8, 8, 4));
        assert!((lo.iq_frac - 0.25).abs() < 1e-12);
        let hi = s.to_config(&[1.0; 9]);
        assert_eq!(
            (hi.pipe_depth, hi.rob_size, hi.l2_size_kb, hi.l2_lat),
            (7, 128, 8192, 5)
        );
        assert_eq!((hi.il1_size_kb, hi.dl1_size_kb, hi.dl1_lat), (64, 64, 1));
        assert!((hi.lsq_frac - 0.75).abs() < 1e-12);
    }

    #[test]
    fn table2_is_a_strict_subspace() {
        let t2 = DesignSpace::paper_table2();
        let lo = t2.to_config(&[0.0; 9]);
        let hi = t2.to_config(&[1.0; 9]);
        assert_eq!((lo.pipe_depth, hi.pipe_depth), (22, 9));
        assert_eq!((lo.rob_size, hi.rob_size), (37, 115));
        assert_eq!((lo.l2_lat, hi.l2_lat), (18, 7));
        assert!((lo.iq_frac - 0.31).abs() < 1e-9, "{}", lo.iq_frac);
        assert!((hi.iq_frac - 0.69).abs() < 1e-9);
        // Cache size axes remain the full range.
        assert_eq!((lo.l2_size_kb, hi.l2_size_kb), (256, 8192));
        assert_eq!((lo.dl1_lat, hi.dl1_lat), (4, 1));
    }

    #[test]
    fn every_random_point_yields_valid_config() {
        let s = DesignSpace::paper_table1();
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..500 {
            let unit: Vec<f64> = (0..9).map(|_| rng.unit_f64()).collect();
            let config = s.to_config(&unit);
            assert!(config.validate().is_ok(), "invalid config from {unit:?}");
        }
    }

    #[test]
    fn cache_sizes_snap_to_powers_of_two() {
        let s = DesignSpace::paper_table1();
        let mut rng = Rng::seed_from_u64(6);
        for _ in 0..100 {
            let unit: Vec<f64> = (0..9).map(|_| rng.unit_f64()).collect();
            let c = s.to_config(&unit);
            assert!(c.l2_size_kb.is_power_of_two());
            assert!(c.il1_size_kb.is_power_of_two());
            assert!(c.dl1_size_kb.is_power_of_two());
        }
    }

    #[test]
    fn l2_levels_are_the_six_paper_sizes() {
        let s = DesignSpace::paper_table1();
        let values = s.params().params()[4].level_values(200);
        let expected = [256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0];
        assert_eq!(values.len(), 6);
        for (v, e) in values.iter().zip(expected) {
            assert!((v - e).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "9 dimensions")]
    fn from_params_requires_nine() {
        use ppm_sampling::space::ParamDef;
        DesignSpace::from_params(ParamSpace::new(vec![ParamDef::continuous("a", 0.0, 1.0)]));
    }
}
