//! Higher-level analyses built on the fitted models: the linear
//! baseline, trend (interaction) grids, split significance reports, and
//! model-guided design-space search.

use ppm_linreg::{LinearModel, LinearTrainer, LinregError};
use ppm_regtree::{Dataset, DatasetError, RegressionTree};
use ppm_rng::{derive_seed, Rng};
use ppm_sampling::pb::PlackettBurman;

use crate::builder::BuildError;
use crate::response::{eval_batch, Response};
use crate::space::{DesignSpace, PARAM_NAMES};

/// The estimated main effect of one parameter from a screening design.
#[derive(Debug, Clone, PartialEq)]
pub struct MainEffect {
    /// Parameter name.
    pub param: &'static str,
    /// Parameter index.
    pub param_index: usize,
    /// Estimated effect: mean(response at high) - mean(response at low).
    pub effect: f64,
}

/// Runs a foldover Plackett-Burman screening experiment (Yi et al.,
/// HPCA 2005 — the paper's §5 related work): simulates the design's
/// runs and estimates each parameter's main effect.
///
/// Returns the effects sorted by decreasing magnitude. The simulation
/// cost is `2 x runs` (the foldover doubles the design to de-alias
/// main effects from two-factor interactions).
///
/// # Errors
///
/// Returns [`BuildError::InvalidConfig`] if no PB design exists for
/// `runs` and the space's dimension, and propagates batch failures
/// from [`eval_batch`].
pub fn pb_screening<R: Response>(
    space: &DesignSpace,
    response: &R,
    runs: usize,
    threads: usize,
) -> Result<Vec<MainEffect>, BuildError> {
    let _span = ppm_telemetry::span("study.pb_screening");
    let design = PlackettBurman::new(runs, space.dim())
        .ok_or_else(|| {
            BuildError::InvalidConfig(format!(
                "no PB design with {runs} runs for {} factors",
                space.dim()
            ))
        })?
        .foldover();
    let points = design.unit_points();
    let y = eval_batch(response, &points, threads)?;
    let signed = design.signed_points();
    let n = signed.len() as f64;
    let mut effects: Vec<MainEffect> = (0..space.dim())
        .map(|k| {
            let effect = signed
                .iter()
                .zip(&y)
                .map(|(row, &yi)| row[k] * yi)
                .sum::<f64>()
                * 2.0
                / n;
            MainEffect {
                param: PARAM_NAMES[k],
                param_index: k,
                effect,
            }
        })
        .collect();
    effects.sort_by(|a, b| b.effect.abs().total_cmp(&a.effect.abs()));
    Ok(effects)
}

/// Fits the paper's §4.2 linear baseline (main effects + all two-factor
/// interactions, AIC backward elimination) to a simulated sample.
///
/// # Errors
///
/// Returns the underlying [`LinregError`] when the sample cannot
/// identify the model, or a dataset error mapped into it.
///
/// # Panics
///
/// Panics if `design` and `responses` are empty or inconsistent in a way
/// that [`Dataset::new`] reports as a length/dimension error.
pub fn fit_linear_baseline(
    design: &[Vec<f64>],
    responses: &[f64],
) -> Result<LinearModel, LinregError> {
    let data = Dataset::new(design.to_vec(), responses.to_vec())
        // Documented `# Panics` contract above. lint:allow(panic-path)
        .unwrap_or_else(|e: DatasetError| panic!("invalid sample: {e}"));
    LinearTrainer::default().fit(&data)
}

/// A two-parameter sweep of a prediction function over the level grids
/// of the chosen parameters, all other coordinates held at `base`.
///
/// Returns `(a_values, b_values, grid)` where `grid[i][j]` is the
/// prediction with parameter `a` at its `i`-th level and `b` at its
/// `j`-th level, and the value vectors are in engineering units. This is
/// the shape of the paper's Figures 1 and 6.
///
/// # Panics
///
/// Panics if the parameter indices are out of range or equal, or if
/// `base.len()` differs from the space dimension.
pub fn interaction_grid(
    space: &DesignSpace,
    predict: impl Fn(&[f64]) -> f64,
    param_a: usize,
    param_b: usize,
    base: &[f64],
    sample_size_for_levels: usize,
) -> (Vec<f64>, Vec<f64>, Vec<Vec<f64>>) {
    assert!(
        param_a < space.dim() && param_b < space.dim(),
        "parameter out of range"
    );
    assert_ne!(param_a, param_b, "need two distinct parameters");
    assert_eq!(base.len(), space.dim(), "base point dimension mismatch");
    let pa = &space.params().params()[param_a];
    let pb = &space.params().params()[param_b];
    let a_units = pa.unit_grid(sample_size_for_levels);
    let b_units = pb.unit_grid(sample_size_for_levels);
    let a_values: Vec<f64> = a_units.iter().map(|&t| pa.to_actual(t)).collect();
    let b_values: Vec<f64> = b_units.iter().map(|&t| pb.to_actual(t)).collect();
    let mut grid = Vec::with_capacity(a_units.len());
    for &ua in &a_units {
        let mut row = Vec::with_capacity(b_units.len());
        for &ub in &b_units {
            let mut x = base.to_vec();
            x[param_a] = ua;
            x[param_b] = ub;
            row.push(predict(&x));
        }
        grid.push(row);
    }
    (a_values, b_values, grid)
}

/// One row of the paper's Table 5: a significant regression-tree split.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitInfo {
    /// Parameter name (Table 1 terminology).
    pub param: &'static str,
    /// Parameter index.
    pub param_index: usize,
    /// Split boundary in engineering units.
    pub value: f64,
    /// Split depth (root split = 1, as in the paper).
    pub depth: usize,
    /// Sum-of-squares reduction achieved (significance measure).
    pub sse_reduction: f64,
}

/// Fits a regression tree to a sample and reports the `k` most
/// significant splits with boundaries converted to engineering units
/// (the paper's Table 5), plus the full split list for Figure 5.
///
/// # Errors
///
/// Returns a [`DatasetError`] if the sample is inconsistent.
pub fn significant_splits(
    space: &DesignSpace,
    design: &[Vec<f64>],
    responses: &[f64],
    p_min: usize,
    k: usize,
) -> Result<Vec<SplitInfo>, DatasetError> {
    let data = Dataset::new(design.to_vec(), responses.to_vec())?;
    let tree = RegressionTree::fit(&data, p_min);
    Ok(tree
        .splits()
        .iter()
        .take(k)
        .map(|s| {
            let p = &space.params().params()[s.param];
            SplitInfo {
                param: PARAM_NAMES[s.param],
                param_index: s.param,
                value: p.to_actual(s.value),
                depth: s.depth,
                sse_reduction: s.sse_reduction,
            }
        })
        .collect())
}

/// The outcome of a model-guided search over the design space.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The best unit design point found.
    pub unit: Vec<f64>,
    /// Its engineering values.
    pub actual: Vec<f64>,
    /// The predicted response there.
    pub predicted: f64,
}

/// Searches the design space for the point minimizing a predicted
/// response, subject to a feasibility constraint on the engineering
/// values — the "search for optimal design points" use case the paper
/// motivates. Uses random multi-start with local coordinate refinement,
/// evaluating only the (cheap) model, never the simulator.
///
/// Returns `None` if no sampled point satisfies the constraint.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn search_optimum(
    space: &DesignSpace,
    predict: impl Fn(&[f64]) -> f64,
    feasible: impl Fn(&[f64]) -> bool,
    samples: usize,
    seed: u64,
) -> Option<SearchResult> {
    assert!(samples > 0, "need at least one sample");
    let _span = ppm_telemetry::span("study.search_optimum");
    let mut rng = Rng::seed_from_u64(derive_seed(seed, 300));
    let dim = space.dim();
    let mut best: Option<(Vec<f64>, f64)> = None;
    for _ in 0..samples {
        let unit: Vec<f64> = (0..dim).map(|_| rng.unit_f64()).collect();
        if !feasible(&space.to_actual(&unit)) {
            continue;
        }
        let y = predict(&unit);
        if best.as_ref().is_none_or(|(_, b)| y < *b) {
            best = Some((unit, y));
        }
    }
    let (mut unit, mut value) = best?;
    // Coordinate descent refinement on the level grids.
    let grids: Vec<Vec<f64>> = space
        .params()
        .params()
        .iter()
        .map(|p| p.unit_grid(64))
        .collect();
    let mut improved = true;
    while improved {
        improved = false;
        for (k, grid) in grids.iter().enumerate() {
            for &g in grid {
                let mut cand = unit.clone();
                cand[k] = g;
                if !feasible(&space.to_actual(&cand)) {
                    continue;
                }
                let y = predict(&cand);
                if y < value - 1e-12 {
                    unit = cand;
                    value = y;
                    improved = true;
                }
            }
        }
    }
    let actual = space.to_actual(&unit);
    Some(SearchResult {
        unit,
        actual,
        predicted: value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::{FnResponse, Response};
    use ppm_rng::Rng;

    #[test]
    fn pb_screening_ranks_the_dominant_main_effect_first() {
        let space = DesignSpace::paper_table1();
        // Response dominated by L2 latency (param 5), with smaller ROB
        // (param 1) and dl1_lat (param 8) effects.
        let response = FnResponse::new(9, |x| 2.0 + 3.0 * x[5] + 1.0 * x[1] + 0.4 * x[8]).unwrap();
        let effects = pb_screening(&space, &response, 12, 1).unwrap();
        assert_eq!(effects.len(), 9);
        assert_eq!(effects[0].param, "L2_lat");
        assert_eq!(effects[1].param, "ROB_size");
        // Effect magnitude should approximate the coefficient.
        assert!(
            (effects[0].effect.abs() - 3.0).abs() < 0.2,
            "{:?}",
            effects[0]
        );
    }

    #[test]
    fn pb_screening_misattributes_pure_interactions() {
        // The known weakness (paper §5): a pure two-factor interaction
        // with no main effects is invisible to the foldover design.
        let space = DesignSpace::paper_table1();
        let response = FnResponse::new(9, |x| {
            // Centered product: zero main effects in +/- coding.
            1.0 + 4.0 * (x[0] - 0.5) * (x[1] - 0.5)
        })
        .unwrap();
        let effects = pb_screening(&space, &response, 12, 1).unwrap();
        for e in &effects {
            assert!(
                e.effect.abs() < 0.5,
                "interaction leaked into main effect {e:?}"
            );
        }
    }

    #[test]
    fn unsupported_pb_runs_are_a_typed_error() {
        let space = DesignSpace::paper_table1();
        let response = FnResponse::new(9, |x| x[0]).unwrap();
        let err = pb_screening(&space, &response, 13, 1).unwrap_err();
        assert!(matches!(err, BuildError::InvalidConfig(_)));
        assert!(err.to_string().contains("no PB design"));
    }

    fn sample(n: usize, f: impl Fn(&[f64]) -> f64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = Rng::seed_from_u64(8);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..9).map(|_| rng.unit_f64()).collect())
            .collect();
        let ys = pts.iter().map(|p| f(p)).collect();
        (pts, ys)
    }

    #[test]
    fn linear_baseline_recovers_linear_truth() {
        let (pts, ys) = sample(120, |x| 1.0 + 2.0 * x[0] - x[8]);
        let model = fit_linear_baseline(&pts, &ys).unwrap();
        let pred = model.predict(&[0.5; 9]);
        assert!((pred - (1.0 + 1.0 - 0.5)).abs() < 1e-6);
    }

    #[test]
    fn interaction_grid_shape_and_values() {
        let space = DesignSpace::paper_table1();
        // Predict = il1 unit coordinate (param 6) + 2 * L2 latency coord.
        let (a_vals, b_vals, grid) =
            interaction_grid(&space, |x| x[6] + 2.0 * x[5], 6, 5, &[0.5; 9], 200);
        assert_eq!(a_vals.len(), 4); // il1 has 4 levels
        assert_eq!(b_vals.len(), 16); // L2 lat has 16 levels
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0].len(), 16);
        // il1 axis engineering values are 8..64 KB.
        assert!((a_vals[0] - 8.0).abs() < 1e-9);
        assert!((a_vals[3] - 64.0).abs() < 1e-9);
        // Grid increases along both axes of the (unit) predictor.
        assert!(grid[3][0] > grid[0][0]);
        assert!(grid[0][15] > grid[0][0]);
    }

    #[test]
    fn significant_splits_find_the_dominant_parameter() {
        let space = DesignSpace::paper_table1();
        // L2 latency (param 5) dominates with a step at its midpoint.
        let (pts, ys) = sample(150, |x| if x[5] < 0.5 { 3.0 } else { 1.0 } + 0.05 * x[0]);
        let splits = significant_splits(&space, &pts, &ys, 2, 8).unwrap();
        assert!(!splits.is_empty());
        assert_eq!(splits[0].param, "L2_lat");
        assert_eq!(splits[0].depth, 1);
        // Boundary in engineering units: near the middle of 20..5.
        assert!(
            (splits[0].value - 12.5).abs() < 2.0,
            "split at {}",
            splits[0].value
        );
    }

    #[test]
    fn search_optimum_finds_constrained_minimum() {
        let space = DesignSpace::paper_table1();
        // Response decreases with ROB (param 1, unit coordinate), so the
        // unconstrained optimum is rob=128; constrain rob <= 96.
        let predict = |x: &[f64]| 5.0 - 3.0 * x[1];
        let feasible = |actual: &[f64]| actual[1] <= 96.0;
        let result = search_optimum(&space, predict, feasible, 200, 7).unwrap();
        assert!(result.actual[1] <= 96.0);
        // Refinement should push close to the constraint boundary.
        assert!(
            result.actual[1] > 88.0,
            "rob {} far from the boundary",
            result.actual[1]
        );
    }

    #[test]
    fn search_returns_none_when_infeasible() {
        let space = DesignSpace::paper_table1();
        let result = search_optimum(&space, |_| 1.0, |_| false, 50, 1);
        assert!(result.is_none());
    }

    #[test]
    fn fn_response_consistency_with_grid() {
        // interaction_grid with a Response-backed closure.
        let space = DesignSpace::paper_table1();
        let r = FnResponse::new(9, |x: &[f64]| x[4] + x[6]).unwrap();
        let (_, _, grid) = interaction_grid(&space, |x| r.eval(x), 4, 6, &[0.0; 9], 100);
        assert_eq!(grid.len(), 6);
        assert!((grid[5][3] - 2.0).abs() < 1e-9);
    }
}
