//! Supervised batch execution: fault isolation, retries, and
//! quarantine for design-point evaluations.
//!
//! Cycle-level simulation batches are the expensive, failure-prone
//! resource of the whole pipeline (paper §1 step 3). A single panicking
//! design point or a non-finite CPI must not destroy the batch: the
//! supervisor isolates every evaluation with `catch_unwind`, retries
//! panics up to a configurable budget with deterministic exponential
//! backoff, and quarantines points that keep failing or that return a
//! non-finite value. The caller receives a typed [`BatchOutcome`]
//! describing exactly which points survived and why the rest did not.
//!
//! Telemetry: every retry emits a `robust.retry` event (counter
//! `robust.retries`), every quarantine a `robust.quarantine` event
//! (counter `robust.quarantined`), and every evaluated point increments
//! `sim.batch_points` — the counter resume tests use to prove that
//! checkpointed points are never re-simulated.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Duration;

use crate::builder::BuildError;
use crate::response::Response;

/// Why a design point was quarantined.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Fault {
    /// The evaluation panicked; the payload message is kept.
    Panic(String),
    /// The evaluation returned a non-finite value (NaN or ±∞).
    NonFinite(f64),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Panic(msg) => write!(f, "panicked: {msg}"),
            Fault::NonFinite(v) => write!(f, "non-finite response {v}"),
        }
    }
}

/// A design point dropped from a batch, with the evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Quarantine {
    /// Index of the point in the input batch.
    pub index: usize,
    /// The unit design point itself.
    pub point: Vec<f64>,
    /// The last fault observed.
    pub fault: Fault,
    /// Total evaluation attempts made (1 + retries).
    pub attempts: u32,
}

/// How the supervisor treats failing evaluations.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorPolicy {
    /// Retries per point after the first attempt. Only panics are
    /// retried: a deterministic response that returned NaN once will
    /// return it again, so non-finite values quarantine immediately.
    pub max_retries: u32,
    /// Base backoff before retry `k` (sleeps `backoff * 2^(k-1)`;
    /// deterministic, no jitter).
    pub backoff: Duration,
    /// Largest tolerated fraction of quarantined points in a batch.
    /// Above this the batch fails with
    /// [`BuildError::ExcessiveFaults`]; at or below it the survivors
    /// are returned for graceful degradation.
    pub max_quarantined_frac: f64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(0),
            max_quarantined_frac: 0.1,
        }
    }
}

impl SupervisorPolicy {
    /// The zero-tolerance policy: no retries, any fault fails the
    /// batch. This is the behaviour of the plain
    /// [`eval_batch`](crate::response::eval_batch) wrapper.
    pub fn strict() -> Self {
        SupervisorPolicy {
            max_retries: 0,
            backoff: Duration::from_millis(0),
            max_quarantined_frac: 0.0,
        }
    }

    /// Sets the retry budget.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Sets the quarantine threshold as a fraction of the batch.
    pub fn with_max_quarantined_frac(mut self, f: f64) -> Self {
        self.max_quarantined_frac = f;
        self
    }
}

/// The outcome of a supervised batch: per-point values aligned with the
/// input (`None` where quarantined), plus the quarantine report.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One entry per input point; `None` marks a quarantined point.
    pub values: Vec<Option<f64>>,
    /// Quarantined points, in input order.
    pub quarantined: Vec<Quarantine>,
    /// Points actually evaluated by the response (excludes points
    /// served from a checkpoint).
    pub evaluated: usize,
    /// Points whose value came from a checkpoint journal.
    pub resumed: usize,
}

impl BatchOutcome {
    /// Splits the surviving `(point, value)` pairs out of a batch.
    pub fn survivors(&self, points: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut design = Vec::with_capacity(points.len());
        let mut responses = Vec::with_capacity(points.len());
        for (p, v) in points.iter().zip(&self.values) {
            if let Some(y) = v {
                design.push(p.clone());
                responses.push(*y);
            }
        }
        (design, responses)
    }

    /// Fails with [`BuildError::ExcessiveFaults`] if the quarantined
    /// fraction of the batch exceeds `policy.max_quarantined_frac`.
    ///
    /// # Errors
    ///
    /// [`BuildError::ExcessiveFaults`] carrying the first quarantined
    /// point's evidence.
    pub fn check_threshold(&self, policy: &SupervisorPolicy) -> Result<(), BuildError> {
        let n = self.values.len();
        let frac = if n == 0 {
            0.0
        } else {
            self.quarantined.len() as f64 / n as f64
        };
        if !self.quarantined.is_empty() && frac > policy.max_quarantined_frac {
            let first = &self.quarantined[0];
            return Err(BuildError::ExcessiveFaults {
                quarantined: self.quarantined.len(),
                total: n,
                detail: format!("point {} {}", first.index, first.fault),
            });
        }
        Ok(())
    }

    /// All values, or the first quarantine as a typed error — the
    /// strict adapter used by [`crate::response::eval_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::ExcessiveFaults`] if any point was
    /// quarantined.
    pub fn into_values(self, total: usize) -> Result<Vec<f64>, BuildError> {
        if let Some(q) = self.quarantined.first() {
            return Err(BuildError::ExcessiveFaults {
                quarantined: self.quarantined.len(),
                total,
                detail: format!("point {} {}", q.index, q.fault),
            });
        }
        Ok(self
            .values
            .into_iter()
            .map(|v| v.unwrap_or(f64::NAN))
            .collect())
    }
}

/// One supervised evaluation: catch panics, retry with deterministic
/// backoff, classify the result.
fn supervised_eval<R: Response>(
    response: &R,
    index: usize,
    point: &[f64],
    policy: &SupervisorPolicy,
) -> Result<f64, (Fault, u32)> {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let result = catch_unwind(AssertUnwindSafe(|| response.eval(point)));
        let fault = match result {
            Ok(v) if v.is_finite() => return Ok(v),
            Ok(v) => Fault::NonFinite(v),
            Err(payload) => Fault::Panic(panic_message(payload.as_ref())),
        };
        let transient = matches!(fault, Fault::Panic(_));
        if !transient || attempt > policy.max_retries {
            return Err((fault, attempt));
        }
        ppm_telemetry::counter("robust.retries").inc();
        ppm_telemetry::event!(
            ppm_telemetry::Level::Warn,
            "robust.retry",
            "index" => index,
            "attempt" => u64::from(attempt),
            "fault" => fault.to_string(),
        );
        let backoff = policy.backoff.saturating_mul(1u32 << (attempt - 1).min(16));
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluates a batch under supervision: faults are isolated per point,
/// panics retried per `policy`, and persistent failures quarantined.
/// Results are in input order and deterministic for a deterministic
/// response, regardless of `threads`.
///
/// `precomputed` carries checkpoint hits: `Some(v)` entries are taken
/// as-is (counted as `resumed`) and never re-evaluated. Pass `&[]` when
/// no checkpoint is in play.
///
/// # Errors
///
/// * [`BuildError::InvalidConfig`] if `threads == 0` or `precomputed`
///   is non-empty with a length different from `points`.
/// * [`BuildError::ExcessiveFaults`] if the quarantined fraction
///   exceeds `policy.max_quarantined_frac`.
pub fn eval_batch_supervised<R: Response>(
    response: &R,
    points: &[Vec<f64>],
    threads: usize,
    policy: &SupervisorPolicy,
    precomputed: &[Option<f64>],
) -> Result<BatchOutcome, BuildError> {
    if threads == 0 {
        return Err(BuildError::InvalidConfig(
            "need at least one worker thread".to_string(),
        ));
    }
    if !precomputed.is_empty() && precomputed.len() != points.len() {
        return Err(BuildError::InvalidConfig(format!(
            "precomputed length {} does not match batch size {}",
            precomputed.len(),
            points.len()
        )));
    }
    let _span = ppm_telemetry::span("stage.simulation");
    let n = points.len();
    let values: Vec<Option<f64>> = if precomputed.is_empty() {
        vec![None; n]
    } else {
        precomputed.to_vec()
    };
    let resumed = values.iter().filter(|v| v.is_some()).count();
    let todo: Vec<usize> = (0..n).filter(|&i| values[i].is_none()).collect();
    ppm_telemetry::event(
        "sim.batch",
        &[
            ("points", n.into()),
            ("cached", resumed.into()),
            ("threads", threads.into()),
        ],
    );
    ppm_telemetry::counter("sim.batch_points").add(todo.len() as u64);
    // Progress counters for the live plane's /buildz route: planned
    // counts the whole batch up front, done advances as points finish
    // (checkpoint hits count as done immediately), so done/planned is
    // the completion rate the ETA estimate divides by.
    ppm_telemetry::counter("build.points_planned").add(n as u64);
    ppm_telemetry::counter("build.points_done").add(resumed as u64);
    ppm_telemetry::counter("build.points_resumed").add(resumed as u64);

    let quarantined: Mutex<Vec<Quarantine>> = Mutex::new(Vec::new());
    let mut fresh: Vec<Option<f64>> = vec![None; todo.len()];

    // Batched fast path: a response with a one-pass multi-point
    // evaluator (the cycle-level simulator shares the trace pass across
    // all lanes) handles the whole remainder at once. The batch runs
    // under a single catch_unwind — a panic anywhere falls back to the
    // per-point path below, which re-isolates and retries each point
    // individually. Non-finite values quarantine exactly as in the
    // serial path (deterministic, so never retried).
    if todo.len() >= 2 {
        let todo_points: Vec<Vec<f64>> = todo.iter().map(|&i| points[i].clone()).collect();
        let batched = catch_unwind(AssertUnwindSafe(|| response.eval_many(&todo_points)));
        if let Ok(Some(vals)) = batched {
            assert_eq!(
                vals.len(),
                todo.len(),
                "eval_many must return one value per point"
            );
            ppm_telemetry::event("sim.batch_fastpath", &[("points", todo.len().into())]);
            for ((slot, &i), v) in fresh.iter_mut().zip(&todo).zip(vals) {
                if v.is_finite() {
                    *slot = Some(v);
                } else {
                    record_quarantine(i, &points[i], Fault::NonFinite(v), 1, &quarantined);
                }
                ppm_telemetry::counter("build.points_done").inc();
            }
            return finish(values, todo, fresh, quarantined, resumed, policy);
        }
    }

    let workers = threads.min(todo.len().max(1));
    if workers <= 1 {
        for (slot, &i) in fresh.iter_mut().zip(&todo) {
            run_one(response, i, &points[i], policy, slot, &quarantined);
        }
    } else {
        let chunk = todo.len().div_ceil(workers);
        // Workers inherit this thread's telemetry context so their
        // shard spans nest under stage.simulation (and any scoped
        // registry follows them); shards render as timeline lanes in
        // the trace export.
        let ctx = ppm_telemetry::current_context();
        std::thread::scope(|s| {
            for (w, (idxs, out)) in todo.chunks(chunk).zip(fresh.chunks_mut(chunk)).enumerate() {
                let quarantined = &quarantined;
                let ctx = &ctx;
                s.spawn(move || {
                    let _ctx_guard = ctx.attach();
                    let _shard = ppm_telemetry::span(&format!("sim.batch.w{w}"));
                    for (slot, &i) in out.iter_mut().zip(idxs) {
                        run_one(response, i, &points[i], policy, slot, quarantined);
                    }
                });
            }
        });
    }
    finish(values, todo, fresh, quarantined, resumed, policy)
}

/// Merges freshly evaluated values into the batch result and applies
/// the quarantine threshold — shared by the batched fast path and the
/// per-point worker path.
fn finish(
    mut values: Vec<Option<f64>>,
    todo: Vec<usize>,
    fresh: Vec<Option<f64>>,
    quarantined: Mutex<Vec<Quarantine>>,
    resumed: usize,
    policy: &SupervisorPolicy,
) -> Result<BatchOutcome, BuildError> {
    for (&i, v) in todo.iter().zip(fresh) {
        values[i] = v;
    }
    let mut quarantined = quarantined
        .into_inner()
        .unwrap_or_else(|poison| poison.into_inner());
    quarantined.sort_by_key(|q| q.index);

    let outcome = BatchOutcome {
        evaluated: todo.len() - quarantined.len(),
        resumed,
        values,
        quarantined,
    };
    outcome.check_threshold(policy)?;
    Ok(outcome)
}

/// Records one quarantined point: telemetry plus the report entry.
fn record_quarantine(
    index: usize,
    point: &[f64],
    fault: Fault,
    attempts: u32,
    quarantined: &Mutex<Vec<Quarantine>>,
) {
    ppm_telemetry::counter("robust.quarantined").inc();
    ppm_telemetry::event!(
        ppm_telemetry::Level::Error,
        "robust.quarantine",
        "index" => index,
        "attempts" => u64::from(attempts),
        "fault" => fault.to_string(),
    );
    quarantined
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
        .push(Quarantine {
            index,
            point: point.to_vec(),
            fault,
            attempts,
        });
}

fn run_one<R: Response>(
    response: &R,
    index: usize,
    point: &[f64],
    policy: &SupervisorPolicy,
    slot: &mut Option<f64>,
    quarantined: &Mutex<Vec<Quarantine>>,
) {
    match supervised_eval(response, index, point, policy) {
        Ok(v) => *slot = Some(v),
        Err((fault, attempts)) => record_quarantine(index, point, fault, attempts, quarantined),
    }
    // Quarantined points are still *done* for progress purposes: the
    // supervisor will not spend more time on them.
    ppm_telemetry::counter("build.points_done").inc();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::FnResponse;

    fn clean() -> FnResponse<impl Fn(&[f64]) -> f64 + Sync> {
        FnResponse::new(2, |x| 1.0 + x[0] + 2.0 * x[1]).unwrap()
    }

    fn points(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / n as f64, 0.5]).collect()
    }

    #[test]
    fn clean_batch_survives_fully_in_any_thread_count() {
        let r = clean();
        let pts = points(17);
        let a = eval_batch_supervised(&r, &pts, 1, &SupervisorPolicy::default(), &[]).unwrap();
        let b = eval_batch_supervised(&r, &pts, 8, &SupervisorPolicy::default(), &[]).unwrap();
        assert_eq!(a, b);
        assert!(a.quarantined.is_empty());
        assert_eq!(a.evaluated, 17);
        assert_eq!(a.resumed, 0);
        assert!(a.values.iter().all(|v| v.is_some()));
    }

    #[test]
    fn nan_points_are_quarantined_without_retry() {
        let r = FnResponse::new(1, |x: &[f64]| if x[0] > 0.5 { f64::NAN } else { x[0] }).unwrap();
        let pts = vec![vec![0.2], vec![0.9], vec![0.4]];
        let policy = SupervisorPolicy::default().with_max_quarantined_frac(0.5);
        let out = eval_batch_supervised(&r, &pts, 1, &policy, &[]).unwrap();
        assert_eq!(out.values, vec![Some(0.2), None, Some(0.4)]);
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(out.quarantined[0].index, 1);
        assert_eq!(out.quarantined[0].attempts, 1, "NaN must not be retried");
        assert!(matches!(out.quarantined[0].fault, Fault::NonFinite(_)));
        let (d, y) = out.survivors(&pts);
        assert_eq!(d, vec![vec![0.2], vec![0.4]]);
        assert_eq!(y, vec![0.2, 0.4]);
    }

    #[test]
    fn panics_are_isolated_and_reported() {
        let r = FnResponse::new(1, |x: &[f64]| {
            assert!(x[0] < 0.5, "injected failure");
            x[0]
        })
        .unwrap();
        let pts = vec![vec![0.1], vec![0.8]];
        let policy = SupervisorPolicy::default().with_max_quarantined_frac(0.5);
        let out = eval_batch_supervised(&r, &pts, 2, &policy, &[]).unwrap();
        assert_eq!(out.values[0], Some(0.1));
        assert_eq!(out.values[1], None);
        assert_eq!(out.quarantined[0].attempts, 3, "2 retries + first try");
        let msg = out.quarantined[0].fault.to_string();
        assert!(msg.contains("injected failure"), "{msg}");
    }

    #[test]
    fn threshold_breach_is_a_typed_error() {
        let r = FnResponse::new(1, |_: &[f64]| f64::INFINITY).unwrap();
        let err = eval_batch_supervised(&r, &points(4), 1, &SupervisorPolicy::default(), &[])
            .unwrap_err();
        match err {
            BuildError::ExcessiveFaults {
                quarantined, total, ..
            } => {
                assert_eq!(quarantined, 4);
                assert_eq!(total, 4);
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn precomputed_entries_skip_evaluation() {
        // A response that panics on everything: only the cached entries
        // can succeed, proving nothing cached is re-evaluated.
        let r = FnResponse::new(1, |_: &[f64]| panic!("must not be called")).unwrap();
        let pts = vec![vec![0.1], vec![0.2]];
        let pre = vec![Some(10.0), Some(20.0)];
        let out = eval_batch_supervised(&r, &pts, 1, &SupervisorPolicy::strict(), &pre).unwrap();
        assert_eq!(out.values, pre);
        assert_eq!(out.resumed, 2);
        assert_eq!(out.evaluated, 0);
    }

    #[test]
    fn progress_counters_track_planned_and_done() {
        let scoped = ppm_telemetry::Registry::scoped();
        let r = FnResponse::new(1, |x: &[f64]| if x[0] > 0.5 { f64::NAN } else { x[0] }).unwrap();
        let pts = vec![vec![0.2], vec![0.9], vec![0.4], vec![0.1]];
        let pre = vec![None, None, None, Some(7.0)];
        let policy = SupervisorPolicy::default().with_max_quarantined_frac(0.5);
        let out = eval_batch_supervised(&r, &pts, 1, &policy, &pre).unwrap();
        assert_eq!(out.resumed, 1);
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(scoped.counter("build.points_planned").get(), 4);
        // Done covers successes, the checkpoint hit, and the
        // quarantined point — progress must reach planned even when
        // points fail.
        assert_eq!(scoped.counter("build.points_done").get(), 4);
    }

    #[test]
    fn zero_threads_is_invalid_config() {
        let err = eval_batch_supervised(&clean(), &points(2), 0, &SupervisorPolicy::default(), &[])
            .unwrap_err();
        assert!(matches!(err, BuildError::InvalidConfig(_)));
    }

    #[test]
    fn mismatched_precomputed_is_invalid_config() {
        let err = eval_batch_supervised(
            &clean(),
            &points(3),
            1,
            &SupervisorPolicy::default(),
            &[None],
        )
        .unwrap_err();
        assert!(matches!(err, BuildError::InvalidConfig(_)));
    }
}
