//! Deterministic parallel execution for the model-training hot paths.
//!
//! Simulation batches went parallel first (`ppm-core`'s supervised
//! executor); this crate gives the *training* side — the `(p_min, α)`
//! grid search, the latin-hypercube candidate sweep, and k-fold
//! cross-validation — the same treatment with one hard guarantee:
//!
//! > **Parallel output is byte-identical to serial output, regardless
//! > of thread count.**
//!
//! The guarantee holds because the executor never lets scheduling
//! influence results:
//!
//! * work is identified by *index*: every task is a pure function of
//!   its position `i` in `0..n`, never of which worker ran it or when;
//! * results are collected into *index-ordered slots*, so the output
//!   `Vec` reads exactly as if a `for` loop had produced it;
//! * reductions ([`argmin`]) scan that ordered output with a strict
//!   `<`, so ties break toward the lowest index — the same winner a
//!   serial first-wins fold selects.
//!
//! Callers that need randomness derive one independent RNG stream per
//! index (`ppm_rng::derive_seed`) instead of sharing a sequential
//! stream, which is what makes per-index purity possible.
//!
//! Telemetry: every [`Executor::map`] call adds to `exec.tasks`,
//! records the worker count in `exec.workers`, counts dynamic-queue
//! `exec.steals` (chunks claimed beyond a worker's fair share) and
//! `exec.idle` (workers that found the queue already drained), and sets
//! a per-stage wall-clock gauge `exec.<label>.ms`.
//!
//! # Examples
//!
//! ```
//! use ppm_exec::Executor;
//!
//! let exec = Executor::new(4)?;
//! let squares = exec.map("demo", 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! # Ok::<(), ppm_exec::ExecError>(())
//! ```

mod pool;
mod service;

pub use pool::{ExecError, Executor};
pub use service::{ServicePool, SubmitError};

use std::error::Error;
use std::fmt;

/// Hard cap on worker threads, protecting against absurd
/// `PPM_THREADS` values; scoped spawning of thousands of threads would
/// exhaust the process long before it helped.
pub const MAX_THREADS: usize = 256;

/// An invalid `PPM_THREADS` environment value.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ThreadEnvError {
    /// The value was zero — a zero-worker pool cannot make progress.
    Zero,
    /// The value did not parse as a positive integer.
    Invalid(String),
}

impl fmt::Display for ThreadEnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadEnvError::Zero => write!(f, "PPM_THREADS must be at least 1"),
            ThreadEnvError::Invalid(v) => {
                write!(f, "PPM_THREADS={v:?} is not a positive integer")
            }
        }
    }
}

impl Error for ThreadEnvError {}

/// Parses a `PPM_THREADS`-style value: a positive integer, capped at
/// [`MAX_THREADS`].
///
/// # Errors
///
/// [`ThreadEnvError::Zero`] for `"0"`, [`ThreadEnvError::Invalid`] for
/// anything that is not an integer.
pub fn parse_thread_spec(value: &str) -> Result<usize, ThreadEnvError> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err(ThreadEnvError::Zero),
        Ok(n) => Ok(n.min(MAX_THREADS)),
        Err(_) => Err(ThreadEnvError::Invalid(value.to_string())),
    }
}

/// Reads the `PPM_THREADS` override: `Ok(None)` when unset, the
/// validated thread count when set.
///
/// This single override is shared by the simulation batches and the
/// training executor, so one environment variable pins the whole
/// pipeline's parallelism (determinism does not depend on it either
/// way).
///
/// # Errors
///
/// [`ThreadEnvError`] when the variable is set but invalid; callers
/// with a user interface (the CLI) should reject the run as a usage
/// error instead of guessing.
pub fn threads_from_env() -> Result<Option<usize>, ThreadEnvError> {
    // PPM_THREADS is this function's documented public surface; the CLI
    // calls it explicitly rather than hiding it. lint:allow(env-read)
    match std::env::var("PPM_THREADS") {
        Ok(v) => parse_thread_spec(&v).map(Some),
        Err(_) => Ok(None),
    }
}

/// The number of worker threads to use by default: the `PPM_THREADS`
/// override when set and valid, otherwise the available parallelism
/// capped at 16 (falling back to 4 when the OS cannot report it).
///
/// An *invalid* `PPM_THREADS` value cannot be surfaced from here (this
/// is called from `Default` impls), so it is ignored with an
/// `exec.env_invalid` telemetry event; the CLI validates the variable
/// up front and rejects it as a usage error.
pub fn default_threads() -> usize {
    match threads_from_env() {
        Ok(Some(n)) => return n,
        Ok(None) => {}
        Err(e) => {
            ppm_telemetry::counter("exec.env_invalid").inc();
            ppm_telemetry::event("exec.env_invalid", &[("error", e.to_string().into())]);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(16))
        .unwrap_or(4)
}

/// The index of the smallest score, ties broken toward the lowest
/// index (the winner a serial first-wins scan selects); `None` for an
/// empty iterator.
///
/// NaN never wins a comparison, matching the serial fold: a NaN score
/// is kept only if it arrived first and nothing finite follows.
///
/// # Examples
///
/// ```
/// assert_eq!(ppm_exec::argmin([3.0, 1.0, 1.0, 2.0]), Some(1));
/// assert_eq!(ppm_exec::argmin(std::iter::empty()), None);
/// ```
pub fn argmin<I: IntoIterator<Item = f64>>(scores: I) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, s) in scores.into_iter().enumerate() {
        match best {
            None => best = Some((i, s)),
            Some((_, b)) if s < b => best = Some((i, s)),
            Some(_) => {}
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_thread_spec_accepts_positive_integers() {
        assert_eq!(parse_thread_spec("1"), Ok(1));
        assert_eq!(parse_thread_spec(" 8 "), Ok(8));
        assert_eq!(parse_thread_spec("16"), Ok(16));
    }

    #[test]
    fn parse_thread_spec_caps_at_max() {
        assert_eq!(parse_thread_spec("99999"), Ok(MAX_THREADS));
    }

    #[test]
    fn parse_thread_spec_rejects_zero() {
        assert_eq!(parse_thread_spec("0"), Err(ThreadEnvError::Zero));
    }

    #[test]
    fn parse_thread_spec_rejects_garbage() {
        for bad in ["", "four", "-2", "3.5", "8x"] {
            assert!(
                matches!(parse_thread_spec(bad), Err(ThreadEnvError::Invalid(_))),
                "{bad:?} should be invalid"
            );
        }
    }

    #[test]
    fn thread_env_errors_display_the_variable_name() {
        assert!(ThreadEnvError::Zero.to_string().contains("PPM_THREADS"));
        assert!(ThreadEnvError::Invalid("x".into())
            .to_string()
            .contains("PPM_THREADS"));
    }

    #[test]
    fn default_threads_is_positive() {
        let n = default_threads();
        assert!((1..=MAX_THREADS).contains(&n));
    }

    #[test]
    fn argmin_breaks_ties_toward_the_lowest_index() {
        assert_eq!(argmin([2.0, 1.0, 1.0]), Some(1));
        assert_eq!(argmin([1.0, 1.0, 1.0]), Some(0));
    }

    #[test]
    fn argmin_nan_never_wins_a_comparison() {
        // Exactly the serial first-wins fold: a leading NaN is kept
        // (nothing compares less than it), a later NaN never replaces.
        assert_eq!(argmin([f64::NAN, 1.0]), Some(0));
        assert_eq!(argmin([1.0, f64::NAN]), Some(0));
        assert_eq!(argmin([f64::NAN, f64::NAN]), Some(0));
    }

    #[test]
    fn argmin_of_empty_is_none() {
        assert_eq!(argmin(std::iter::empty()), None);
    }
}
