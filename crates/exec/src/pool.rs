//! The deterministic index-sharded executor.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Errors from constructing an [`Executor`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// A zero-worker pool cannot make progress.
    ZeroThreads,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ZeroThreads => write!(f, "need at least one worker thread"),
        }
    }
}

impl Error for ExecError {}

/// A deterministic parallel executor: scoped worker threads over an
/// index-sharded work queue with ordered result collection.
///
/// [`Executor::map`] evaluates a pure-per-index function at every index
/// in `0..n` and returns the results in index order. Workers claim
/// chunks of indices from a shared atomic cursor (so load balances
/// dynamically), but because each task depends only on its index and
/// results land in index-ordered slots, the output is byte-identical
/// for every thread count — including 1.
///
/// # Examples
///
/// ```
/// use ppm_exec::Executor;
///
/// let serial = Executor::new(1)?.map("doc", 100, |i| (i as f64).sqrt());
/// let parallel = Executor::new(8)?.map("doc", 100, |i| (i as f64).sqrt());
/// assert_eq!(serial, parallel);
/// # Ok::<(), ppm_exec::ExecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// Creates an executor with `threads` workers (capped at
    /// [`crate::MAX_THREADS`]).
    ///
    /// # Errors
    ///
    /// [`ExecError::ZeroThreads`] if `threads == 0`.
    pub fn new(threads: usize) -> Result<Self, ExecError> {
        if threads == 0 {
            return Err(ExecError::ZeroThreads);
        }
        Ok(Executor {
            threads: threads.min(crate::MAX_THREADS),
        })
    }

    /// The single-threaded executor (always valid).
    pub fn single() -> Self {
        Executor { threads: 1 }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates `f(i)` for every `i` in `0..n`, in parallel when the
    /// executor has more than one worker, returning results in index
    /// order.
    ///
    /// `f` must be a pure function of its index (derive any randomness
    /// from the index, never from shared mutable state); under that
    /// contract the result is identical for every thread count. A
    /// panicking task propagates after all workers join, matching the
    /// serial behaviour of a panicking loop body.
    ///
    /// `label` names the stage in telemetry: wall-clock lands in the
    /// gauge `exec.<label>.ms`.
    pub fn map<T, F>(&self, label: &str, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        // Feeds the exec.<label>.ms gauge; a span per shard batch would
        // recurse into the recorder from worker threads and perturb the
        // sentry baselines. lint:allow(wall-clock)
        let start = Instant::now();
        let workers = self.threads.min(n.max(1));
        ppm_telemetry::counter("exec.tasks").add(n as u64);
        ppm_telemetry::gauge("exec.workers").set(workers as f64);
        let out = if workers <= 1 {
            (0..n).map(f).collect()
        } else {
            map_parallel(label, workers, n, &f)
        };
        ppm_telemetry::gauge(&format!("exec.{label}.ms")).set(start.elapsed().as_secs_f64() * 1e3);
        out
    }
}

/// Marks one worker shard live for the duration of its run, for the
/// live plane: `exec.<label>.w<k>.live` flips to 1, and the aggregate
/// `exec.workers_live` up/down gauge rises by one. Dropping the guard
/// reverses both, so a panicking shard never leaves a stuck gauge.
struct LivenessGuard {
    shard: std::sync::Arc<ppm_telemetry::Gauge>,
    pool: std::sync::Arc<ppm_telemetry::Gauge>,
}

impl LivenessGuard {
    fn enter(label: &str, w: usize) -> Self {
        let shard = ppm_telemetry::gauge(&format!("exec.{label}.w{w}.live"));
        let pool = ppm_telemetry::gauge("exec.workers_live");
        shard.set(1.0);
        pool.add(1.0);
        LivenessGuard { shard, pool }
    }
}

impl Drop for LivenessGuard {
    fn drop(&mut self) {
        self.shard.set(0.0);
        self.pool.add(-1.0);
    }
}

/// The parallel path: workers claim chunks of indices from a shared
/// cursor, collect `(index, value)` pairs, and the results are placed
/// into index-ordered slots after the scope joins.
///
/// Each worker attaches the spawning thread's [`TelemetryContext`], so
/// its shard span (`exec.<label>.w<k>`) nests under the enclosing stage
/// span and its metrics land in the caller's (possibly scoped)
/// registry — trace exports render the shards as per-thread lanes.
fn map_parallel<T, F>(label: &str, workers: usize, n: usize, f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // Chunks small enough to balance load, large enough to amortize the
    // cursor contention; `fair` is each worker's proportional share,
    // used only for the steal counter.
    let chunk = (n / (workers * 4)).max(1);
    let fair = n.div_ceil(workers);
    let cursor = AtomicUsize::new(0);
    let ctx = ppm_telemetry::current_context();

    let buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let cursor = &cursor;
                let ctx = &ctx;
                scope.spawn(move || {
                    let _ctx_guard = ctx.attach();
                    let _live = LivenessGuard::enter(label, w);
                    let _shard = ppm_telemetry::span(&format!("exec.{label}.w{w}"));
                    let mut got: Vec<(usize, T)> = Vec::new();
                    let mut claimed = 0usize;
                    loop {
                        let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= n {
                            if claimed == 0 {
                                ppm_telemetry::counter("exec.idle").inc();
                            }
                            break;
                        }
                        if claimed >= fair {
                            ppm_telemetry::counter("exec.steals").inc();
                        }
                        let hi = (lo + chunk).min(n);
                        got.reserve(hi - lo);
                        for i in lo..hi {
                            got.push((i, f(i)));
                        }
                        claimed += hi - lo;
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Re-raise a worker panic on the caller, as a serial
                // loop body's panic would surface.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in buckets.into_iter().flatten() {
        slots[i] = Some(v);
    }
    let out: Vec<T> = slots.into_iter().flatten().collect();
    // Every index is claimed by exactly one worker; a hole here is an
    // executor bug, not a caller error.
    assert_eq!(out.len(), n, "executor lost results");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_is_a_typed_error() {
        assert_eq!(Executor::new(0), Err(ExecError::ZeroThreads));
        assert!(ExecError::ZeroThreads.to_string().contains("worker"));
    }

    #[test]
    fn caps_thread_count() {
        let e = Executor::new(1_000_000).unwrap();
        assert_eq!(e.threads(), crate::MAX_THREADS);
    }

    #[test]
    fn map_returns_results_in_index_order() {
        let e = Executor::new(4).unwrap();
        let out = e.map("test", 97, |i| i * 3);
        assert_eq!(out, (0..97).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_equals_parallel_for_every_thread_count() {
        let reference = Executor::single().map("test", 203, |i| (i as f64 * 0.37).sin());
        for threads in [2, 3, 5, 8, 16] {
            let par = Executor::new(threads)
                .unwrap()
                .map("test", 203, |i| (i as f64 * 0.37).sin());
            assert_eq!(reference, par, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let e = Executor::new(8).unwrap();
        let out: Vec<u64> = e.map("test", 0, |i| i as u64);
        assert!(out.is_empty());
    }

    #[test]
    fn single_task_runs_inline() {
        let e = Executor::new(8).unwrap();
        assert_eq!(e.map("test", 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn uneven_chunks_cover_every_index() {
        // n chosen to not divide evenly by any worker count.
        let e = Executor::new(7).unwrap();
        let out = e.map("test", 61, |i| i);
        assert_eq!(out, (0..61).collect::<Vec<_>>());
    }

    #[test]
    fn workers_inherit_telemetry_context() {
        // With a scoped registry installed on the calling thread, both
        // the caller-side counters and the worker shard spans must land
        // in the scoped registry, not the global one.
        let scoped = ppm_telemetry::Registry::scoped();
        let e = Executor::new(4).unwrap();
        let out = e.map("ctx_test", 64, |i| i);
        assert_eq!(out.len(), 64);
        // Exactly this call's tasks: other tests can't touch a scoped
        // registry, so the count is precise.
        assert_eq!(scoped.counter("exec.tasks").get(), 64);
        assert!(
            scoped.histogram("span.exec.ctx_test.w0.us").count() >= 1,
            "worker shard span must be recorded in the scoped registry"
        );
        // The shard-span histogram for this unique label must not leak
        // into the global registry.
        assert_eq!(
            ppm_telemetry::registry()
                .histogram("span.exec.ctx_test.w0.us")
                .count(),
            0
        );
    }

    #[test]
    fn liveness_gauges_rise_during_and_clear_after_a_run() {
        let scoped = ppm_telemetry::Registry::scoped();
        let e = Executor::new(4).unwrap();
        let saw_live = std::sync::atomic::AtomicBool::new(false);
        e.map("live_test", 64, |i| {
            // Read from inside a task: at minimum this worker is live.
            if ppm_telemetry::gauge("exec.workers_live").get() >= 1.0 {
                saw_live.store(true, Ordering::Relaxed);
            }
            i
        });
        assert!(saw_live.load(Ordering::Relaxed), "no live worker observed");
        // All guards dropped: both shard and aggregate gauges are back
        // to zero even though the instruments still exist.
        assert_eq!(scoped.gauge("exec.workers_live").get(), 0.0);
        assert_eq!(scoped.gauge("exec.live_test.w0.live").get(), 0.0);
    }

    #[test]
    fn liveness_clears_even_when_a_worker_panics() {
        let scoped = ppm_telemetry::Registry::scoped();
        let e = Executor::new(4).unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.map("live_panic", 32, |i| {
                assert!(i != 9, "injected task failure");
                i
            })
        }));
        assert!(caught.is_err());
        assert_eq!(scoped.gauge("exec.workers_live").get(), 0.0);
    }

    #[test]
    fn worker_panic_propagates() {
        let e = Executor::new(4).unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.map("test", 32, |i| {
                assert!(i != 17, "injected task failure");
                i
            })
        }));
        assert!(caught.is_err(), "panic in a task must propagate");
    }
}
