//! A long-running sharded worker pool for serving workloads.
//!
//! [`Executor::map`](crate::Executor) is a *batch* device: it spawns
//! scoped workers, drains a fixed index range, and joins. A service
//! needs the opposite shape — workers that outlive any one request,
//! bounded queues in front of them, and an explicit "full" signal the
//! caller can turn into load shedding instead of unbounded latency.
//! [`ServicePool`] is that shape:
//!
//! * `workers` dedicated threads, each behind its own bounded
//!   [`std::sync::mpsc::sync_channel`] shard;
//! * [`ServicePool::try_submit`] round-robins across shards and tries
//!   every shard once; when all are full it hands the item *back* as
//!   [`SubmitError::Saturated`] so the caller can shed it explicitly;
//! * a shared depth gauge ([`ServicePool::depth`]) so callers can make
//!   graceful-degradation decisions from queue pressure;
//! * per-item panic isolation: a handler panic is caught, counted
//!   (`exec.<label>.worker_panics`), and the worker keeps serving.
//!
//! Determinism is explicitly *not* a goal here — which worker runs a
//! request is scheduling-dependent by design. Anything whose output
//! must be byte-identical belongs on [`Executor`](crate::Executor).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::ExecError;

/// Why a submission was not accepted.
#[derive(Debug)]
pub enum SubmitError<T> {
    /// Every shard queue is full; the item is returned so the caller
    /// can shed it (or retry later) without losing it.
    Saturated(T),
    /// The pool is shutting down; no worker will ever pick the item up.
    Closed(T),
}

impl<T> SubmitError<T> {
    /// Recovers the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            SubmitError::Saturated(item) | SubmitError::Closed(item) => item,
        }
    }
}

/// A fixed pool of long-running workers behind bounded per-worker
/// queues. See the module docs for the design.
///
/// Dropping the pool closes every queue and joins the workers;
/// already-queued items are still drained first.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use ppm_exec::ServicePool;
///
/// let done = Arc::new(AtomicUsize::new(0));
/// let seen = Arc::clone(&done);
/// let pool = ServicePool::new("doc", 2, 4, move |n: usize| {
///     seen.fetch_add(n, Ordering::SeqCst);
/// })?;
/// for i in 0..8 {
///     while pool.try_submit(i).is_err() {
///         std::thread::yield_now();
///     }
/// }
/// drop(pool); // joins workers, draining the queues
/// assert_eq!(done.load(Ordering::SeqCst), (0..8).sum());
/// # Ok::<(), ppm_exec::ExecError>(())
/// ```
pub struct ServicePool<T: Send + 'static> {
    shards: Vec<SyncSender<T>>,
    handles: Vec<JoinHandle<()>>,
    // atomic-policy(depth): SeqCst — the queued-depth gauge is counted
    // *before* the send and uncounted on the failure path; a single
    // total order across submitters and workers keeps the gauge from
    // going transiently negative under contention.
    depth: Arc<AtomicUsize>,
    next: AtomicUsize,
    label: String,
}

impl<T: Send + 'static> ServicePool<T> {
    /// Spawns `workers` threads, each behind a bounded queue of
    /// `queue_per_worker` slots, all running `handler`. `label` scopes
    /// the pool's telemetry (`exec.<label>.*`).
    ///
    /// # Errors
    ///
    /// [`ExecError::ZeroThreads`] when `workers` or `queue_per_worker`
    /// is zero (a zero-capacity `sync_channel` would rendezvous, which
    /// defeats `try_submit`-based shedding).
    pub fn new<F>(
        label: &str,
        workers: usize,
        queue_per_worker: usize,
        handler: F,
    ) -> Result<Self, ExecError>
    where
        F: Fn(T) + Send + Clone + 'static,
    {
        Self::with_worker_ids(label, workers, queue_per_worker, move |_w, item| {
            handler(item)
        })
    }

    /// Like [`ServicePool::new`], but the handler also receives the
    /// worker's shard index (`0..workers`) with each item — request
    /// tracing uses it to record which lane served a request.
    ///
    /// # Errors
    ///
    /// Same contract as [`ServicePool::new`].
    pub fn with_worker_ids<F>(
        label: &str,
        workers: usize,
        queue_per_worker: usize,
        handler: F,
    ) -> Result<Self, ExecError>
    where
        F: Fn(usize, T) + Send + Clone + 'static,
    {
        if workers == 0 || queue_per_worker == 0 {
            return Err(ExecError::ZeroThreads);
        }
        let workers = workers.min(crate::MAX_THREADS);
        let depth = Arc::new(AtomicUsize::new(0));
        let mut shards = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        let context = ppm_telemetry::current_context();
        let panics = ppm_telemetry::counter(&format!("exec.{label}.worker_panics"));
        for w in 0..workers {
            let (tx, rx) = sync_channel::<T>(queue_per_worker);
            shards.push(tx);
            let depth = Arc::clone(&depth);
            let handler = handler.clone();
            let context = context.clone();
            let panics = Arc::clone(&panics);
            let handle = std::thread::Builder::new()
                .name(format!("ppm-svc-{label}-{w}"))
                .spawn(move || {
                    let _ctx_guard = context.attach();
                    while let Ok(item) = rx.recv() {
                        depth.fetch_sub(1, Ordering::SeqCst);
                        // A handler panic must cost one request, not a
                        // worker: catch it, count it, keep serving. The
                        // handler owns its item, so no shared state can
                        // be observed mid-unwind.
                        if catch_unwind(AssertUnwindSafe(|| handler(w, item))).is_err() {
                            panics.inc();
                        }
                    }
                })
                .map_err(|_| ExecError::ZeroThreads)?;
            handles.push(handle);
        }
        ppm_telemetry::gauge(&format!("exec.{label}.workers")).set(workers as f64);
        Ok(ServicePool {
            shards,
            handles,
            depth,
            next: AtomicUsize::new(0),
            label: label.to_string(),
        })
    }

    /// The number of items currently queued (submitted, not yet picked
    /// up by a worker). The graceful-degradation signal.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// The number of worker shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Offers an item to the pool without blocking: starting from a
    /// round-robin cursor, each shard is tried once; the first with a
    /// free slot takes the item.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Saturated`] (with the item) when every shard
    /// queue is full — the caller's cue to shed load.
    /// [`SubmitError::Closed`] when workers have exited.
    pub fn try_submit(&self, item: T) -> Result<(), SubmitError<T>> {
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        let mut item = item;
        for k in 0..self.shards.len() {
            let shard = &self.shards[(start + k) % self.shards.len()];
            // Count the item as queued *before* the send so a worker
            // that picks it up immediately never underflows the gauge.
            self.depth.fetch_add(1, Ordering::SeqCst);
            match shard.try_send(item) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(back)) => {
                    self.depth.fetch_sub(1, Ordering::SeqCst);
                    item = back;
                }
                Err(TrySendError::Disconnected(back)) => {
                    self.depth.fetch_sub(1, Ordering::SeqCst);
                    return Err(SubmitError::Closed(back));
                }
            }
        }
        ppm_telemetry::counter(&format!("exec.{}.saturated", self.label)).inc();
        Err(SubmitError::Saturated(item))
    }
}

impl<T: Send + 'static> Drop for ServicePool<T> {
    fn drop(&mut self) {
        // Closing the senders ends each worker's recv loop once its
        // queue drains; then join so queued work is never abandoned.
        self.shards.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn drains_all_submitted_items_before_drop_returns() {
        let (tx, rx) = channel();
        let pool = ServicePool::new("t_drain", 3, 8, move |n: u64| {
            tx.send(n).unwrap();
        })
        .unwrap();
        let mut submitted = 0u64;
        for i in 0..24u64 {
            let mut item = i;
            loop {
                match pool.try_submit(item) {
                    Ok(()) => {
                        submitted += i;
                        break;
                    }
                    Err(SubmitError::Saturated(back)) => {
                        item = back;
                        std::thread::yield_now();
                    }
                    Err(SubmitError::Closed(_)) => panic!("pool closed early"),
                }
            }
        }
        drop(pool);
        let drained: u64 = rx.try_iter().sum();
        assert_eq!(drained, submitted);
    }

    #[test]
    fn saturation_returns_the_item_instead_of_blocking() {
        // One worker parked on a slow item; its queue (1 slot) plus the
        // in-flight item absorb 2 submissions, the 3rd must bounce.
        let (release_tx, release_rx) = channel::<()>();
        let release_rx = Arc::new(std::sync::Mutex::new(release_rx));
        let pool = ServicePool::new("t_sat", 1, 1, move |_n: u32| {
            let _ = release_rx.lock().unwrap().recv();
        })
        .unwrap();
        // First item reaches the worker; second fills the queue slot.
        // Poll until both are placed (the worker needs a moment to pull
        // the first item out of the queue).
        let mut placed = 0;
        let mut spins = 0;
        while placed < 2 {
            match pool.try_submit(placed) {
                Ok(()) => placed += 1,
                Err(SubmitError::Saturated(_)) => {
                    spins += 1;
                    assert!(spins < 10_000, "queue never drained into the worker");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(SubmitError::Closed(_)) => panic!("pool closed early"),
            }
        }
        match pool.try_submit(99) {
            Err(SubmitError::Saturated(back)) => assert_eq!(back, 99),
            other => panic!("expected saturation, got {other:?}"),
        }
        assert!(pool.depth() >= 1);
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        drop(release_tx);
        drop(pool);
    }

    #[test]
    fn handler_panic_is_contained_and_counted() {
        let before = ppm_telemetry::registry()
            .counter("exec.t_panic.worker_panics")
            .get();
        let (tx, rx) = channel();
        let pool = ServicePool::new("t_panic", 1, 4, move |n: u32| {
            // The panic path is this test's subject. lint:allow(panic-path)
            assert!(n != 7, "injected");
            tx.send(n).unwrap();
        })
        .unwrap();
        for i in [7u32, 1, 2] {
            let mut item = i;
            while let Err(SubmitError::Saturated(back)) = pool.try_submit(item) {
                item = back;
                std::thread::yield_now();
            }
        }
        drop(pool);
        let survivors: Vec<u32> = rx.try_iter().collect();
        assert_eq!(survivors, vec![1, 2], "worker died with the panic");
        let after = ppm_telemetry::registry()
            .counter("exec.t_panic.worker_panics")
            .get();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn worker_ids_are_in_range_and_stable_per_shard() {
        let (tx, rx) = channel();
        let pool = ServicePool::with_worker_ids("t_ids", 3, 8, move |w, n: u64| {
            tx.send((w, n)).unwrap();
        })
        .unwrap();
        for i in 0..24u64 {
            let mut item = i;
            while let Err(SubmitError::Saturated(back)) = pool.try_submit(item) {
                item = back;
                std::thread::yield_now();
            }
        }
        drop(pool);
        let seen: Vec<(usize, u64)> = rx.try_iter().collect();
        assert_eq!(seen.len(), 24);
        assert!(seen.iter().all(|(w, _)| *w < 3), "{seen:?}");
        // Round-robin across 3 live shards must touch more than one.
        let distinct: std::collections::BTreeSet<usize> = seen.iter().map(|(w, _)| *w).collect();
        assert!(distinct.len() > 1, "{distinct:?}");
    }

    #[test]
    fn zero_workers_or_zero_queue_is_an_error() {
        assert!(ServicePool::<u32>::new("t_zero", 0, 4, |_| {}).is_err());
        assert!(ServicePool::<u32>::new("t_zero", 4, 0, |_| {}).is_err());
    }
}
