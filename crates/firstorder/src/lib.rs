//! A first-order analytical CPI model in the spirit of
//! Karkhanis & Smith (ISCA 2004) and Noonburg & Shen (MICRO 1994) —
//! the "theoretical models" of the paper's related work.
//!
//! These models estimate performance as ideal throughput degraded by
//! independent penalty terms for the major miss events:
//!
//! ```text
//! CPI ≈ CPI_base(window, width)
//!     + f_branch · mispredict_rate · (front_depth + resolve)
//!     + il1 misses/instr · L2 latency
//!     + dl1 load misses/instr · L2 latency · serialization
//!     + L2 load misses/instr · memory latency / MLP(window)
//! ```
//!
//! The program statistics (dataflow ILP as a function of window size,
//! per-geometry cache miss counts, branch predictability) are gathered
//! in **one cheap pass over the trace** — no pipeline simulation — and
//! the model is then evaluated in microseconds per configuration.
//!
//! This crate exists as the comparison substrate the paper argues
//! against: such models are fast and insightful, but (quoting §5)
//! "they have not been demonstrated to be accurate across the entire
//! feasible design space." The `related_firstorder` bench harness
//! measures exactly that, against the RBF surrogate.
//!
//! # Examples
//!
//! ```
//! use ppm_firstorder::{FirstOrderModel, ProgramStats};
//! use ppm_sim::{Instr, Op, SimConfig};
//!
//! let trace: Vec<Instr> = (0..20_000)
//!     .map(|i| Instr::alu(Op::IntAlu, 0x1000 + (i % 256) * 4, 1, 0))
//!     .collect();
//! let stats = ProgramStats::collect(trace.iter().copied(), &SimConfig::default());
//! let model = FirstOrderModel::new(stats);
//! let cpi = model.predict(&SimConfig::default());
//! assert!(cpi >= 0.2 && cpi < 4.0);
//! ```

mod model;
mod profile;

pub use model::FirstOrderModel;
pub use profile::ProgramStats;
