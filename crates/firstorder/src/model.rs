//! The analytical CPI composition.

use ppm_sim::{ConfigError, SimConfig};

use crate::ProgramStats;

/// A first-order analytical CPI model: ideal throughput plus
/// independent penalty terms (see the crate docs for the equation).
///
/// # Examples
///
/// ```
/// use ppm_firstorder::{FirstOrderModel, ProgramStats};
/// use ppm_sim::{Instr, Op, SimConfig};
///
/// let trace: Vec<Instr> = (0..10_000)
///     .map(|i| Instr::alu(Op::IntAlu, 0x1000 + (i % 64) * 4, 2, 0))
///     .collect();
/// let model = FirstOrderModel::new(ProgramStats::collect(
///     trace.iter().copied(),
///     &SimConfig::default(),
/// ));
/// // A slower L2 can only raise the predicted CPI.
/// let base = model.predict(&SimConfig::default());
/// let slow = model.predict(&SimConfig::builder().l2_lat(20).build().unwrap());
/// assert!(slow >= base);
/// ```
#[derive(Debug, Clone)]
pub struct FirstOrderModel {
    stats: ProgramStats,
}

impl FirstOrderModel {
    /// Wraps profiled statistics into a model.
    pub fn new(stats: ProgramStats) -> Self {
        FirstOrderModel { stats }
    }

    /// The underlying program statistics.
    pub fn stats(&self) -> &ProgramStats {
        &self.stats
    }

    /// Predicts CPI for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn predict(&self, config: &SimConfig) -> f64 {
        // Documented `# Panics` contract above. lint:allow(panic-path)
        config.validate().expect("valid configuration");
        self.predict_valid(config)
    }

    /// Predicts CPI for a configuration, returning the validation error
    /// instead of panicking — the form a serving layer wants, where an
    /// invalid request must become a 400, never a worker death.
    ///
    /// # Errors
    ///
    /// The [`ConfigError`] from [`SimConfig::validate`].
    pub fn try_predict(&self, config: &SimConfig) -> Result<f64, ConfigError> {
        config.validate()?;
        Ok(self.predict_valid(config))
    }

    fn predict_valid(&self, config: &SimConfig) -> f64 {
        ppm_telemetry::counter("firstorder.predictions").inc();
        let s = &self.stats;

        // Base: dataflow ILP limited by the window and machine width.
        // The effective window is the smaller of the ROB and the
        // issue-queue capacity amplified by its draining rate.
        let effective_window = (config.rob_size as f64)
            .min(config.iq_size() as f64 * 2.0)
            .max(4.0);
        let ipc_window = s.ilp_at(effective_window.round() as usize);
        let ipc_base = ipc_window.min(config.fixed.width as f64);
        let cpi_base = 1.0 / ipc_base;

        // Branches: refill penalty scales with the front-end depth; a
        // constant accounts for resolution (dispatch→execute).
        let resolve = 3.0;
        let cpi_branch =
            s.branch_frac * s.mispredict_rate * (config.front_depth() as f64 + resolve);

        // Instruction fetch: il1 misses served by the L2 (instruction
        // working sets fit every L2 of the space). Partially hidden by
        // the fetch queue: charge a visibility factor.
        let il1_mpi = ProgramStats::nearest(&s.il1_mpi, config.il1_size_kb);
        let cpi_ifetch = 0.7 * il1_mpi * (config.fixed.il1_lat + config.l2_lat) as f64;

        // Data side. L1 misses that hit in the L2 pay the L2 latency,
        // partially overlapped (factor from chaining). Loads escaping
        // the L2 pay DRAM latency divided by the achievable MLP.
        let dl1_mpi = ProgramStats::nearest(&s.dl1_mpi, config.dl1_size_kb);
        let l2_mpi = ProgramStats::nearest(&s.l2_mpi, config.l2_size_kb);
        let l2_hit_mpi = (dl1_mpi - l2_mpi).max(0.0);
        let serial = 0.3 + 0.7 * s.chained_load_frac;
        let cpi_l2 = l2_hit_mpi * config.l2_lat as f64 * serial;

        let mem_lat =
            (config.fixed.mem_lat + config.fixed.bus_per_line) as f64 + config.l2_lat as f64;
        // MLP: limited by the LSQ, the MSHRs, and chain serialization.
        let mlp_structural = (config.lsq_size() as f64 / 4.0)
            .min(config.fixed.mshrs as f64)
            .max(1.0);
        let mlp = 1.0 + (mlp_structural - 1.0) * (1.0 - s.chained_load_frac);
        let cpi_dram = l2_mpi * mem_lat / mlp;

        // Every load pays its L1 latency on the critical path in
        // proportion to chaining.
        let cpi_l1d = s.load_frac * (config.dl1_lat as f64 - 1.0) * s.chained_load_frac;

        cpi_base + cpi_branch + cpi_ifetch + cpi_l2 + cpi_dram + cpi_l1d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_sim::{Processor, SimConfig};
    use ppm_workload::{Benchmark, TraceGenerator};

    fn model(bench: Benchmark) -> FirstOrderModel {
        FirstOrderModel::new(ProgramStats::collect(
            TraceGenerator::new(bench, 1).take(120_000),
            &SimConfig::default(),
        ))
    }

    fn simulate(bench: Benchmark, config: &SimConfig) -> f64 {
        Processor::new(config.clone())
            .run(TraceGenerator::new(bench, 1).take(120_000))
            .cpi()
    }

    #[test]
    fn predictions_are_in_the_simulator_ballpark_at_midrange() {
        for bench in [Benchmark::Crafty, Benchmark::Mcf, Benchmark::Equake] {
            let m = model(bench);
            let config = SimConfig::default();
            let predicted = m.predict(&config);
            let simulated = simulate(bench, &config);
            let ratio = predicted / simulated;
            // First-order models systematically underpredict (no
            // queueing, no cold-start, no window-drain effects); the
            // paper's point is exactly this looseness.
            assert!(
                (0.3..2.5).contains(&ratio),
                "{bench}: first-order {predicted:.2} vs simulated {simulated:.2}"
            );
        }
    }

    #[test]
    fn trends_have_the_right_direction() {
        let m = model(Benchmark::Mcf);
        let base = m.predict(&SimConfig::default());
        let slow_l2 = m.predict(&SimConfig::builder().l2_lat(20).build().unwrap());
        let small_l2 = m.predict(&SimConfig::builder().l2_size_kb(256).build().unwrap());
        let deep = m.predict(&SimConfig::builder().pipe_depth(24).build().unwrap());
        assert!(slow_l2 > base);
        assert!(small_l2 >= base);
        assert!(deep > base);
    }

    #[test]
    fn memory_bound_program_predicted_slower_than_compute_bound() {
        let config = SimConfig::default();
        let mcf = model(Benchmark::Mcf).predict(&config);
        let crafty = model(Benchmark::Crafty).predict(&config);
        assert!(mcf > crafty, "mcf {mcf} should exceed crafty {crafty}");
    }

    #[test]
    fn prediction_is_fast_and_deterministic() {
        let m = model(Benchmark::Twolf);
        let config = SimConfig::default();
        let a = m.predict(&config);
        let b = m.predict(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn try_predict_matches_predict_and_rejects_invalid_configs() {
        let m = model(Benchmark::Twolf);
        let config = SimConfig::default();
        assert_eq!(m.try_predict(&config).unwrap(), m.predict(&config));
        let bad = SimConfig {
            rob_size: 1,
            ..SimConfig::default()
        };
        assert!(m.try_predict(&bad).is_err());
    }

    #[test]
    #[should_panic(expected = "valid configuration")]
    fn invalid_config_panics() {
        let m = model(Benchmark::Twolf);
        let config = SimConfig {
            rob_size: 1,
            ..SimConfig::default()
        };
        m.predict(&config);
    }
}
