//! One-pass program statistics for the analytical model.

use std::collections::BTreeMap;

use ppm_sim::{BranchPredictor, Cache, Instr, Op, SimConfig};

/// The candidate cache geometries of the paper's design space, in KiB.
const IL1_SIZES: [u32; 4] = [8, 16, 32, 64];
const DL1_SIZES: [u32; 4] = [8, 16, 32, 64];
const L2_SIZES: [u32; 6] = [256, 512, 1024, 2048, 4096, 8192];

/// Window sizes at which dataflow ILP is measured; predictions
/// interpolate between them.
const WINDOW_SIZES: [usize; 5] = [16, 32, 64, 128, 256];

/// Program statistics gathered in a single pass over a trace.
///
/// * Dataflow ILP at several window sizes (register dependences only,
///   unit latencies) — the "ideal machine" component.
/// * Miss counts per instruction for every candidate L1I/L1D/L2
///   geometry of the design space (associativities and line size come
///   from the reference [`SimConfig`]).
/// * Branch frequency and misprediction rate under the reference
///   predictor.
/// * The fraction of loads whose value feeds a subsequent load's
///   address chain (limits memory-level parallelism).
#[derive(Debug, Clone)]
pub struct ProgramStats {
    /// Total instructions profiled.
    pub instructions: u64,
    /// Loads per instruction.
    pub load_frac: f64,
    /// Branches per instruction.
    pub branch_frac: f64,
    /// Branch misprediction rate under the reference predictor.
    pub mispredict_rate: f64,
    /// `(window size, dataflow IPC)` pairs, increasing in window size.
    pub ilp_curve: Vec<(usize, f64)>,
    /// il1 size (KiB) → instruction-side line misses per instruction.
    pub il1_mpi: BTreeMap<u32, f64>,
    /// dl1 size (KiB) → load misses per instruction.
    pub dl1_mpi: BTreeMap<u32, f64>,
    /// L2 size (KiB) → load misses per instruction escaping to DRAM
    /// (measured with the matching dl1 filter removed — the L2 sees the
    /// union of L1 misses; we approximate with the 32 KiB L1 filter).
    pub l2_mpi: BTreeMap<u32, f64>,
    /// Fraction of loads that are register-chained to an earlier load.
    pub chained_load_frac: f64,
}

impl ProgramStats {
    /// Profiles a trace. The reference config supplies associativities,
    /// the line size and the predictor geometry; all candidate sizes of
    /// the design space are measured simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn collect(trace: impl Iterator<Item = Instr>, reference: &SimConfig) -> Self {
        let f = &reference.fixed;
        let line = f.line_size;
        let mut il1: Vec<(u32, Cache, u64)> = IL1_SIZES
            .iter()
            .map(|&kb| (kb, Cache::new(kb as u64 * 1024, f.il1_assoc, line), 0u64))
            .collect();
        let mut dl1: Vec<(u32, Cache, u64)> = DL1_SIZES
            .iter()
            .map(|&kb| (kb, Cache::new(kb as u64 * 1024, f.dl1_assoc, line), 0u64))
            .collect();
        // The L2 sees the 32 KiB-L1 miss stream (the mid-range filter).
        let mut l2_filter = Cache::new(32 * 1024, f.dl1_assoc, line);
        let mut l2: Vec<(u32, Cache, u64)> = L2_SIZES
            .iter()
            .map(|&kb| (kb, Cache::new(kb as u64 * 1024, f.l2_assoc, line), 0u64))
            .collect();
        let mut bpred = BranchPredictor::new(f.gshare_entries, f.gshare_history, f.btb_entries);

        // Dataflow scheduling state: completion "time" per recent
        // instruction (ring buffer of the last 256).
        const RING: usize = 256;
        let mut ready_at = [0u64; RING];
        let mut window_depth_acc = vec![(0u64, 0u64); WINDOW_SIZES.len()]; // (chunks, total depth)
        let mut chunk_start_time = vec![0u64; WINDOW_SIZES.len()];
        let mut chunk_max = vec![0u64; WINDOW_SIZES.len()];

        let mut n: u64 = 0;
        let mut loads: u64 = 0;
        let mut branches: u64 = 0;
        let mut chained: u64 = 0;
        let mut last_fetch_line = u64::MAX;
        let mut last_load_ago = u64::MAX;

        for instr in trace {
            // Instruction side: one probe per new line.
            let iline = instr.pc >> line.trailing_zeros();
            if iline != last_fetch_line {
                last_fetch_line = iline;
                for (_, cache, misses) in il1.iter_mut() {
                    if !cache.access(instr.pc) {
                        *misses += 1;
                    }
                }
            }

            // Data side.
            if instr.op == Op::Load {
                loads += 1;
                if (instr.src1_dist as u64) == last_load_ago.saturating_add(1)
                    || instr.src1_dist as u64 == last_load_ago
                {
                    chained += 1;
                }
                last_load_ago = 0;
            } else {
                last_load_ago = last_load_ago.saturating_add(1);
            }
            if instr.op.is_mem() {
                for (_, cache, misses) in dl1.iter_mut() {
                    if !cache.access(instr.mem_addr) && instr.op == Op::Load {
                        *misses += 1;
                    }
                }
                if !l2_filter.access(instr.mem_addr) {
                    for (_, cache, misses) in l2.iter_mut() {
                        if !cache.access(instr.mem_addr) && instr.op == Op::Load {
                            *misses += 1;
                        }
                    }
                }
            }

            // Branches.
            if instr.op == Op::Branch {
                branches += 1;
                bpred.predict_kind(instr.kind, instr.pc, instr.taken, instr.target);
            }

            // Dataflow depth: unit-latency scheduling on register deps.
            let idx = (n as usize) % RING;
            let dep_time = |dist: u32| -> u64 {
                if dist == 0 || dist as u64 > n.min(RING as u64 - 1) {
                    0
                } else {
                    ready_at[((n - dist as u64) as usize) % RING]
                }
            };
            let t = dep_time(instr.src1_dist).max(dep_time(instr.src2_dist)) + 1;
            ready_at[idx] = t;
            for (w, &size) in WINDOW_SIZES.iter().enumerate() {
                chunk_max[w] = chunk_max[w].max(t);
                if (n + 1).is_multiple_of(size as u64) {
                    let depth = chunk_max[w] - chunk_start_time[w];
                    window_depth_acc[w].0 += 1;
                    window_depth_acc[w].1 += depth.max(1);
                    chunk_start_time[w] = chunk_max[w];
                }
            }
            n += 1;
        }
        assert!(n > 0, "cannot profile an empty trace");

        let ilp_curve = WINDOW_SIZES
            .iter()
            .zip(&window_depth_acc)
            .map(|(&size, &(chunks, depth))| {
                let ipc = if chunks == 0 {
                    1.0
                } else {
                    size as f64 / (depth as f64 / chunks as f64)
                };
                (size, ipc)
            })
            .collect();

        let per = |count: u64| count as f64 / n as f64;
        ProgramStats {
            instructions: n,
            load_frac: per(loads),
            branch_frac: per(branches),
            mispredict_rate: bpred.misprediction_rate(),
            ilp_curve,
            il1_mpi: il1.into_iter().map(|(kb, _, m)| (kb, per(m))).collect(),
            dl1_mpi: dl1.into_iter().map(|(kb, _, m)| (kb, per(m))).collect(),
            l2_mpi: l2.into_iter().map(|(kb, _, m)| (kb, per(m))).collect(),
            chained_load_frac: if loads == 0 {
                0.0
            } else {
                chained as f64 / loads as f64
            },
        }
    }

    /// Dataflow IPC at an arbitrary window size (log-linear
    /// interpolation on the measured curve, clamped at its ends).
    pub fn ilp_at(&self, window: usize) -> f64 {
        let curve = &self.ilp_curve;
        if window <= curve[0].0 {
            return curve[0].1;
        }
        if window >= curve[curve.len() - 1].0 {
            return curve[curve.len() - 1].1;
        }
        for pair in curve.windows(2) {
            let (w0, i0) = pair[0];
            let (w1, i1) = pair[1];
            if window <= w1 {
                let t = ((window as f64).ln() - (w0 as f64).ln())
                    / ((w1 as f64).ln() - (w0 as f64).ln());
                return i0 + t * (i1 - i0);
            }
        }
        curve[curve.len() - 1].1
    }

    /// Looks up (or nearest-matches) a per-instruction miss rate table.
    pub(crate) fn nearest(table: &BTreeMap<u32, f64>, kb: u32) -> f64 {
        if let Some(&v) = table.get(&kb) {
            return v;
        }
        // Nearest geometry by log distance.
        let mut best = (f64::INFINITY, 0.0);
        for (&k, &v) in table {
            let d = ((k as f64).ln() - (kb as f64).ln()).abs();
            if d < best.0 {
                best = (d, v);
            }
        }
        best.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_workload::{Benchmark, TraceGenerator};

    fn stats(bench: Benchmark) -> ProgramStats {
        ProgramStats::collect(
            TraceGenerator::new(bench, 1).take(60_000),
            &SimConfig::default(),
        )
    }

    #[test]
    fn ilp_curve_is_monotone_in_window() {
        let s = stats(Benchmark::Equake);
        for pair in s.ilp_curve.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1 - 1e-9,
                "ILP should not fall with window size: {:?}",
                s.ilp_curve
            );
        }
        assert!(s.ilp_at(48) >= s.ilp_at(16) - 1e-9);
    }

    #[test]
    fn miss_rates_fall_with_cache_size() {
        let s = stats(Benchmark::Vortex);
        for sizes in [&s.dl1_mpi, &s.il1_mpi] {
            let small = sizes[&8];
            let big = sizes[&64];
            assert!(big <= small + 1e-12, "bigger cache missing more: {sizes:?}");
        }
        assert!(s.l2_mpi[&8192] <= s.l2_mpi[&256] + 1e-12);
    }

    #[test]
    fn mcf_is_chained_and_memory_heavy() {
        let mcf = stats(Benchmark::Mcf);
        let equake = stats(Benchmark::Equake);
        assert!(
            mcf.chained_load_frac > 0.5,
            "mcf chase fraction {}",
            mcf.chained_load_frac
        );
        assert!(mcf.chained_load_frac > equake.chained_load_frac);
        assert!(mcf.l2_mpi[&1024] > equake.l2_mpi[&1024] * 0.5);
    }

    #[test]
    fn fractions_are_sane() {
        let s = stats(Benchmark::Parser);
        assert!(s.load_frac > 0.1 && s.load_frac < 0.5);
        assert!(s.branch_frac > 0.08 && s.branch_frac < 0.35);
        assert!(s.mispredict_rate > 0.0 && s.mispredict_rate < 0.5);
    }

    #[test]
    fn nearest_lookup_handles_missing_geometry() {
        let mut table = BTreeMap::new();
        table.insert(8u32, 0.1);
        table.insert(64u32, 0.01);
        assert_eq!(ProgramStats::nearest(&table, 8), 0.1);
        assert_eq!(ProgramStats::nearest(&table, 16), 0.1); // closer to 8
        assert_eq!(ProgramStats::nearest(&table, 48), 0.01);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        ProgramStats::collect(std::iter::empty(), &SimConfig::default());
    }
}
