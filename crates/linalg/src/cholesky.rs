//! Cholesky factorization of symmetric positive-definite matrices.

use crate::Matrix;

/// The lower-triangular Cholesky factor `L` of a symmetric
/// positive-definite matrix `A = L Lᵀ`.
///
/// # Examples
///
/// ```
/// use ppm_linalg::{Cholesky, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let chol = Cholesky::new(&a).unwrap();
/// let x = chol.solve(&[8.0, 7.0]);
/// // A x = [8, 7]  =>  x = [1.25, 1.5]
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Returns `None` if the matrix is not (numerically) positive definite.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn new(a: &Matrix) -> Option<Self> {
        assert_eq!(a.rows(), a.cols(), "Cholesky needs a square matrix");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return None;
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Some(Cholesky { l })
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the precomputed factorization.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                s -= self.l[(i, k)] * yk;
            }
            y[i] = s / self.l[(i, i)];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[(k, i)] * xk;
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// The log-determinant of `A`, computed as `2 Σ log Lᵢᵢ`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    #[test]
    fn factor_reconstructs_matrix() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]);
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.factor();
        let re = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((re[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn indefinite_matrix_returns_none() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(Cholesky::new(&a).is_none());
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let chol = Cholesky::new(&Matrix::identity(4)).unwrap();
        assert!(chol.log_det().abs() < 1e-12);
    }

    /// Random SPD matrices built as BᵀB + εI should factor and solve.
    #[test]
    fn random_spd_solve_residual_small() {
        let mut rng = Rng::seed_from_u64(99);
        for n in [1usize, 2, 5, 20] {
            let b_mat = Matrix::from_fn(n + 2, n, |_, _| rng.normal());
            let mut a = b_mat.gram();
            for i in 0..n {
                a[(i, i)] += 1e-6;
            }
            let rhs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
            let x = Cholesky::new(&a).unwrap().solve(&rhs);
            let res = a.matvec(&x);
            for i in 0..n {
                assert!((res[i] - rhs[i]).abs() < 1e-6, "n={n} residual too big");
            }
        }
    }

    /// Random diagonal matrices solve exactly: x_i = b_i / d_i.
    #[test]
    fn diagonal_matrices_solve_exactly() {
        for seed in 0..32u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let n = 1 + (rng.below(7) as usize);
            let d: Vec<f64> = (0..n).map(|_| 0.1 + 9.9 * rng.unit_f64()).collect();
            let a = Matrix::from_fn(n, n, |i, j| if i == j { d[i] } else { 0.0 });
            let b: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
            let x = Cholesky::new(&a).unwrap().solve(&b);
            for i in 0..n {
                assert!((x[i] - b[i] / d[i]).abs() < 1e-10, "seed {seed}");
            }
        }
    }
}
