//! Small dense linear algebra for the surrogate-model fitting pipeline.
//!
//! The RBF-network and linear-regression crates only need least-squares
//! solves with at most a few hundred unknowns, so this crate provides a
//! compact row-major [`Matrix`], a Cholesky factorization for symmetric
//! positive-definite systems, a Householder QR for general least squares,
//! and a ridge-regularized fallback for the near-singular design matrices
//! that appear during greedy subset selection.
//!
//! # Examples
//!
//! Solve an ordinary least-squares problem:
//!
//! ```
//! use ppm_linalg::{lstsq, Matrix};
//!
//! // y = 2 + 3x sampled exactly.
//! let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
//! let y = vec![2.0, 5.0, 8.0];
//! let beta = lstsq(&a, &y).unwrap();
//! assert!((beta[0] - 2.0).abs() < 1e-10);
//! assert!((beta[1] - 3.0).abs() < 1e-10);
//! ```

mod cholesky;
mod matrix;
mod qr;
mod solve;

pub use cholesky::Cholesky;
pub use matrix::Matrix;
pub use qr::Qr;
pub use solve::{lstsq, lstsq_ridge, LinalgError};

/// Computes the dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Computes the Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unequal")]
    fn dot_unequal_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
