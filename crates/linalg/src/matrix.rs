//! A row-major dense matrix of `f64`.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use ppm_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or if `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has inconsistent length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows).map(|i| crate::dot(self.row(i), x)).collect()
    }

    /// Matrix–matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                // Exact-zero sparsity skip, not a tolerance check: only
                // a true 0.0 contributes nothing. lint:allow(float-eq)
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Computes the Gram matrix `AᵀA` (symmetric, `cols x cols`).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let r = self.row(i);
            for a in 0..self.cols {
                let ra = r[a];
                // Exact-zero sparsity skip as above. lint:allow(float-eq)
                if ra == 0.0 {
                    continue;
                }
                for b in a..self.cols {
                    g[(a, b)] += ra * r[b];
                }
            }
        }
        for a in 0..self.cols {
            for b in 0..a {
                g[(a, b)] = g[(b, a)];
            }
        }
        g
    }

    /// Computes `Aᵀ y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.rows()`.
    pub fn t_matvec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "t_matvec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &yi) in y.iter().enumerate() {
            let r = self.row(i);
            for j in 0..self.cols {
                out[j] += r[j] * yi;
            }
        }
        out
    }

    /// Builds a new matrix from a subset of this matrix's columns.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        Matrix::from_fn(self.rows, indices.len(), |i, j| self[(i, indices[j])])
    }

    /// Maximum absolute entry (zero for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>10.4}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    #[test]
    fn identity_matvec_is_identity() {
        let m = Matrix::identity(3);
        assert_eq!(m.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn select_cols_picks_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let s = a.select_cols(&[2, 0]);
        assert_eq!(s, Matrix::from_rows(&[&[3.0, 1.0], &[6.0, 4.0]]));
    }

    #[test]
    fn t_matvec_matches_transpose_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = [1.0, -1.0, 2.0];
        assert_eq!(a.t_matvec(&y), a.transpose().matvec(&y));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_wrong_len_panics() {
        Matrix::identity(2).matvec(&[1.0]);
    }

    #[test]
    fn display_is_nonempty() {
        let s = format!("{}", Matrix::identity(2));
        assert!(s.contains("1.0000"));
    }

    fn random_matrix(rng: &mut Rng, max_dim: usize) -> Matrix {
        let r = 1 + rng.below(max_dim as u64) as usize;
        let c = 1 + rng.below(max_dim as u64) as usize;
        let data: Vec<f64> = (0..r * c).map(|_| 200.0 * rng.unit_f64() - 100.0).collect();
        Matrix::from_vec(r, c, data)
    }

    #[test]
    fn random_transpose_involution() {
        let mut rng = Rng::seed_from_u64(41);
        for _ in 0..64 {
            let m = random_matrix(&mut rng, 6);
            assert_eq!(m.transpose().transpose(), m);
        }
    }

    #[test]
    fn random_gram_is_symmetric_psd_diagonal() {
        let mut rng = Rng::seed_from_u64(42);
        for _ in 0..64 {
            let m = random_matrix(&mut rng, 5);
            let g = m.gram();
            for i in 0..g.rows() {
                assert!(g[(i, i)] >= -1e-9);
                for j in 0..g.cols() {
                    assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn random_identity_matmul() {
        let mut rng = Rng::seed_from_u64(43);
        for _ in 0..64 {
            let m = random_matrix(&mut rng, 5);
            let id = Matrix::identity(m.rows());
            assert_eq!(id.matmul(&m), m);
        }
    }
}
