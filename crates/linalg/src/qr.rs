//! Householder QR factorization for least-squares problems.

use crate::Matrix;

/// A Householder QR factorization of a tall (or square) matrix `A = Q R`.
///
/// `Q` is stored implicitly as a sequence of Householder reflectors; only
/// the operations needed for least squares (`Qᵀ b` and back substitution
/// with `R`) are exposed.
///
/// # Examples
///
/// ```
/// use ppm_linalg::{Matrix, Qr};
///
/// let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
/// let qr = Qr::new(&a);
/// let x = qr.solve(&[6.0, 9.0, 12.0]).unwrap(); // y = 3 + 3x
/// assert!((x[0] - 3.0).abs() < 1e-10);
/// assert!((x[1] - 3.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factorization: R in the upper triangle, reflector vectors
    /// below the diagonal.
    packed: Matrix,
    /// Scalar coefficients of the Householder reflectors.
    tau: Vec<f64>,
}

impl Qr {
    /// Factorizes `a` (requires `rows >= cols` for a meaningful least
    /// squares solve, but any shape factorizes).
    pub fn new(a: &Matrix) -> Self {
        let m = a.rows();
        let n = a.cols();
        let mut r = a.clone();
        let k = m.min(n);
        let mut tau = vec![0.0; k];
        for j in 0..k {
            // Build the Householder reflector for column j below row j.
            let mut norm = 0.0;
            for i in j..m {
                norm += r[(i, j)] * r[(i, j)];
            }
            let norm = norm.sqrt();
            // A Householder column is skipped only when identically
            // zero; near-zero must still reflect. lint:allow(float-eq)
            if norm == 0.0 {
                tau[j] = 0.0;
                continue;
            }
            let alpha = if r[(j, j)] >= 0.0 { -norm } else { norm };
            let v0 = r[(j, j)] - alpha;
            // v = [v0, r[j+1..m, j]]; normalize so v[0] = 1.
            let mut vnorm2 = v0 * v0;
            for i in (j + 1)..m {
                vnorm2 += r[(i, j)] * r[(i, j)];
            }
            // Identically-zero tail as above. lint:allow(float-eq)
            if vnorm2 == 0.0 {
                tau[j] = 0.0;
                continue;
            }
            tau[j] = 2.0 * v0 * v0 / vnorm2;
            // Store normalized reflector below the diagonal.
            for i in (j + 1)..m {
                r[(i, j)] /= v0;
            }
            r[(j, j)] = alpha;
            // Apply the reflector to the remaining columns.
            for c in (j + 1)..n {
                let mut s = r[(j, c)];
                for i in (j + 1)..m {
                    s += r[(i, j)] * r[(i, c)];
                }
                s *= tau[j];
                r[(j, c)] -= s;
                for i in (j + 1)..m {
                    let vij = r[(i, j)];
                    r[(i, c)] -= s * vij;
                }
            }
        }
        Qr { packed: r, tau }
    }

    /// Applies `Qᵀ` to a vector.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not equal the factored row count.
    pub fn qt_mul(&self, b: &[f64]) -> Vec<f64> {
        let m = self.packed.rows();
        assert_eq!(b.len(), m, "rhs length mismatch");
        let mut y = b.to_vec();
        for j in 0..self.tau.len() {
            // tau is set to exactly 0.0 as the "no reflector" sentinel
            // during factorization. lint:allow(float-eq)
            if self.tau[j] == 0.0 {
                continue;
            }
            let mut s = y[j];
            for (i, &yi) in y.iter().enumerate().take(m).skip(j + 1) {
                s += self.packed[(i, j)] * yi;
            }
            s *= self.tau[j];
            y[j] -= s;
            for (i, yi) in y.iter_mut().enumerate().take(m).skip(j + 1) {
                *yi -= s * self.packed[(i, j)];
            }
        }
        y
    }

    /// The `(i, j)` entry of `R` for `i <= j` (upper triangle).
    fn r(&self, i: usize, j: usize) -> f64 {
        self.packed[(i, j)]
    }

    /// An estimate of the reciprocal condition of `R`'s diagonal:
    /// `min |Rᵢᵢ| / max |Rᵢᵢ|`.
    pub fn diag_rcond(&self) -> f64 {
        let n = self.packed.cols().min(self.packed.rows());
        if n == 0 {
            return 0.0;
        }
        let mut lo = f64::INFINITY;
        let mut hi = 0.0_f64;
        for i in 0..n {
            let d = self.r(i, i).abs();
            lo = lo.min(d);
            hi = hi.max(d);
        }
        // hi is a max of absolute values; only exact zero (an all-zero
        // R) must avoid the division. lint:allow(float-eq)
        if hi == 0.0 {
            0.0
        } else {
            lo / hi
        }
    }

    /// Solves the least-squares problem `min ||A x - b||²`.
    ///
    /// Returns `None` if `R` is (numerically) rank deficient.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not equal the factored row count.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        let n = self.packed.cols();
        let m = self.packed.rows();
        if m < n {
            return None; // underdetermined; not needed in this workspace
        }
        let y = self.qt_mul(b);
        let scale = self.packed.max_abs().max(1.0);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let d = self.r(i, i);
            if d.abs() <= 1e-12 * scale {
                return None;
            }
            let mut s = y[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.r(i, j) * xj;
            }
            x[i] = s / d;
        }
        Some(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    #[test]
    fn exact_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = Qr::new(&a).solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn overdetermined_least_squares_matches_normal_equations() {
        let mut rng = Rng::seed_from_u64(4);
        let a = Matrix::from_fn(30, 5, |_, _| rng.normal());
        let b: Vec<f64> = (0..30).map(|_| rng.normal()).collect();
        let x = Qr::new(&a).solve(&b).unwrap();
        // Normal equations residual: Aᵀ(Ax - b) = 0.
        let ax = a.matvec(&x);
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let grad = a.t_matvec(&resid);
        for g in grad {
            assert!(g.abs() < 1e-8, "gradient {g} not ~0");
        }
    }

    #[test]
    fn rank_deficient_returns_none() {
        // Second column is 2x the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert!(Qr::new(&a).solve(&[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn zero_column_returns_none() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0], &[3.0, 0.0]]);
        assert!(Qr::new(&a).solve(&[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn qt_preserves_norm() {
        let mut rng = Rng::seed_from_u64(8);
        let a = Matrix::from_fn(10, 4, |_, _| rng.normal());
        let qr = Qr::new(&a);
        let b: Vec<f64> = (0..10).map(|_| rng.normal()).collect();
        let y = qr.qt_mul(&b);
        assert!(
            (crate::norm2(&b) - crate::norm2(&y)).abs() < 1e-9,
            "orthogonal transform changed the norm"
        );
    }

    #[test]
    fn diag_rcond_identity_is_one() {
        assert!((Qr::new(&Matrix::identity(5)).diag_rcond() - 1.0).abs() < 1e-12);
    }
}
