//! High-level least-squares entry points used by the model-fitting crates.

use std::error::Error;
use std::fmt;

use crate::{Cholesky, Matrix, Qr};

/// Errors reported by the linear-algebra solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// The system is singular or numerically rank deficient and no
    /// regularization was requested.
    RankDeficient,
    /// Dimensions of the inputs are inconsistent.
    DimensionMismatch {
        /// Rows of the design matrix.
        rows: usize,
        /// Length of the response vector.
        rhs: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::RankDeficient => write!(f, "matrix is numerically rank deficient"),
            LinalgError::DimensionMismatch { rows, rhs } => {
                write!(f, "design matrix has {rows} rows but rhs has {rhs} entries")
            }
        }
    }
}

impl Error for LinalgError {}

/// Solves the ordinary least-squares problem `min ||A x - b||²` via QR.
///
/// # Errors
///
/// Returns [`LinalgError::RankDeficient`] when `A` has (numerically)
/// dependent columns, and [`LinalgError::DimensionMismatch`] when `b` does
/// not match `A`'s row count.
///
/// # Examples
///
/// ```
/// use ppm_linalg::{lstsq, Matrix};
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
/// let x = lstsq(&a, &[1.0, 2.0, 3.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-10);
/// # Ok::<(), ppm_linalg::LinalgError>(())
/// ```
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            rows: a.rows(),
            rhs: b.len(),
        });
    }
    // Feeds the linalg.lstsq_us histogram directly: a telemetry span
    // here would flood the flight recorder's span tree on this hot path
    // and perturb the sentry baselines. lint:allow(wall-clock)
    let t0 = std::time::Instant::now();
    let result = Qr::new(a).solve(b).ok_or(LinalgError::RankDeficient);
    ppm_telemetry::counter("linalg.lstsq_solves").inc();
    ppm_telemetry::histogram("linalg.lstsq_us").record(t0.elapsed().as_micros() as u64);
    result
}

/// Solves the ridge-regularized least-squares problem
/// `min ||A x - b||² + λ ||x||²` via the normal equations and Cholesky.
///
/// With `λ > 0` the system is always positive definite, so this never
/// fails for valid dimensions; it is the fallback the RBF subset-selection
/// search uses when a candidate center set is degenerate.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] when `b` does not match
/// `A`'s row count, or [`LinalgError::RankDeficient`] if `λ <= 0` left the
/// normal equations singular.
///
/// # Examples
///
/// ```
/// use ppm_linalg::{lstsq_ridge, Matrix};
///
/// // Duplicate columns are fine with ridge.
/// let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
/// let x = lstsq_ridge(&a, &[1.0, 2.0], 1e-6)?;
/// assert!((x[0] - x[1]).abs() < 1e-6); // symmetry between the twins
/// # Ok::<(), ppm_linalg::LinalgError>(())
/// ```
pub fn lstsq_ridge(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            rows: a.rows(),
            rhs: b.len(),
        });
    }
    let mut g = a.gram();
    // Scale the ridge by the Gram diagonal so it is unit-independent.
    let scale = (0..g.rows())
        .map(|i| g[(i, i)])
        .fold(0.0_f64, f64::max)
        .max(1.0);
    for i in 0..g.rows() {
        g[(i, i)] += lambda * scale;
    }
    let rhs = a.t_matvec(b);
    // Same hot-path histogram timing as lstsq. lint:allow(wall-clock)
    let t0 = std::time::Instant::now();
    let result = Cholesky::new(&g)
        .map(|c| c.solve(&rhs))
        .ok_or(LinalgError::RankDeficient);
    ppm_telemetry::counter("linalg.ridge_solves").inc();
    ppm_telemetry::histogram("linalg.ridge_us").record(t0.elapsed().as_micros() as u64);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    #[test]
    fn lstsq_and_ridge_agree_on_well_posed_problems() {
        let mut rng = Rng::seed_from_u64(21);
        let a = Matrix::from_fn(40, 6, |_, _| rng.normal());
        let b: Vec<f64> = (0..40).map(|_| rng.normal()).collect();
        let x1 = lstsq(&a, &b).unwrap();
        let x2 = lstsq_ridge(&a, &b, 1e-12).unwrap();
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-5, "{p} vs {q}");
        }
    }

    #[test]
    fn ridge_handles_duplicate_columns() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let b = [2.0, 4.0, 6.0];
        assert_eq!(lstsq(&a, &b), Err(LinalgError::RankDeficient));
        let x = lstsq_ridge(&a, &b, 1e-9).unwrap();
        let fit = a.matvec(&x);
        for (f, t) in fit.iter().zip(&b) {
            assert!((f - t).abs() < 1e-3);
        }
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = Matrix::identity(2);
        assert_eq!(
            lstsq(&a, &[1.0]),
            Err(LinalgError::DimensionMismatch { rows: 2, rhs: 1 })
        );
        assert_eq!(
            lstsq_ridge(&a, &[1.0], 1e-6),
            Err(LinalgError::DimensionMismatch { rows: 2, rhs: 1 })
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = LinalgError::DimensionMismatch { rows: 3, rhs: 2 };
        assert!(e.to_string().contains("3 rows"));
        assert!(LinalgError::RankDeficient.to_string().contains("rank"));
    }
}
