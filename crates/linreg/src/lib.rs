//! The linear-regression baseline model (paper §4.2).
//!
//! Joseph et al. (HPCA 2006) model performance as a linear combination
//! of microarchitectural parameters and their pairwise interactions.
//! This crate reproduces that baseline for the comparison in the paper's
//! Figure 7: a least-squares fit of
//!
//! ```text
//! y = β₀ + Σₖ βₖ xₖ + Σ_{a<b} β_{ab} xₐ x_b
//! ```
//!
//! followed by AIC-based backward elimination of insignificant terms.
//!
//! # Examples
//!
//! ```
//! use ppm_regtree::Dataset;
//! use ppm_linreg::LinearTrainer;
//!
//! // y = 1 + 2·x0 with an inert second input.
//! let pts: Vec<Vec<f64>> = (0..20)
//!     .map(|i| vec![i as f64 / 19.0, (i % 5) as f64 / 4.0])
//!     .collect();
//! let y: Vec<f64> = pts.iter().map(|p| 1.0 + 2.0 * p[0]).collect();
//! let data = Dataset::new(pts, y)?;
//! let model = LinearTrainer::default().fit(&data).unwrap();
//! assert!((model.predict(&[0.5, 0.5]) - 2.0).abs() < 1e-6);
//! # Ok::<(), ppm_regtree::DatasetError>(())
//! ```

mod model;
mod terms;

pub use model::{LinearModel, LinearTrainer, LinregError};
pub use terms::Term;
