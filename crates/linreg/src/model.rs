//! Least-squares fitting and AIC backward elimination.

use std::error::Error;
use std::fmt;

use ppm_linalg::{lstsq, lstsq_ridge, Matrix};
use ppm_regtree::Dataset;

use crate::Term;

/// Errors from linear-model fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinregError {
    /// Fewer data points than model terms; the initial fit is
    /// underdetermined.
    TooFewPoints {
        /// Points available.
        points: usize,
        /// Terms requested.
        terms: usize,
    },
    /// The design matrix was numerically singular even with ridge.
    Singular,
}

impl fmt::Display for LinregError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinregError::TooFewPoints { points, terms } => {
                write!(f, "{points} points cannot identify {terms} terms")
            }
            LinregError::Singular => write!(f, "design matrix is singular"),
        }
    }
}

impl Error for LinregError {}

/// A fitted linear model: a set of terms with coefficients.
///
/// Constructed by [`LinearTrainer::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    terms: Vec<Term>,
    coefficients: Vec<f64>,
    sse: f64,
    aic: f64,
}

impl LinearModel {
    /// The retained terms.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// The coefficients, aligned with [`LinearModel::terms`].
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Residual sum of squares on the training sample.
    pub fn sse(&self) -> f64 {
        self.sse
    }

    /// AIC of the fitted model.
    pub fn aic(&self) -> f64 {
        self.aic
    }

    /// Number of retained terms (including the intercept).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Predicts the response at a point.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the largest parameter index used by
    /// a retained term.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.terms
            .iter()
            .zip(&self.coefficients)
            .map(|(t, &c)| c * t.eval(x))
            .sum()
    }

    /// Predicts at many points.
    pub fn predict_many(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// Fits linear models with optional interactions and AIC backward
/// elimination (paper §4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearTrainer {
    /// Include all two-factor interactions (the paper's setting).
    pub interactions: bool,
    /// Run AIC-based backward elimination after the initial full fit.
    pub eliminate: bool,
}

impl Default for LinearTrainer {
    fn default() -> Self {
        LinearTrainer {
            interactions: true,
            eliminate: true,
        }
    }
}

impl LinearTrainer {
    /// Fits the model to the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`LinregError::TooFewPoints`] if the sample cannot
    /// identify the full term set, or [`LinregError::Singular`] if the
    /// design matrix is degenerate beyond repair.
    pub fn fit(&self, data: &Dataset) -> Result<LinearModel, LinregError> {
        ppm_telemetry::counter("linreg.fits").inc();
        let mut terms = Term::full_set(data.dim(), self.interactions);
        if data.len() <= terms.len() {
            // The paper notes sample sizes must exceed the term count
            // ("main effects and all two-parameter interactions only").
            // Drop interactions if they do not fit; fail if even main
            // effects do not.
            if self.interactions && data.len() > data.dim() + 1 {
                terms = Term::full_set(data.dim(), false);
            } else {
                return Err(LinregError::TooFewPoints {
                    points: data.len(),
                    terms: terms.len(),
                });
            }
        }
        let mut current = fit_terms(data, &terms)?;
        if !self.eliminate {
            return Ok(current);
        }
        // Backward elimination: repeatedly drop the term whose removal
        // improves (lowers) AIC the most; keep the intercept.
        loop {
            let mut best: Option<LinearModel> = None;
            for (i, t) in current.terms.iter().enumerate() {
                if *t == Term::Intercept {
                    continue;
                }
                let mut reduced = current.terms.clone();
                reduced.remove(i);
                if let Ok(m) = fit_terms(data, &reduced) {
                    if m.aic < current.aic && best.as_ref().is_none_or(|b| m.aic < b.aic) {
                        best = Some(m);
                    }
                }
            }
            match best {
                Some(m) => current = m,
                None => break,
            }
        }
        Ok(current)
    }
}

fn fit_terms(data: &Dataset, terms: &[Term]) -> Result<LinearModel, LinregError> {
    let x = Matrix::from_fn(data.len(), terms.len(), |i, j| terms[j].eval(data.point(i)));
    let coef = match lstsq(&x, data.y()) {
        Ok(c) => c,
        Err(_) => lstsq_ridge(&x, data.y(), 1e-9).map_err(|_| LinregError::Singular)?,
    };
    let fitted = x.matvec(&coef);
    let sse: f64 = fitted
        .iter()
        .zip(data.y())
        .map(|(f, t)| {
            let d = f - t;
            d * d
        })
        .sum();
    let p = data.len() as f64;
    let m = terms.len() as f64;
    let aic = p * (sse.max(0.0) / p).max(1e-12).ln() + 2.0 * m;
    Ok(LinearModel {
        terms: terms.to_vec(),
        coefficients: coef,
        sse,
        aic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    fn make_data(n: usize, f: impl Fn(&[f64]) -> f64) -> Dataset {
        let mut rng = Rng::seed_from_u64(55);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.unit_f64(), rng.unit_f64(), rng.unit_f64()])
            .collect();
        let y: Vec<f64> = pts.iter().map(|p| f(p)).collect();
        Dataset::new(pts, y).unwrap()
    }

    #[test]
    fn recovers_exact_linear_function() {
        let data = make_data(40, |p| 1.0 + 2.0 * p[0] - 3.0 * p[2]);
        let model = LinearTrainer::default().fit(&data).unwrap();
        let x = [0.3, 0.9, 0.6];
        assert!((model.predict(&x) - (1.0 + 0.6 - 1.8)).abs() < 1e-6);
    }

    #[test]
    fn recovers_interaction() {
        let data = make_data(60, |p| 2.0 + 4.0 * p[0] * p[1]);
        let model = LinearTrainer::default().fit(&data).unwrap();
        assert!(model.terms().contains(&Term::Interaction(0, 1)));
        let x = [0.5, 0.5, 0.1];
        assert!((model.predict(&x) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn elimination_drops_inert_terms() {
        let data = make_data(80, |p| 1.0 + 5.0 * p[0]);
        let full = LinearTrainer {
            eliminate: false,
            ..LinearTrainer::default()
        }
        .fit(&data)
        .unwrap();
        let pruned = LinearTrainer::default().fit(&data).unwrap();
        assert!(pruned.num_terms() < full.num_terms());
        assert!(pruned.terms().contains(&Term::Main(0)));
        assert!(pruned.terms().contains(&Term::Intercept));
    }

    #[test]
    fn cannot_fit_quadratic_better_than_linear_band() {
        // A strongly curved function: linear + interactions leave a big
        // residual, which is the whole point of the paper's comparison.
        let data = make_data(60, |p| (6.0 * p[0]).sin());
        let model = LinearTrainer::default().fit(&data).unwrap();
        let mean: f64 = data.y().iter().sum::<f64>() / data.len() as f64;
        let var: f64 = data.y().iter().map(|v| (v - mean) * (v - mean)).sum();
        assert!(model.sse() > 0.1 * var, "linear model fit sine too well");
    }

    #[test]
    fn interactions_fall_back_when_sample_is_small() {
        // 3 dims → full set is 1+3+3=7 terms; 6 points force main-only.
        let data = make_data(6, |p| 1.0 + p[0]);
        let model = LinearTrainer::default().fit(&data).unwrap();
        assert!(model
            .terms()
            .iter()
            .all(|t| !matches!(t, Term::Interaction(_, _))));
    }

    #[test]
    fn too_few_points_errors() {
        let data = make_data(3, |p| p[0]);
        let err = LinearTrainer::default().fit(&data).unwrap_err();
        assert!(matches!(err, LinregError::TooFewPoints { .. }));
        assert!(err.to_string().contains("cannot identify"));
    }

    #[test]
    fn predict_many_matches_predict() {
        let data = make_data(30, |p| p[0] + p[1]);
        let model = LinearTrainer::default().fit(&data).unwrap();
        let xs = vec![vec![0.1, 0.2, 0.3], vec![0.9, 0.8, 0.7]];
        let many = model.predict_many(&xs);
        for (x, &v) in xs.iter().zip(&many) {
            assert_eq!(model.predict(x), v);
        }
    }
}
