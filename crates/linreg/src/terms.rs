//! Model terms: intercept, main effects and pairwise interactions.

use std::fmt;

/// One term of a linear model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// The constant term.
    Intercept,
    /// A main effect of parameter `k`.
    Main(usize),
    /// A two-factor interaction `x_a · x_b` with `a < b`.
    Interaction(usize, usize),
}

impl Term {
    /// Evaluates the term at a point.
    ///
    /// # Panics
    ///
    /// Panics if a referenced parameter index is out of bounds.
    pub fn eval(&self, x: &[f64]) -> f64 {
        match *self {
            Term::Intercept => 1.0,
            Term::Main(k) => x[k],
            Term::Interaction(a, b) => x[a] * x[b],
        }
    }

    /// Enumerates the full candidate set for `dim` parameters:
    /// intercept, all main effects, and (optionally) all two-factor
    /// interactions.
    pub fn full_set(dim: usize, interactions: bool) -> Vec<Term> {
        let mut terms = vec![Term::Intercept];
        terms.extend((0..dim).map(Term::Main));
        if interactions {
            for a in 0..dim {
                for b in (a + 1)..dim {
                    terms.push(Term::Interaction(a, b));
                }
            }
        }
        terms
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Term::Intercept => write!(f, "1"),
            Term::Main(k) => write!(f, "x{k}"),
            Term::Interaction(a, b) => write!(f, "x{a}*x{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_definition() {
        let x = [2.0, 3.0, 5.0];
        assert_eq!(Term::Intercept.eval(&x), 1.0);
        assert_eq!(Term::Main(2).eval(&x), 5.0);
        assert_eq!(Term::Interaction(0, 1).eval(&x), 6.0);
    }

    #[test]
    fn full_set_sizes() {
        // 9 parameters: 1 + 9 + 36 = 46 terms (exactly the paper's model).
        assert_eq!(Term::full_set(9, true).len(), 46);
        assert_eq!(Term::full_set(9, false).len(), 10);
    }

    #[test]
    fn full_set_has_unique_terms() {
        let terms = Term::full_set(6, true);
        let set: std::collections::HashSet<_> = terms.iter().collect();
        assert_eq!(set.len(), terms.len());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::Intercept.to_string(), "1");
        assert_eq!(Term::Main(3).to_string(), "x3");
        assert_eq!(Term::Interaction(1, 4).to_string(), "x1*x4");
    }
}
