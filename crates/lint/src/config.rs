//! The `scripts/lint.conf` allowlist.
//!
//! A violation can be suppressed two ways:
//!
//! 1. **Inline**, with a `lint:allow(<rule>)` comment on the violating
//!    line or the line directly above it, stating *why* the pattern is
//!    acceptable there. This is the preferred form — the justification
//!    lives next to the code.
//! 2. **Centrally**, with an `allow <rule> <substring>` entry in the
//!    config file. A diagnostic is suppressed when its source line
//!    contains the fixed substring. This form exists for call sites
//!    where an inline comment would be noise (e.g. a pattern repeated
//!    at several generated sites) and for migrating historical
//!    allowlists.
//!
//! File format, line oriented:
//!
//! ```text
//! # comment
//! allow <rule-name> <fixed substring, verbatim to end of line>
//! ```

use std::fmt;
use std::path::{Path, PathBuf};

use crate::rules;

/// One `allow` entry from the config file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule the entry suppresses.
    pub rule: String,
    /// Fixed substring matched against the violating source line.
    pub pattern: String,
}

/// Parsed allowlist configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// All `allow` entries, in file order.
    pub entries: Vec<AllowEntry>,
}

/// Errors from loading a config file.
#[derive(Debug)]
#[non_exhaustive]
pub enum ConfigError {
    /// The file could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying failure.
        error: std::io::Error,
    },
    /// A line did not parse.
    Parse {
        /// The offending path.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Io { path, error } => {
                write!(f, "cannot read lint config {}: {error}", path.display())
            }
            ConfigError::Parse {
                path,
                line,
                message,
            } => write!(f, "{}:{line}: {message}", path.display()),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Io { error, .. } => Some(error),
            ConfigError::Parse { .. } => None,
        }
    }
}

impl Config {
    /// An empty allowlist (nothing suppressed).
    pub fn empty() -> Self {
        Config::default()
    }

    /// Parses a config file from disk.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Io`] when the file cannot be read and
    /// [`ConfigError::Parse`] on a malformed or unknown-rule entry
    /// (typos in rule names must fail loudly, or the entry would
    /// silently suppress nothing).
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let text = std::fs::read_to_string(path).map_err(|error| ConfigError::Io {
            path: path.to_path_buf(),
            error,
        })?;
        Self::parse(&text).map_err(|(line, message)| ConfigError::Parse {
            path: path.to_path_buf(),
            line,
            message,
        })
    }

    /// Parses config text; errors carry `(line, message)`.
    ///
    /// # Errors
    ///
    /// On a malformed line or an unknown rule name.
    pub fn parse(text: &str) -> Result<Self, (usize, String)> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some(rest) = line.strip_prefix("allow ") else {
                return Err((
                    idx + 1,
                    format!("expected `allow <rule> <substring>`, got {line:?}"),
                ));
            };
            let Some((rule, pattern)) = rest.trim_start().split_once(' ') else {
                return Err((idx + 1, format!("allow entry without a pattern: {line:?}")));
            };
            if !rules::is_known_rule(rule) {
                // The full valid set — lint and analyze rules — so a
                // typo'd entry tells the user every name it could have
                // meant, not just the offender.
                return Err((
                    idx + 1,
                    format!(
                        "unknown rule {rule:?} (known: {})",
                        rules::all_rule_names().join(", ")
                    ),
                ));
            }
            let pattern = pattern.trim();
            if pattern.is_empty() {
                return Err((idx + 1, format!("allow entry with empty pattern: {line:?}")));
            }
            entries.push(AllowEntry {
                rule: rule.to_string(),
                pattern: pattern.to_string(),
            });
        }
        Ok(Config { entries })
    }

    /// True when an entry suppresses `rule` on a line with this text.
    pub fn allows(&self, rule: &str, source_line: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == rule && source_line.contains(&e.pattern))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_skips_comments() {
        let conf = Config::parse(
            "# heading\n\nallow panic-path .expect(\"weights\")\nallow wall-clock Instant::now\n",
        )
        .expect("valid config");
        assert_eq!(conf.entries.len(), 2);
        assert!(conf.allows("panic-path", "let w = m.expect(\"weights\");"));
        assert!(!conf.allows("panic-path", "let w = m.expect(\"other\");"));
        assert!(!conf.allows("float-eq", "let w = m.expect(\"weights\");"));
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let err = Config::parse("allow not-a-rule x\n").expect_err("bad rule");
        assert!(err.1.contains("unknown rule"), "{}", err.1);
    }

    #[test]
    fn unknown_rule_error_lists_every_valid_name() {
        let err = Config::parse("allow panic-paths x\n").expect_err("bad rule");
        for name in rules::all_rule_names() {
            assert!(err.1.contains(name), "missing {name:?} in: {}", err.1);
        }
    }

    #[test]
    fn analyze_rules_are_accepted_in_the_shared_conf() {
        let conf = Config::parse("allow lock-order shard.lock()\nallow exit-code 42\n")
            .expect("analyze rules are valid in the shared allowlist");
        assert_eq!(conf.entries.len(), 2);
        assert!(conf.allows("lock-order", "let q = shard.lock();"));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Config::parse("deny panic-path x\n").is_err());
        assert!(Config::parse("allow panic-path\n").is_err());
        assert!(Config::parse("allow panic-path   \n").is_err());
    }

    #[test]
    fn empty_config_allows_nothing() {
        assert!(!Config::empty().allows("panic-path", ".unwrap()"));
    }
}
