//! A hand-written Rust lexer, just deep enough for linting.
//!
//! The grep gate this crate replaces could not tell a `panic!` in code
//! from one in a doc comment or a string literal. This lexer can: it
//! produces a flat token stream in which comments, string/char
//! literals, numbers, identifiers, and punctuation are distinct token
//! kinds, so rules match *code* and nothing else. It understands the
//! Rust constructs that defeat line-oriented tools:
//!
//! * line comments (`//`, `///`, `//!`) and block comments with
//!   arbitrary nesting (`/* /* */ */`),
//! * cooked strings with escapes, raw strings `r"…"` / `r#"…"#` with
//!   any number of hashes, byte and C variants (`b"…"`, `br#"…"#`,
//!   `c"…"`, `cr#"…"#`), and raw identifiers `r#type`,
//! * char literals vs lifetimes (`'a'` vs `'a`),
//! * numeric literals with a float/integer distinction (`1.5`, `1e3`,
//!   and `1.` are floats; `0xff`, `7usize`, and `0..n` are not).
//!
//! It is *not* a parser: malformed input never panics, the lexer just
//! degrades to best-effort tokens (an unterminated literal runs to end
//! of file). Positions are 1-based lines and 1-based byte columns.

/// What a token is, for rule matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers).
    Ident,
    /// A numeric literal; `is_float` distinguishes `1.5`/`1e3` from
    /// `17`/`0xff`.
    Number {
        /// True when the literal has a fractional part or exponent.
        is_float: bool,
    },
    /// A cooked string or byte/C string literal (`"…"`, `b"…"`, `c"…"`).
    Str,
    /// A raw string literal (`r"…"`, `r#"…"#`, `br"…"`, `cr"…"`).
    RawStr,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`) or loop label.
    Lifetime,
    /// A `//` comment, including doc comments.
    LineComment,
    /// A `/* … */` comment (nesting handled).
    BlockComment,
    /// A single punctuation character (`==` is two `Punct('=')` tokens
    /// at adjacent columns).
    Punct(char),
}

/// One lexed token with its source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token's source text, comment/quote delimiters included.
    pub text: &'a str,
    /// 1-based source line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte.
    pub col: u32,
}

impl Token<'_> {
    /// True for comment tokens (which rules skip when matching code).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.as_bytes().get(self.pos + ahead).copied()
    }

    /// Advances by `n` bytes, keeping line/column bookkeeping.
    fn bump(&mut self, n: usize) {
        let end = (self.pos + n).min(self.src.len());
        for &b in &self.src.as_bytes()[self.pos..end] {
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        self.pos = end;
    }

    /// Advances past one full UTF-8 code point (for non-ASCII bytes
    /// outside literals, so slices stay on char boundaries).
    fn bump_char(&mut self) {
        let n = self.src[self.pos..]
            .chars()
            .next()
            .map_or(1, char::len_utf8);
        self.bump(n);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenizes Rust source. Never fails: unterminated constructs extend
/// to end of input.
pub fn lex(source: &str) -> Vec<Token<'_>> {
    let mut cur = Cursor {
        src: source,
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    while let Some(b) = cur.peek(0) {
        if b.is_ascii_whitespace() {
            cur.bump(1);
            continue;
        }
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = lex_one(&mut cur, b);
        tokens.push(Token {
            kind,
            text: &source[start..cur.pos],
            line,
            col,
        });
    }
    tokens
}

/// Lexes the token starting at the cursor (first byte already peeked).
fn lex_one(cur: &mut Cursor<'_>, b: u8) -> TokenKind {
    match b {
        b'/' if cur.peek(1) == Some(b'/') => {
            while cur.peek(0).is_some_and(|c| c != b'\n') {
                cur.bump(1);
            }
            TokenKind::LineComment
        }
        b'/' if cur.peek(1) == Some(b'*') => {
            cur.bump(2);
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some(b'/'), Some(b'*')) => {
                        depth += 1;
                        cur.bump(2);
                    }
                    (Some(b'*'), Some(b'/')) => {
                        depth -= 1;
                        cur.bump(2);
                    }
                    (Some(_), _) => cur.bump(1),
                    (None, _) => break,
                }
            }
            TokenKind::BlockComment
        }
        b'"' => lex_cooked_string(cur),
        b'\'' => lex_char_or_lifetime(cur),
        b'r' | b'b' | b'c' => lex_prefixed(cur),
        _ if b.is_ascii_digit() => lex_number(cur),
        _ if is_ident_start(b) => {
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump(1);
            }
            TokenKind::Ident
        }
        _ if b.is_ascii() => {
            cur.bump(1);
            TokenKind::Punct(b as char)
        }
        _ => {
            let c = cur.src[cur.pos..].chars().next().unwrap_or('\u{fffd}');
            cur.bump_char();
            TokenKind::Punct(c)
        }
    }
}

/// Lexes a literal-prefix identifier start (`r`, `b`, `c`): raw
/// strings, byte strings, C strings, raw identifiers, byte chars — or
/// a plain identifier when no quote follows.
fn lex_prefixed(cur: &mut Cursor<'_>) -> TokenKind {
    // Longest literal prefixes first: br / cr, then r / b / c.
    for (prefix, raw) in [
        ("br", true),
        ("cr", true),
        ("r", true),
        ("b", false),
        ("c", false),
    ] {
        if !cur.src[cur.pos..].starts_with(prefix) {
            continue;
        }
        let after = cur.pos + prefix.len();
        let next = cur.src.as_bytes().get(after).copied();
        if raw {
            // r"…" / r#"…"# (any hash count). `r#ident` with an
            // ident-start after a single hash is a raw identifier.
            let mut hashes = 0usize;
            while cur.src.as_bytes().get(after + hashes) == Some(&b'#') {
                hashes += 1;
            }
            match cur.src.as_bytes().get(after + hashes) {
                Some(b'"') => {
                    cur.bump(prefix.len() + hashes + 1);
                    return lex_raw_string_body(cur, hashes);
                }
                Some(&c) if prefix == "r" && hashes == 1 && is_ident_start(c) => {
                    cur.bump(2); // r#
                    while cur.peek(0).is_some_and(is_ident_continue) {
                        cur.bump(1);
                    }
                    return TokenKind::Ident;
                }
                _ => {}
            }
        } else if next == Some(b'"') {
            cur.bump(prefix.len());
            return lex_cooked_string(cur);
        } else if prefix == "b" && next == Some(b'\'') {
            cur.bump(1); // b
            return lex_char_or_lifetime(cur);
        }
    }
    // No literal followed: an ordinary identifier beginning r/b/c.
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump(1);
    }
    TokenKind::Ident
}

/// Lexes a cooked string starting at its opening quote (already
/// peeked; any `b`/`c` prefix is already past).
fn lex_cooked_string(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(1); // opening quote
    loop {
        match cur.peek(0) {
            None => break,
            Some(b'"') => {
                cur.bump(1);
                break;
            }
            Some(b'\\') => cur.bump(2.min(cur.src.len() - cur.pos)),
            Some(_) => cur.bump(1),
        }
    }
    TokenKind::Str
}

/// Lexes a raw-string body after `r#…#"`; ends at `"` followed by
/// `hashes` hash marks.
fn lex_raw_string_body(cur: &mut Cursor<'_>, hashes: usize) -> TokenKind {
    while let Some(b) = cur.peek(0) {
        if b == b'"' {
            let closes = (1..=hashes).all(|i| cur.peek(i) == Some(b'#'));
            if closes {
                cur.bump(1 + hashes);
                return TokenKind::RawStr;
            }
        }
        cur.bump(1);
    }
    TokenKind::RawStr
}

/// Disambiguates `'a'` (char), `'\n'` (char), and `'a` (lifetime),
/// starting at the quote.
fn lex_char_or_lifetime(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(1); // '
    match cur.peek(0) {
        Some(b'\\') => {
            cur.bump(1);
            if cur.peek(0) == Some(b'u') && cur.peek(1) == Some(b'{') {
                while cur.peek(0).is_some_and(|c| c != b'}' && c != b'\'') {
                    cur.bump(1);
                }
                cur.bump(1); // }
            } else if cur.peek(0).is_some() {
                cur.bump(1);
            }
            if cur.peek(0) == Some(b'\'') {
                cur.bump(1);
            }
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char; `'a` (not followed by another quote) is a
            // lifetime or loop label.
            let mut len = 1;
            while cur.peek(len).is_some_and(is_ident_continue) {
                len += 1;
            }
            if cur.peek(len) == Some(b'\'') {
                cur.bump(len + 1);
                TokenKind::Char
            } else {
                cur.bump(len);
                TokenKind::Lifetime
            }
        }
        Some(_) => {
            // A non-identifier char literal like '+' or a multibyte 'é'.
            cur.bump_char();
            if cur.peek(0) == Some(b'\'') {
                cur.bump(1);
            }
            TokenKind::Char
        }
        None => TokenKind::Char,
    }
}

/// Lexes a numeric literal, classifying floats (`1.5`, `1e3`, `1.`)
/// against integers (`42`, `0xff`, `7usize`, the `0` in `0..n`).
fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    let radix_prefixed = cur.peek(0) == Some(b'0')
        && matches!(cur.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
    if radix_prefixed {
        cur.bump(2);
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump(1);
        }
        return TokenKind::Number { is_float: false };
    }
    let mut is_float = false;
    while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
        cur.bump(1);
    }
    if cur.peek(0) == Some(b'.') {
        match cur.peek(1) {
            // `1.5`: fractional part.
            Some(c) if c.is_ascii_digit() => {
                is_float = true;
                cur.bump(1);
                while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                    cur.bump(1);
                }
            }
            // `1..n` is a range, `1.max(2)` a method call — not floats.
            Some(b'.') => {}
            Some(c) if is_ident_start(c) => {}
            // Trailing-dot float `1.`.
            _ => {
                is_float = true;
                cur.bump(1);
            }
        }
    }
    // Exponent: only when followed by a digit or signed digit.
    if matches!(cur.peek(0), Some(b'e' | b'E')) {
        let (skip, digit) = match cur.peek(1) {
            Some(b'+' | b'-') => (2, cur.peek(2)),
            other => (1, other),
        };
        if digit.is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            cur.bump(skip);
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                cur.bump(1);
            }
        }
    }
    // Type suffix (`u32`, `f64`): a float suffix keeps is_float; an
    // integer literal with an `f64` suffix counts as float too.
    if cur.peek(0).is_some_and(is_ident_start) {
        let suffix_start = cur.pos;
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump(1);
        }
        if matches!(&cur.src[suffix_start..cur.pos], "f32" | "f64") {
            is_float = true;
        }
    }
    TokenKind::Number { is_float }
}

/// Marks which tokens sit inside `#[cfg(test)]` / `#[test]` items.
///
/// Returns one flag per token: true when the token is inside the brace
/// body (or on the header line) of an item carrying a test attribute.
/// Tracking is by brace depth: once the attributed item's `{` opens,
/// everything until the matching `}` is test code. An attribute that
/// reaches a `;` before any `{` (e.g. `#[cfg(test)] mod tests;`)
/// guards no inline body and marks nothing.
pub fn test_regions(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut depth: usize = 0;
    // Brace depth below which we leave the current test region.
    let mut test_exit_depth: Option<usize> = None;
    // Set when a test attribute was seen and its item body is pending.
    let mut pending_attr: Option<usize> = None;
    let mut i = 0;
    while i < tokens.len() {
        let tok = &tokens[i];
        if tok.is_comment() {
            i += 1;
            continue;
        }
        if let Some(exit) = test_exit_depth {
            flags[i] = true;
            match tok.kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth <= exit {
                        test_exit_depth = None;
                    }
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        match tok.kind {
            TokenKind::Punct('#') => {
                if let Some((end, is_test)) = scan_attribute(tokens, i) {
                    if is_test {
                        // Mark the attribute tokens themselves as test.
                        for flag in flags.iter_mut().take(end + 1).skip(i) {
                            *flag = true;
                        }
                        pending_attr = Some(depth);
                    }
                    i = end + 1;
                    continue;
                }
            }
            TokenKind::Punct('{') => {
                if let Some(d) = pending_attr.take() {
                    test_exit_depth = Some(d);
                    flags[i] = true;
                }
                depth += 1;
            }
            TokenKind::Punct('}') => depth = depth.saturating_sub(1),
            TokenKind::Punct(';') => {
                if pending_attr == Some(depth) {
                    // `#[cfg(test)] mod tests;` — body is elsewhere.
                    pending_attr = None;
                }
            }
            _ => {
                if pending_attr.is_some() {
                    flags[i] = true; // the item header, e.g. `mod tests`
                }
            }
        }
        i += 1;
    }
    flags
}

/// Scans an attribute starting at `#`. Returns the index of its closing
/// `]` and whether it is a test attribute (`#[test]`, or any `#[cfg(…)]`
/// whose argument list mentions `test`). Returns `None` when the `#` is
/// not followed by `[` (or the group never closes).
fn scan_attribute(tokens: &[Token<'_>], hash: usize) -> Option<(usize, bool)> {
    let mut i = hash + 1;
    // Skip comments; reject inner attributes (`#![…]` applies to the
    // enclosing module, which is never a narrower test scope).
    while tokens.get(i).is_some_and(Token::is_comment) {
        i += 1;
    }
    if tokens.get(i).map(|t| t.kind) != Some(TokenKind::Punct('[')) {
        return None;
    }
    let mut bracket_depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test_ident = false;
    let mut saw_not = false;
    let mut first_ident: Option<&str> = None;
    for (j, tok) in tokens.iter().enumerate().skip(i) {
        match tok.kind {
            TokenKind::Punct('[') => bracket_depth += 1,
            TokenKind::Punct(']') => {
                bracket_depth -= 1;
                if bracket_depth == 0 {
                    // `#[cfg(not(test))]` guards NON-test code; treating
                    // it as a test region would hide real violations, so
                    // any `not` disqualifies (a false positive inside
                    // `cfg(all(not(...), test))` can be allowlisted).
                    let is_test =
                        first_ident == Some("test") || (saw_cfg && saw_test_ident && !saw_not);
                    return Some((j, is_test));
                }
            }
            TokenKind::Ident => {
                if first_ident.is_none() {
                    first_ident = Some(tok.text);
                }
                match tok.text {
                    "cfg" => saw_cfg = true,
                    "test" => saw_test_ident = true,
                    "not" => saw_not = true,
                    _ => {}
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_positions() {
        let toks = lex("let x = a.unwrap();\n  y");
        assert_eq!(
            toks[0],
            Token {
                kind: TokenKind::Ident,
                text: "let",
                line: 1,
                col: 1
            }
        );
        assert_eq!(toks[4].text, ".");
        assert_eq!(toks[5].text, "unwrap");
        assert_eq!(toks[5].col, 11);
        let y = toks.last().expect("tokens");
        assert_eq!((y.line, y.col, y.text), (2, 3, "y"));
    }

    #[test]
    fn line_and_block_comments_are_single_tokens() {
        let toks = kinds("a // panic!()\nb /* .unwrap() */ c");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a"),
                (TokenKind::LineComment, "// panic!()"),
                (TokenKind::Ident, "b"),
                (TokenKind::BlockComment, "/* .unwrap() */"),
                (TokenKind::Ident, "c"),
            ]
        );
    }

    #[test]
    fn block_comments_nest() {
        let toks = kinds("x /* outer /* inner */ still comment */ y");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[1].1, "/* outer /* inner */ still comment */");
    }

    #[test]
    fn strings_swallow_escapes_and_fake_code() {
        let toks = kinds(r#"let s = "call .unwrap() \" or panic!";"#);
        assert_eq!(toks[3].0, TokenKind::Str);
        assert!(toks.iter().all(|(_, t)| *t != "panic"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"quote " inside, even .expect("x")"# ;"###;
        let toks = kinds(src);
        assert_eq!(toks[3].0, TokenKind::RawStr);
        assert!(toks[3].1.ends_with("\"#"));
        assert_eq!(toks[4].1, ";");
        // Zero hashes and two hashes.
        assert_eq!(kinds(r#"r"ab""#)[0].0, TokenKind::RawStr);
        let two = kinds(r####"r##"has "# inside"## x"####);
        assert_eq!(two[0].0, TokenKind::RawStr);
        assert_eq!(two[1].1, "x");
    }

    #[test]
    fn byte_and_c_string_variants() {
        assert_eq!(kinds(r#"b"bytes""#)[0].0, TokenKind::Str);
        assert_eq!(kinds(r##"br#"raw bytes"#"##)[0].0, TokenKind::RawStr);
        assert_eq!(kinds(r#"c"cstr""#)[0].0, TokenKind::Str);
        assert_eq!(kinds(r##"cr#"raw c"#"##)[0].0, TokenKind::RawStr);
        assert_eq!(kinds("b'x'")[0].0, TokenKind::Char);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = kinds("r#type r#match rest");
        assert_eq!(toks[0], (TokenKind::Ident, "r#type"));
        assert_eq!(toks[1], (TokenKind::Ident, "r#match"));
        assert_eq!(toks[2], (TokenKind::Ident, "rest"));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = kinds("'a' 'x 'static '\\n' '\\'' '\\u{1F600}'");
        assert_eq!(
            toks.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![
                TokenKind::Char,
                TokenKind::Lifetime,
                TokenKind::Lifetime,
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Char,
            ]
        );
        assert_eq!(toks[1].1, "'x");
        assert_eq!(toks[5].1, "'\\u{1F600}'");
    }

    #[test]
    fn numbers_classify_floats() {
        let float = |s: &str| kinds(s)[0].0 == TokenKind::Number { is_float: true };
        assert!(float("1.5"));
        assert!(float("1e3"));
        assert!(float("2.5e-7"));
        assert!(float("1."));
        assert!(float("3f64"));
        assert!(!float("42"));
        assert!(!float("0xff"));
        assert!(!float("0b1010"));
        assert!(!float("7usize"));
        assert!(!float("1_000"));
    }

    #[test]
    fn ranges_and_method_calls_are_not_floats() {
        let toks = kinds("0..n");
        assert_eq!(toks[0].0, TokenKind::Number { is_float: false });
        assert_eq!(toks[1].1, ".");
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0].0, TokenKind::Number { is_float: false });
        assert_eq!(toks[2].1, "max");
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["\"open", "r#\"open", "/* open", "'", "b\"x"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?}");
        }
    }

    #[test]
    fn cfg_test_region_tracks_braces() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}";
        let toks = lex(src);
        let flags = test_regions(&toks);
        let unwrap_idx = toks
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap");
        assert!(flags[unwrap_idx]);
        let lib_idx = toks.iter().position(|t| t.text == "lib").expect("lib");
        let after_idx = toks.iter().position(|t| t.text == "after").expect("after");
        assert!(!flags[lib_idx]);
        assert!(!flags[after_idx]);
    }

    #[test]
    fn test_attribute_on_fn_is_exempt() {
        let src = "#[test]\nfn check() { x.unwrap(); }\nfn real() { y }";
        let toks = lex(src);
        let flags = test_regions(&toks);
        let unwrap_idx = toks
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap");
        let real_idx = toks.iter().position(|t| t.text == "real").expect("real");
        assert!(flags[unwrap_idx]);
        assert!(!flags[real_idx]);
    }

    #[test]
    fn cfg_test_mod_semicolon_marks_nothing() {
        let src = "#[cfg(test)]\nmod tests;\nfn real() { x.unwrap() }";
        let toks = lex(src);
        let flags = test_regions(&toks);
        let unwrap_idx = toks
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap");
        assert!(!flags[unwrap_idx]);
    }

    #[test]
    fn cfg_all_test_counts_as_test() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod helpers { fn h() { a.unwrap() } }";
        let toks = lex(src);
        let flags = test_regions(&toks);
        let unwrap_idx = toks
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap");
        assert!(flags[unwrap_idx]);
    }

    #[test]
    fn non_test_attributes_do_not_exempt() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() { s.unwrap() }";
        let toks = lex(src);
        let flags = test_regions(&toks);
        let unwrap_idx = toks
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap");
        assert!(!flags[unwrap_idx]);
    }

    #[test]
    fn attribute_between_cfg_test_and_body_keeps_pending() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() { a.unwrap() } }";
        let toks = lex(src);
        let flags = test_regions(&toks);
        let unwrap_idx = toks
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap");
        assert!(flags[unwrap_idx]);
    }
}
