//! ppm-lint: a token-aware static-analysis pass for this workspace.
//!
//! The reproduction's headline guarantees — byte-identical fixed-seed
//! builds and panic-free typed-error library code — used to be policed
//! by an awk/grep gate that could not see strings, comments, or module
//! structure. This crate replaces it with a real (still zero-dependency)
//! linter: a hand-written Rust lexer ([`lexer`]), a rule engine
//! ([`rules`]) with six workspace-invariant rules, an allowlist
//! ([`config`], `scripts/lint.conf` plus inline `lint:allow(<rule>)`
//! comments), and compiler-style diagnostics in human or JSON form
//! ([`report`]). The CLI exposes it as `ppm lint`.
//!
//! Scope: the root binary's `src/` tree and every `crates/<name>/src`
//! tree except `crates/bench` (excluded from the workspace build). Test
//! code — `#[cfg(test)]` modules and `#[test]` functions — is exempt
//! from every rule.

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

pub use config::{Config, ConfigError};
pub use report::{Diagnostic, Report};

/// Errors from walking and reading workspace sources.
#[derive(Debug)]
#[non_exhaustive]
pub enum LintError {
    /// A directory or file could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying failure.
        error: std::io::Error,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, error } => {
                write!(f, "cannot read {}: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io { error, .. } => Some(error),
        }
    }
}

/// Lints one in-memory source file. `rel_path` must be workspace
/// relative with `/` separators — it selects which rules apply.
pub fn lint_source(rel_path: &str, source: &str, conf: &Config) -> Vec<Diagnostic> {
    rules::check_source(rel_path, source, conf)
}

/// Lints every Rust source under `root` that is in scope (see the crate
/// docs) and returns a deterministic [`Report`] (files are visited in
/// sorted path order).
///
/// # Errors
///
/// [`LintError::Io`] when a scanned directory or file cannot be read.
pub fn lint_workspace(root: &Path, conf: &Config) -> Result<Report, LintError> {
    let files = workspace_files(root)?;
    let mut diagnostics = Vec::new();
    for rel in &files {
        let full = root.join(rel);
        let source = std::fs::read_to_string(&full).map_err(|error| LintError::Io {
            path: full.clone(),
            error,
        })?;
        diagnostics.extend(rules::check_source(rel, &source, conf));
    }
    // The walk already visits files in sorted order and each file's
    // diagnostics arrive pre-sorted, but the output contract is
    // (path, line, rule, col) regardless of walk order — enforce it.
    diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.col).cmp(&(b.path.as_str(), b.line, b.rule, b.col))
    });
    Ok(Report {
        files_scanned: files.len(),
        diagnostics,
    })
}

/// Enumerates in-scope `.rs` files under `root`, as sorted
/// workspace-relative `/`-separated paths: the root binary's `src/`
/// tree plus `crates/<name>/src` for every crate except `bench`.
/// `tests/`, `examples/`, and `benches/` trees are integration/test
/// code and deliberately out of scope.
///
/// # Errors
///
/// [`LintError::Io`] when a directory listing fails.
pub fn workspace_files(root: &Path) -> Result<Vec<String>, LintError> {
    let mut rels = Vec::new();
    if root.join("src").is_dir() {
        collect_rs(root, "src", &mut rels)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for name in sorted_entries(&crates_dir)? {
            if name == "bench" {
                continue;
            }
            let rel = format!("crates/{name}/src");
            if root.join(&rel).is_dir() {
                collect_rs(root, &rel, &mut rels)?;
            }
        }
    }
    rels.sort();
    Ok(rels)
}

/// Recursively collects `.rs` files under `root/rel_dir` into `out`.
fn collect_rs(root: &Path, rel_dir: &str, out: &mut Vec<String>) -> Result<(), LintError> {
    for name in sorted_entries(&root.join(rel_dir))? {
        let rel = format!("{rel_dir}/{name}");
        let full = root.join(&rel);
        if full.is_dir() {
            collect_rs(root, &rel, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Lists a directory's entry names in sorted order (so walk order, and
/// therefore diagnostic order, is independent of filesystem order).
fn sorted_entries(dir: &Path) -> Result<Vec<String>, LintError> {
    let io = |error: std::io::Error| LintError::Io {
        path: dir.to_path_buf(),
        error,
    };
    let mut names = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(io)? {
        let entry = entry.map_err(io)?;
        names.push(entry.file_name().to_string_lossy().into_owned());
    }
    names.sort();
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(root: &Path, rel: &str, text: &str) {
        let full = root.join(rel);
        std::fs::create_dir_all(full.parent().expect("parent")).expect("mkdir");
        std::fs::write(full, text).expect("write fixture");
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppm-lint-{tag}-{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).expect("clean temp root");
        }
        std::fs::create_dir_all(&dir).expect("mkdir temp root");
        dir
    }

    #[test]
    fn walker_scopes_and_sorts() {
        let root = temp_root("walk");
        write(&root, "src/main.rs", "fn main() {}");
        write(&root, "src/cli/mod.rs", "pub mod x;");
        write(&root, "crates/core/src/lib.rs", "pub fn f() {}");
        write(&root, "crates/core/src/deep/inner.rs", "pub fn g() {}");
        write(
            &root,
            "crates/bench/src/lib.rs",
            "fn skipped() { x.unwrap() }",
        );
        write(&root, "crates/core/tests/it.rs", "fn t() { x.unwrap() }");
        write(&root, "crates/core/src/notes.txt", "not rust");
        let files = workspace_files(&root).expect("walk");
        assert_eq!(
            files,
            vec![
                "crates/core/src/deep/inner.rs",
                "crates/core/src/lib.rs",
                "src/cli/mod.rs",
                "src/main.rs",
            ]
        );
        std::fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn lint_workspace_reports_findings() {
        let root = temp_root("report");
        write(
            &root,
            "crates/core/src/lib.rs",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        );
        write(&root, "crates/core/src/ok.rs", "pub fn g() -> u32 { 4 }");
        let report = lint_workspace(&root, &Config::empty()).expect("lint");
        assert_eq!(report.files_scanned, 2);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].rule, "panic-path");
        assert_eq!(report.diagnostics[0].path, "crates/core/src/lib.rs");
        assert!(!report.is_clean());
        std::fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn missing_root_is_an_io_error() {
        let err = lint_workspace(Path::new("/nonexistent-ppm-lint"), &Config::empty());
        // No src/ and no crates/ at all: scans nothing, cleanly.
        let report = err.expect("empty scan is not an error");
        assert_eq!(report.files_scanned, 0);
    }
}
