//! Diagnostics and their human / JSON renderings.
//!
//! The human form is the compiler-style `file:line:col: rule: message`
//! line, one per finding. The JSON form reuses the `ppm-obs` codec so
//! `ppm lint --format json` emits the same dialect as ledgers and
//! traces, and verify.sh can gate on it without extra tooling.

use std::fmt;

use ppm_obs::Json;

use crate::rules;

/// One lint finding at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired (a name from [`rules::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// The result of linting a file set.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// How many files were scanned.
    pub files_scanned: usize,
    /// All findings, in walk order (deterministic: paths are sorted).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the human form: one `file:line:col: rule: message` line
    /// per finding plus a one-line summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "ppm-lint: {} file(s) scanned, {} finding(s)\n",
            self.files_scanned,
            self.diagnostics.len()
        ));
        out
    }

    /// Renders the JSON form (schema `ppm-lint v1`), including the rule
    /// table so consumers can map names to descriptions.
    pub fn render_json(&self) -> String {
        let diags = self
            .diagnostics
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("rule".to_string(), Json::Str(d.rule.to_string())),
                    ("path".to_string(), Json::Str(d.path.clone())),
                    ("line".to_string(), Json::Int(i64::from(d.line))),
                    ("col".to_string(), Json::Int(i64::from(d.col))),
                    ("message".to_string(), Json::Str(d.message.clone())),
                ])
            })
            .collect();
        let rules = rules::RULES
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("name".to_string(), Json::Str(r.name.to_string())),
                    ("summary".to_string(), Json::Str(r.summary.to_string())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Str("ppm-lint v1".to_string())),
            (
                "files_scanned".to_string(),
                Json::Int(self.files_scanned as i64),
            ),
            ("clean".to_string(), Json::Bool(self.is_clean())),
            ("diagnostics".to_string(), Json::Arr(diags)),
            ("rules".to_string(), Json::Arr(rules)),
        ])
        .dump()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            files_scanned: 3,
            diagnostics: vec![Diagnostic {
                rule: "panic-path",
                path: "crates/core/src/f.rs".to_string(),
                line: 7,
                col: 9,
                message: "`.unwrap(...)` in non-test library code".to_string(),
            }],
        }
    }

    #[test]
    fn human_form_is_compiler_style() {
        let text = sample().render_human();
        assert!(
            text.contains("crates/core/src/f.rs:7:9: panic-path:"),
            "{text}"
        );
        assert!(text.contains("3 file(s) scanned, 1 finding(s)"), "{text}");
    }

    #[test]
    fn json_form_round_trips() {
        let report = sample();
        let json = Json::parse(&report.render_json()).expect("valid JSON");
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("ppm-lint v1")
        );
        assert_eq!(json.get("files_scanned").and_then(Json::as_i64), Some(3));
        let diags = match json.get("diagnostics") {
            Some(Json::Arr(items)) => items,
            other => panic!("diagnostics not an array: {other:?}"),
        };
        assert_eq!(diags.len(), 1);
        assert_eq!(
            diags[0].get("rule").and_then(Json::as_str),
            Some("panic-path")
        );
        assert_eq!(diags[0].get("line").and_then(Json::as_i64), Some(7));
        // The rule table rides along for consumers.
        let rules_arr = match json.get("rules") {
            Some(Json::Arr(items)) => items,
            other => panic!("rules not an array: {other:?}"),
        };
        assert_eq!(rules_arr.len(), 6);
    }

    #[test]
    fn empty_report_is_clean() {
        let report = Report::default();
        assert!(report.is_clean());
        let json = Json::parse(&report.render_json()).expect("valid JSON");
        assert_eq!(json.get("clean"), Some(&Json::Bool(true)));
    }
}
