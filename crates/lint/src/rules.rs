//! The rule engine: six token-level rules over the lexed stream.
//!
//! Each rule guards one workspace invariant:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `panic-path` | library faults surface as typed errors, not panics |
//! | `iteration-order` | nothing determinism-critical iterates a hash map |
//! | `wall-clock` | time is observed through telemetry, not ad hoc |
//! | `float-eq` | numeric kernels never use exact float equality |
//! | `print-in-lib` | library crates report through telemetry sinks |
//! | `env-read` | process environment is read only by the CLI layer |
//!
//! Rules skip comments and string literals (the lexer already
//! classified them), skip `#[cfg(test)]` / `#[test]` regions, and honor
//! both `lint:allow(<rule>)` comments and the central allowlist.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::lexer::{self, Token, TokenKind};
use crate::report::Diagnostic;

/// A lint rule's name and one-line description.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case rule name (used in `lint:allow` and lint.conf).
    pub name: &'static str,
    /// What the rule enforces, for `--format json` consumers and docs.
    pub summary: &'static str,
}

/// All rules, in reporting order.
pub const RULES: [Rule; 6] = [
    Rule {
        name: "panic-path",
        summary: "unwrap/expect/panic!/todo!/unimplemented! in non-test library code \
                  (faults must surface as typed errors)",
    },
    Rule {
        name: "iteration-order",
        summary: "HashMap/HashSet in determinism-critical crates \
                  (iteration order leaks into checkpoints and ledgers)",
    },
    Rule {
        name: "wall-clock",
        summary: "Instant::now/SystemTime::now outside the telemetry layer \
                  (stray timing breaks byte-identical fixed-seed runs)",
    },
    Rule {
        name: "float-eq",
        summary: "== or != against a float literal in numeric kernels \
                  (exact float equality is unreliable)",
    },
    Rule {
        name: "print-in-lib",
        summary: "println!/eprintln!/print!/eprint!/dbg! in library crates \
                  (events must go through telemetry sinks)",
    },
    Rule {
        name: "env-read",
        summary: "std::env reads outside the config/CLI layer \
                  (hidden environment coupling defeats reproducibility)",
    },
];

/// Rule names owned by the semantic-analysis layer (`crates/analyze`,
/// exposed as `ppm analyze`). They are declared here so the shared
/// allowlist (`scripts/lint.conf`) can carry entries for either tool:
/// `Config::parse` must accept every rule the workspace's static
/// analyses know, and a typo must be rejected against the *full* set.
pub const ANALYZE_RULE_NAMES: [&str; 5] = [
    "lock-order",
    "atomic-ordering",
    "panic-reachability",
    "wire-format",
    "exit-code",
];

/// True when `name` is a rule either static-analysis tool knows
/// (the six lint rules or the five `ppm analyze` rules).
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name) || ANALYZE_RULE_NAMES.contains(&name)
}

/// All rule names this linter reports on, in reporting order.
pub fn rule_names() -> Vec<&'static str> {
    RULES.iter().map(|r| r.name).collect()
}

/// Every rule name the shared allowlist accepts: the lint rules
/// followed by the analyze rules, in reporting order.
pub fn all_rule_names() -> Vec<&'static str> {
    rule_names().into_iter().chain(ANALYZE_RULE_NAMES).collect()
}

/// Crates whose serialized artifacts (checkpoints, ledgers, persisted
/// models, sample plans) must be byte-identical across runs.
const DETERMINISTIC_CRATES: [&str; 4] = [
    "crates/core/",
    "crates/obs/",
    "crates/sampling/",
    "crates/firstorder/",
];

/// Crates that are numeric kernels, where exact float comparison is a
/// correctness smell rather than a style choice.
const NUMERIC_CRATES: [&str; 7] = [
    "crates/linalg/",
    "crates/rbf/",
    "crates/linreg/",
    "crates/regtree/",
    "crates/firstorder/",
    "crates/sampling/",
    "crates/rng/",
];

fn in_any(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

/// Whether a rule applies to a file, by workspace-relative path.
///
/// `panic-path` covers every scanned file (library crates and the CLI).
/// `wall-clock` and `print-in-lib` exempt `crates/telemetry` (it *is*
/// the timing and output layer) and the CLI binary (`src/`), which owns
/// process-level I/O; `wall-clock` additionally exempts `crates/live`,
/// whose socket timeouts, ETA extrapolation, and refresh pacing are
/// observations of real time by design — the live plane reports on a
/// running process and never feeds deterministic artifacts. The serving
/// plane (`crates/serve`) gets a *narrower* exemption than live: only
/// its `clock.rs` (the `Deadline`/`Stopwatch` module, the plane's sole
/// sanctioned window onto real time) may read the clock; every other
/// serve file must express time through those types, so the rule still
/// catches stray `Instant::now()` in routing or model logic. `env-read`
/// exempts only the CLI, the designated config layer. The determinism
/// and numeric scopes are explicit crate lists.
pub fn rule_applies(rule: &str, rel_path: &str) -> bool {
    let in_crates = rel_path.starts_with("crates/");
    let in_telemetry = rel_path.starts_with("crates/telemetry/");
    let in_live = rel_path.starts_with("crates/live/");
    let is_serve_clock = rel_path == "crates/serve/src/clock.rs";
    match rule {
        "panic-path" => true,
        "iteration-order" => in_any(rel_path, &DETERMINISTIC_CRATES),
        "wall-clock" => in_crates && !in_telemetry && !in_live && !is_serve_clock,
        "float-eq" => in_any(rel_path, &NUMERIC_CRATES),
        "print-in-lib" => in_crates && !in_telemetry,
        "env-read" => in_crates,
        _ => false,
    }
}

/// Lints one source file. `rel_path` is workspace-relative with `/`
/// separators (it selects which rules apply).
pub fn check_source(rel_path: &str, source: &str, conf: &Config) -> Vec<Diagnostic> {
    let tokens = lexer::lex(source);
    let in_test = lexer::test_regions(&tokens);
    let lines: Vec<&str> = source.lines().collect();
    let allow = inline_allows(&tokens, "lint:allow(");

    // Code view: indices of non-comment tokens, for adjacency matching.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();

    let mut diags = Vec::new();
    let mut emit = |rule: &'static str, tok: &Token<'_>, message: String| {
        if !rule_applies(rule, rel_path) {
            return;
        }
        if allow.contains(&(rule.to_string(), tok.line)) {
            return;
        }
        let line_text = lines.get(tok.line as usize - 1).copied().unwrap_or("");
        if conf.allows(rule, line_text) {
            return;
        }
        diags.push(Diagnostic {
            rule,
            path: rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
        });
    };

    let tok = |ci: usize| -> Option<&Token<'_>> { code.get(ci).map(|&i| &tokens[i]) };
    let is_punct = |ci: usize, c: char| tok(ci).is_some_and(|t| t.kind == TokenKind::Punct(c));
    let is_float = |ci: usize| {
        tok(ci).is_some_and(|t| t.kind == TokenKind::Number { is_float: true })
            // A negated literal: `x == -1.0`.
            || (tok(ci).is_some_and(|t| t.kind == TokenKind::Punct('-'))
                && tok(ci + 1).is_some_and(|t| t.kind == TokenKind::Number { is_float: true }))
    };

    for ci in 0..code.len() {
        let t = tokens[code[ci]];
        if in_test[code[ci]] {
            continue;
        }
        if t.kind == TokenKind::Ident {
            match t.text {
                "unwrap" | "expect" if ci > 0 && is_punct(ci - 1, '.') && is_punct(ci + 1, '(') => {
                    emit(
                        "panic-path",
                        &t,
                        format!(
                            "`.{}(...)` in non-test library code; return a typed error \
                             (or justify with `lint:allow(panic-path)`)",
                            t.text
                        ),
                    );
                }
                "panic" | "todo" | "unimplemented" if is_punct(ci + 1, '!') => {
                    emit(
                        "panic-path",
                        &t,
                        format!(
                            "`{}!` in non-test library code; return a typed error",
                            t.text
                        ),
                    );
                }
                "HashMap" | "HashSet" => {
                    emit(
                        "iteration-order",
                        &t,
                        format!(
                            "`{}` in a determinism-critical crate; iteration/serialization \
                             order follows the hasher — use BTreeMap/BTreeSet or sort at write",
                            t.text
                        ),
                    );
                }
                "Instant" | "SystemTime"
                    if is_punct(ci + 1, ':')
                        && is_punct(ci + 2, ':')
                        && tok(ci + 3).is_some_and(|n| n.text == "now") =>
                {
                    emit(
                        "wall-clock",
                        &t,
                        format!(
                            "`{}::now` outside the telemetry layer; time it with a \
                             telemetry span/histogram instead",
                            t.text
                        ),
                    );
                }
                "println" | "eprintln" | "print" | "eprint" | "dbg" if is_punct(ci + 1, '!') => {
                    emit(
                        "print-in-lib",
                        &t,
                        format!(
                            "`{}!` in a library crate; emit a telemetry event or counter \
                             so sinks control the output",
                            t.text
                        ),
                    );
                }
                "env"
                    if is_punct(ci + 1, ':')
                        && is_punct(ci + 2, ':')
                        && tok(ci + 3).is_some_and(|n| {
                            matches!(n.text, "var" | "var_os" | "vars" | "vars_os")
                        }) =>
                {
                    emit(
                        "env-read",
                        &t,
                        format!(
                            "`env::{}` in library code; environment reads belong to the \
                             CLI/config layer — accept the value as a parameter",
                            tok(ci + 3).map_or("var", |n| n.text)
                        ),
                    );
                }
                _ => {}
            }
        }
        // Float equality: `==`/`!=` with a float literal on either side.
        if let TokenKind::Punct(op @ ('=' | '!')) = t.kind {
            let second = match tok(ci + 1) {
                Some(s) => *s,
                None => continue,
            };
            let adjacent = second.kind == TokenKind::Punct('=')
                && second.line == t.line
                && second.col == t.col + 1;
            if !adjacent {
                continue;
            }
            // Exclude `<=`, `>=`, and the tail of a longer operator.
            if ci > 0
                && tok(ci - 1).is_some_and(|p| {
                    matches!(p.kind, TokenKind::Punct('<' | '>' | '=' | '!'))
                        && p.line == t.line
                        && p.col + 1 == t.col
                })
            {
                continue;
            }
            let lhs_float = ci > 0
                && tok(ci - 1).is_some_and(|p| p.kind == TokenKind::Number { is_float: true });
            let rhs_float = is_float(ci + 2);
            if lhs_float || rhs_float {
                emit(
                    "float-eq",
                    &t,
                    format!(
                        "`{}=` against a float literal in a numeric kernel; compare with \
                         a tolerance (or justify an exact sentinel with `lint:allow(float-eq)`)",
                        op
                    ),
                );
            }
        }
    }
    // Deterministic reporting order regardless of rule-matching order:
    // (line, rule, col) — the path is constant within one file.
    diags.sort_by_key(|d| (d.line, d.rule, d.col));
    diags
}

/// Collects `<marker>rule, ...)` markers from comment tokens — the
/// marker is the opening text up to and including `(`, e.g.
/// `"lint:allow("` or `"analyze:allow("`. A marker covers every line
/// its comment spans plus the line after it, so it works both trailing
/// the violation and on the line above.
pub fn inline_allows(tokens: &[Token<'_>], marker: &str) -> BTreeSet<(String, u32)> {
    let mut allows = BTreeSet::new();
    for tok in tokens.iter().filter(|t| t.is_comment()) {
        let mut rest = tok.text;
        while let Some(at) = rest.find(marker) {
            rest = &rest[at + marker.len()..];
            let Some(close) = rest.find(')') else { break };
            let end_line = tok.line + tok.text.matches('\n').count() as u32;
            for rule in rest[..close].split(',') {
                let rule = rule.trim();
                if !is_known_rule(rule) {
                    continue;
                }
                for line in tok.line..=end_line + 1 {
                    allows.insert((rule.to_string(), line));
                }
            }
            rest = &rest[close + 1..];
        }
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<Diagnostic> {
        check_source(rel, src, &Config::empty())
    }

    fn rules_hit(rel: &str, src: &str) -> Vec<&'static str> {
        lint(rel, src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn panic_path_matches_calls_not_strings_or_comments() {
        let src = r#"
fn f(x: Option<u32>) -> u32 {
    // a comment mentioning .unwrap() and panic!
    let msg = "strings with .expect( and panic! are fine";
    let _ = msg;
    x.unwrap()
}
"#;
        let diags = lint("crates/core/src/f.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "panic-path");
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn panic_family_macros_are_flagged() {
        let src = "fn f() { panic!(\"x\") }\nfn g() { todo!() }\nfn h() { unimplemented!() }";
        assert_eq!(
            rules_hit("crates/sim/src/x.rs", src),
            vec!["panic-path", "panic-path", "panic-path"]
        );
        // `std::panic::catch_unwind` is a path segment, not the macro.
        assert!(rules_hit(
            "crates/sim/src/x.rs",
            "use std::panic; fn f() { std::panic::catch_unwind(|| 1).ok(); }"
        )
        .is_empty());
    }

    #[test]
    fn unwrap_or_variants_do_not_match() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_else(|| 1)) }";
        assert!(rules_hit("crates/core/src/f.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { None::<u32>.unwrap(); }\n}";
        assert!(rules_hit("crates/core/src/f.rs", src).is_empty());
    }

    #[test]
    fn iteration_order_scoped_to_deterministic_crates() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); let _ = m; }";
        assert_eq!(
            rules_hit("crates/core/src/f.rs", src),
            vec!["iteration-order"; 3]
        );
        // The simulator crate may hash freely (its maps never serialize).
        assert!(rules_hit("crates/sim/src/f.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_flags_now_calls_only() {
        let used = "use std::time::Instant;\nfn f() -> Instant { Instant::now() }";
        assert_eq!(
            rules_hit("crates/linalg/src/f.rs", used),
            vec!["wall-clock"]
        );
        assert_eq!(
            rules_hit(
                "crates/core/src/f.rs",
                "fn f() { let _ = std::time::SystemTime::now(); }"
            ),
            vec!["wall-clock"]
        );
        // The telemetry crate is the timing layer.
        assert!(rules_hit("crates/telemetry/src/span.rs", used).is_empty());
        // The live plane observes real time by design (timeouts, ETA),
        // but its output must still go through sinks and it must not
        // read the environment.
        assert!(rules_hit("crates/live/src/server.rs", used).is_empty());
        assert_eq!(
            rules_hit("crates/live/src/server.rs", "fn f() { println!(\"x\"); }"),
            vec!["print-in-lib"]
        );
        // The serving plane gets a narrower dispensation than live:
        // only its clock module may observe real time — everything
        // else in `crates/serve` must go through those types.
        assert!(rules_hit("crates/serve/src/clock.rs", used).is_empty());
        assert_eq!(
            rules_hit("crates/serve/src/server.rs", used),
            vec!["wall-clock"]
        );
        // A Duration type mention is not an observation of the clock.
        assert!(rules_hit("crates/core/src/f.rs", "fn f(d: std::time::Duration) {}").is_empty());
    }

    #[test]
    fn float_eq_flags_literal_comparisons() {
        assert_eq!(
            rules_hit(
                "crates/linalg/src/f.rs",
                "fn f(a: f64) -> bool { a == 0.0 }"
            ),
            vec!["float-eq"]
        );
        assert_eq!(
            rules_hit(
                "crates/linalg/src/f.rs",
                "fn f(a: f64) -> bool { 1.5 != a }"
            ),
            vec!["float-eq"]
        );
        assert_eq!(
            rules_hit(
                "crates/linalg/src/f.rs",
                "fn f(a: f64) -> bool { a == -2.5 }"
            ),
            vec!["float-eq"]
        );
        // Integers, `<=`, `>=`, and non-numeric crates pass.
        assert!(rules_hit("crates/linalg/src/f.rs", "fn f(a: u32) -> bool { a == 0 }").is_empty());
        assert!(rules_hit(
            "crates/linalg/src/f.rs",
            "fn f(a: f64) -> bool { a <= 0.0 }"
        )
        .is_empty());
        assert!(rules_hit("crates/obs/src/f.rs", "fn f(a: f64) -> bool { a == 0.0 }").is_empty());
    }

    #[test]
    fn print_in_lib_flags_macros() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); let _ = dbg!(1); }";
        assert_eq!(
            rules_hit("crates/rbf/src/f.rs", src),
            vec!["print-in-lib"; 3]
        );
        assert!(rules_hit("crates/telemetry/src/sink.rs", src).is_empty());
    }

    #[test]
    fn env_read_flags_var_calls() {
        let src = "fn f() { let _ = std::env::var(\"PPM_THREADS\"); }";
        assert_eq!(rules_hit("crates/exec/src/lib.rs", src), vec!["env-read"]);
        // temp_dir and set_var are not reads of configuration.
        assert!(rules_hit(
            "crates/exec/src/lib.rs",
            "fn f() { let _ = std::env::temp_dir(); }"
        )
        .is_empty());
    }

    #[test]
    fn inline_allow_suppresses_same_and_next_line() {
        let trailing =
            "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(panic-path): contract";
        assert!(rules_hit("crates/core/src/f.rs", trailing).is_empty());
        let above = "// lint:allow(panic-path): documented contract panic\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(rules_hit("crates/core/src/f.rs", above).is_empty());
        // Two lines away is out of range — the comment must be adjacent.
        let far =
            "// lint:allow(panic-path): too far\n\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_hit("crates/core/src/f.rs", far), vec!["panic-path"]);
    }

    #[test]
    fn inline_allow_is_rule_specific() {
        let src =
            "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(wall-clock): wrong rule";
        assert_eq!(rules_hit("crates/core/src/f.rs", src), vec!["panic-path"]);
    }

    #[test]
    fn conf_allowlist_suppresses_by_substring() {
        let conf = Config::parse("allow panic-path .expect(\"non-empty model has weights\")\n")
            .expect("valid conf");
        let src = "fn f(w: Option<u32>) -> u32 { w.expect(\"non-empty model has weights\") }";
        assert!(check_source("crates/rbf/src/selection.rs", src, &conf).is_empty());
        let other = "fn f(w: Option<u32>) -> u32 { w.expect(\"something else\") }";
        assert_eq!(
            check_source("crates/rbf/src/selection.rs", other, &conf).len(),
            1
        );
    }

    #[test]
    fn diagnostics_carry_positions() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}";
        let d = &lint("crates/core/src/f.rs", src)[0];
        assert_eq!((d.line, d.col), (2, 7));
        assert!(d.message.contains("unwrap"));
    }
}
