//! The `/buildz` route: build progress as a `ppm-buildz v1` document.

use ppm_obs::Json;
use ppm_telemetry::{monotonic_us, MetricKind, MetricRecord};

/// Reads a counter value out of a snapshot (0 when absent).
fn counter(snapshot: &[MetricRecord], name: &str) -> u64 {
    snapshot
        .iter()
        .find(|m| m.kind == MetricKind::Counter && m.name == name)
        .and_then(|m| m.value)
        .unwrap_or(0)
}

/// Reads a gauge value out of a snapshot (0.0 when absent).
fn gauge(snapshot: &[MetricRecord], name: &str) -> f64 {
    snapshot
        .iter()
        .find(|m| m.kind == MetricKind::Gauge && m.name == name)
        .and_then(|m| m.gauge)
        .unwrap_or(0.0)
}

/// Renders build progress as the `ppm-buildz v1` JSON document:
/// current stage (from the process-wide stage stack), points
/// planned/done/resumed (the supervisor's counters), retry and
/// quarantine totals, per-stage wall time so far, live worker count,
/// elapsed time, and an ETA extrapolated from the completion rate
/// (`null` until at least one fresh point has finished).
pub fn render_buildz(snapshot: &[MetricRecord]) -> String {
    let elapsed_ms = monotonic_us() / 1000;
    let planned = counter(snapshot, "build.points_planned");
    let done = counter(snapshot, "build.points_done");
    let resumed = counter(snapshot, "build.points_resumed");

    // ETA: elapsed × remaining/done. Resumed points complete in ~zero
    // time, so exclude them from the rate when possible to avoid wild
    // underestimates right after a checkpoint load.
    let fresh_done = done.saturating_sub(resumed);
    let remaining = planned.saturating_sub(done);
    let eta_ms = if fresh_done > 0 && remaining > 0 {
        Json::from((elapsed_ms as f64 * remaining as f64 / fresh_done as f64) as u64)
    } else {
        Json::Null
    };

    let stages: Vec<Json> = snapshot
        .iter()
        .filter(|m| m.kind == MetricKind::Histogram)
        .filter_map(|m| {
            let stage = m.name.strip_prefix("span.stage.")?.strip_suffix(".us")?;
            let (count, sum, ..) = m.hist?;
            Some(Json::Obj(vec![
                ("name".to_string(), Json::Str(stage.to_string())),
                ("count".to_string(), Json::from(count)),
                ("wall_us".to_string(), Json::from(sum)),
            ]))
        })
        .collect();

    Json::Obj(vec![
        ("schema".to_string(), Json::Str("ppm-buildz v1".to_string())),
        (
            "stage".to_string(),
            match ppm_telemetry::current_stage() {
                Some(s) => Json::Str(s),
                None => Json::Null,
            },
        ),
        ("elapsed_ms".to_string(), Json::from(elapsed_ms)),
        (
            "points".to_string(),
            Json::Obj(vec![
                ("planned".to_string(), Json::from(planned)),
                ("done".to_string(), Json::from(done)),
                ("resumed".to_string(), Json::from(resumed)),
            ]),
        ),
        (
            "retries".to_string(),
            Json::from(counter(snapshot, "robust.retries")),
        ),
        (
            "quarantined".to_string(),
            Json::from(counter(snapshot, "robust.quarantined")),
        ),
        (
            "workers_live".to_string(),
            Json::Float(gauge(snapshot, "exec.workers_live")),
        ),
        ("eta_ms".to_string(), eta_ms),
        ("stages".to_string(), Json::Arr(stages)),
    ])
    .dump()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buildz_reports_progress_counters_and_stages() {
        let r = ppm_telemetry::Registry::new();
        r.counter("build.points_planned").add(40);
        r.counter("build.points_done").add(14);
        r.counter("build.points_resumed").add(4);
        r.counter("robust.retries").add(2);
        r.counter("robust.quarantined").inc();
        r.gauge("exec.workers_live").set(3.0);
        r.histogram("span.stage.simulation.us").record(5000);
        r.histogram("span.other.us").record(10);
        let doc = Json::parse(&render_buildz(&r.snapshot())).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("ppm-buildz v1")
        );
        let points = doc.get("points").expect("points object");
        assert_eq!(points.get("planned").and_then(Json::as_i64), Some(40));
        assert_eq!(points.get("done").and_then(Json::as_i64), Some(14));
        assert_eq!(points.get("resumed").and_then(Json::as_i64), Some(4));
        assert_eq!(doc.get("retries").and_then(Json::as_i64), Some(2));
        assert_eq!(doc.get("quarantined").and_then(Json::as_i64), Some(1));
        // 10 fresh points finished out of 26 remaining: ETA is a number.
        assert!(doc.get("eta_ms").and_then(Json::as_i64).is_some());
        let stages = match doc.get("stages") {
            Some(Json::Arr(items)) => items,
            other => panic!("stages not an array: {other:?}"),
        };
        // Only span.stage.* histograms appear.
        assert_eq!(stages.len(), 1);
        assert_eq!(
            stages[0].get("name").and_then(Json::as_str),
            Some("simulation")
        );
        assert_eq!(stages[0].get("wall_us").and_then(Json::as_i64), Some(5000));
    }

    #[test]
    fn eta_is_null_before_any_fresh_point_completes() {
        let r = ppm_telemetry::Registry::new();
        r.counter("build.points_planned").add(40);
        let doc = Json::parse(&render_buildz(&r.snapshot())).expect("valid JSON");
        assert_eq!(doc.get("eta_ms"), Some(&Json::Null));
        // Resumed-only progress also yields no rate.
        r.counter("build.points_done").add(5);
        r.counter("build.points_resumed").add(5);
        let doc = Json::parse(&render_buildz(&r.snapshot())).expect("valid JSON");
        assert_eq!(doc.get("eta_ms"), Some(&Json::Null));
    }
}
