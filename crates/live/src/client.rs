//! A tiny HTTP GET client over `std::net::TcpStream`, for `ppm top`
//! and the live-plane integration tests.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::LiveError;

/// Fetches `path` from the live plane at `addr` (e.g.
/// `"127.0.0.1:9090"`), returning `(status, body)`. Speaks just enough
/// HTTP/1.1 for the ppm-live server: one request, `Connection: close`,
/// body read to EOF.
///
/// # Errors
///
/// [`LiveError::Io`] on connect/read/write failures,
/// [`LiveError::Malformed`] when the response has no parseable status
/// line.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> Result<(u16, String), LiveError> {
    request(addr, "GET", path, timeout)
}

/// Like [`http_get`] but issues a bodyless `POST` — the shape of the
/// serving plane's control endpoints (`/reloadz`, `/quitz`).
///
/// # Errors
///
/// Same contract as [`http_get`].
pub fn http_post(addr: &str, path: &str, timeout: Duration) -> Result<(u16, String), LiveError> {
    request(addr, "POST", path, timeout)
}

fn request(
    addr: &str,
    method: &str,
    path: &str,
    timeout: Duration,
) -> Result<(u16, String), LiveError> {
    let mut last_io = LiveError::Io(format!("no usable address for {addr}"));
    let targets = addr
        .to_socket_addrs()
        .map_err(|e| LiveError::Io(format!("cannot resolve {addr}: {e}")))?;
    for target in targets {
        match TcpStream::connect_timeout(&target, timeout) {
            Ok(stream) => return fetch(stream, addr, method, path, timeout),
            Err(e) => last_io = LiveError::Io(format!("cannot connect to {target}: {e}")),
        }
    }
    Err(last_io)
}

fn fetch(
    mut stream: TcpStream,
    addr: &str,
    method: &str,
    path: &str,
    timeout: Duration,
) -> Result<(u16, String), LiveError> {
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| LiveError::Io(e.to_string()))?;
    let request = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| LiveError::Io(format!("request write failed: {e}")))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| LiveError::Io(format!("response read failed: {e}")))?;
    parse_response(&raw)
}

/// Splits a raw HTTP/1.1 response into `(status, body)`.
fn parse_response(raw: &str) -> Result<(u16, String), LiveError> {
    let status_line = raw
        .lines()
        .next()
        .ok_or_else(|| LiveError::Malformed("empty response".to_string()))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| LiveError::Malformed(format!("bad status line: {status_line}")))?;
    let body = match raw.find("\r\n\r\n") {
        Some(at) => &raw[at + 4..],
        None => raw
            .find("\n\n")
            .map(|at| &raw[at + 2..])
            .unwrap_or_default(),
    };
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_and_body() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\r\nhello\nworld\n";
        let (status, body) = parse_response(raw).expect("valid response");
        assert_eq!(status, 200);
        assert_eq!(body, "hello\nworld\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse_response("not http at all"),
            Err(LiveError::Malformed(_))
        ));
        assert!(matches!(parse_response(""), Err(LiveError::Malformed(_))));
    }

    #[test]
    fn connect_to_dead_port_is_io_error() {
        // Bind then drop a listener to find a port that refuses.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").port()
        };
        let err = http_get(
            &format!("127.0.0.1:{port}"),
            "/metrics",
            Duration::from_millis(300),
        )
        .expect_err("nothing listening");
        assert!(matches!(err, LiveError::Io(_)), "{err:?}");
    }
}
