//! A tiny HTTP GET client over `std::net::TcpStream`, for `ppm top`
//! and the live-plane integration tests.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::LiveError;

/// Fetches `path` from the live plane at `addr` (e.g.
/// `"127.0.0.1:9090"`), returning `(status, body)`. Speaks just enough
/// HTTP/1.1 for the ppm-live server: one request, `Connection: close`,
/// body read to EOF.
///
/// # Errors
///
/// [`LiveError::Io`] on connect/read/write failures,
/// [`LiveError::Malformed`] when the response has no parseable status
/// line.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> Result<(u16, String), LiveError> {
    request(addr, "GET", path, timeout)
}

/// Like [`http_get`] but issues a bodyless `POST` — the shape of the
/// serving plane's control endpoints (`/reloadz`, `/quitz`).
///
/// # Errors
///
/// Same contract as [`http_get`].
pub fn http_post(addr: &str, path: &str, timeout: Duration) -> Result<(u16, String), LiveError> {
    request(addr, "POST", path, timeout)
}

/// A full client-side view of an HTTP response: status, the header
/// fields (names lowercased), and the body.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Numeric status code from the status line.
    pub status: u16,
    /// Response header fields in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Everything after the blank line.
    pub body: String,
}

impl HttpResponse {
    /// Returns the value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }
}

/// Like [`http_get`] but with caller-supplied request headers and full
/// response-header capture — the trace-aware request path (`ppm
/// loadtest` sending `X-Ppm-Trace`, checking the echo).
///
/// # Errors
///
/// Same contract as [`http_get`].
pub fn http_request_full(
    addr: &str,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    timeout: Duration,
) -> Result<HttpResponse, LiveError> {
    let mut last_io = LiveError::Io(format!("no usable address for {addr}"));
    let targets = addr
        .to_socket_addrs()
        .map_err(|e| LiveError::Io(format!("cannot resolve {addr}: {e}")))?;
    for target in targets {
        match TcpStream::connect_timeout(&target, timeout) {
            Ok(stream) => return fetch(stream, addr, method, path, extra_headers, timeout),
            Err(e) => last_io = LiveError::Io(format!("cannot connect to {target}: {e}")),
        }
    }
    Err(last_io)
}

fn request(
    addr: &str,
    method: &str,
    path: &str,
    timeout: Duration,
) -> Result<(u16, String), LiveError> {
    http_request_full(addr, method, path, &[], timeout).map(|r| (r.status, r.body))
}

fn fetch(
    mut stream: TcpStream,
    addr: &str,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    timeout: Duration,
) -> Result<HttpResponse, LiveError> {
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| LiveError::Io(e.to_string()))?;
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    for (name, value) in extra_headers {
        request.push_str(name);
        request.push_str(": ");
        request.push_str(value);
        request.push_str("\r\n");
    }
    request.push_str("\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| LiveError::Io(format!("request write failed: {e}")))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| LiveError::Io(format!("response read failed: {e}")))?;
    parse_response(&raw)
}

/// Splits a raw HTTP/1.1 response into status, headers, and body.
fn parse_response(raw: &str) -> Result<HttpResponse, LiveError> {
    let status_line = raw
        .lines()
        .next()
        .ok_or_else(|| LiveError::Malformed("empty response".to_string()))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| LiveError::Malformed(format!("bad status line: {status_line}")))?;
    let (head, body) = match raw.find("\r\n\r\n") {
        Some(at) => (&raw[..at], &raw[at + 4..]),
        None => match raw.find("\n\n") {
            Some(at) => (&raw[..at], &raw[at + 2..]),
            None => (raw, ""),
        },
    };
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| {
            let line = line.trim_end_matches('\r');
            line.split_once(':')
                .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_headers_and_body() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\
                   X-Ppm-Trace: t-9\r\n\r\nhello\nworld\n";
        let resp = parse_response(raw).expect("valid response");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "hello\nworld\n");
        assert_eq!(resp.header("x-ppm-trace"), Some("t-9"));
        assert_eq!(resp.header("Content-Type"), Some("text/plain"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse_response("not http at all"),
            Err(LiveError::Malformed(_))
        ));
        assert!(matches!(parse_response(""), Err(LiveError::Malformed(_))));
    }

    #[test]
    fn connect_to_dead_port_is_io_error() {
        // Bind then drop a listener to find a port that refuses.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").port()
        };
        let err = http_get(
            &format!("127.0.0.1:{port}"),
            "/metrics",
            Duration::from_millis(300),
        )
        .expect_err("nothing listening");
        assert!(matches!(err, LiveError::Io(_)), "{err:?}");
    }
}
