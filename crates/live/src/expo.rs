//! Prometheus text-exposition rendering of registry snapshots.

use ppm_telemetry::{MetricKind, MetricRecord};

/// Maps a dotted registry name onto the exported Prometheus name:
/// `ppm_` + the name with every non-alphanumeric character replaced by
/// `_` (`exec.rbf_grid.ms` → `ppm_exec_rbf_grid_ms`). Units stay where
/// the registry put them — as the trailing name segment.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("ppm_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Splits a registry name carrying the label convention
/// `base|key=value|key2=value2` into the base name and its label pairs.
/// Plain names come back with no labels. `|` sorts after every ASCII
/// alphanumeric, so in a sorted snapshot the unlabeled aggregate
/// (`serve.shed`) always precedes its labeled variants
/// (`serve.shed|reason=...`) — one `# HELP`/`# TYPE` header covers the
/// family.
pub fn split_labels(name: &str) -> (&str, Vec<(&str, &str)>) {
    let mut parts = name.split('|');
    let base = parts.next().unwrap_or(name);
    let labels = parts
        .filter_map(|kv| kv.split_once('='))
        .collect::<Vec<_>>();
    (base, labels)
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn render_label_set(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body = labels
        .iter()
        .map(|(k, v)| {
            format!(
                "{}=\"{}\"",
                prometheus_name(k).trim_start_matches("ppm_"),
                escape_label_value(v)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{body}}}")
}

/// Renders a snapshot as Prometheus text exposition (version 0.0.4):
/// `# HELP` / `# TYPE` headers, counters and gauges as single samples,
/// histograms as cumulative `_bucket{le=...}` series plus `_sum` and
/// `_count`, with a final `+Inf` bucket. Quantiles ride along as
/// `{quantile="..."}`-labelled gauges of the base name, the classic
/// summary-style rendering scrape consumers understand.
///
/// Registry names using the `base|key=value` convention render as
/// labeled series of the base family (`serve.shed|reason=deadline` →
/// `ppm_serve_shed{reason="deadline"}`), sharing one header with the
/// unlabeled aggregate. Histogram exemplars (see
/// [`ppm_telemetry::Histogram::record_tagged`]) render as `# EXEMPLAR`
/// comment lines — parser-safe for consumers that only understand
/// 0.0.4, still greppable for the trace ID of the window's worst
/// request.
pub fn render_prometheus(snapshot: &[MetricRecord]) -> String {
    let mut out = String::with_capacity(snapshot.len() * 96 + 64);
    let mut last_family: Option<(MetricKind, String)> = None;
    for m in snapshot {
        let (base, labels) = split_labels(&m.name);
        let name = prometheus_name(base);
        let label_set = render_label_set(&labels);
        let family = (m.kind, name.clone());
        let new_family = last_family.as_ref() != Some(&family);
        last_family = Some(family);
        match m.kind {
            MetricKind::Counter => {
                if new_family {
                    out.push_str(&format!("# HELP {name} ppm counter {base}\n"));
                    out.push_str(&format!("# TYPE {name} counter\n"));
                }
                out.push_str(&format!("{name}{label_set} {}\n", m.value.unwrap_or(0)));
            }
            MetricKind::Gauge => {
                if new_family {
                    out.push_str(&format!("# HELP {name} ppm gauge {base}\n"));
                    out.push_str(&format!("# TYPE {name} gauge\n"));
                }
                let v = m.gauge.unwrap_or(0.0);
                if v.is_finite() {
                    out.push_str(&format!("{name}{label_set} {v}\n"));
                } else {
                    out.push_str(&format!("{name}{label_set} NaN\n"));
                }
            }
            MetricKind::Histogram => {
                let (count, sum, _min, _max, p50, p95, p99) =
                    m.hist.unwrap_or((0, 0, 0, 0, 0, 0, 0));
                if new_family {
                    out.push_str(&format!("# HELP {name} ppm histogram {base}\n"));
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                }
                if let Some(buckets) = &m.buckets {
                    for (le, cum) in buckets {
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
                    }
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
                out.push_str(&format!("{name}_sum {sum}\n"));
                out.push_str(&format!("{name}_count {count}\n"));
                for (q, v) in [("0.5", p50), ("0.95", p95), ("0.99", p99)] {
                    out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
                }
                if let Some((v, tag)) = &m.exemplar {
                    out.push_str(&format!(
                        "# EXEMPLAR {name} trace_id=\"{}\" value={v}\n",
                        escape_label_value(tag)
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_follow_the_ppm_convention() {
        assert_eq!(prometheus_name("sim.batch_points"), "ppm_sim_batch_points");
        assert_eq!(
            prometheus_name("span.stage.simulation.us"),
            "ppm_span_stage_simulation_us"
        );
        assert_eq!(prometheus_name("exec.rbf-grid.ms"), "ppm_exec_rbf_grid_ms");
    }

    #[test]
    fn split_labels_decodes_the_pipe_convention() {
        assert_eq!(split_labels("serve.shed"), ("serve.shed", vec![]));
        assert_eq!(
            split_labels("serve.shed|reason=queue_full"),
            ("serve.shed", vec![("reason", "queue_full")])
        );
        assert_eq!(
            split_labels("x|a=1|b=2"),
            ("x", vec![("a", "1"), ("b", "2")])
        );
    }

    #[test]
    fn exposition_renders_all_three_kinds() {
        let r = ppm_telemetry::Registry::new();
        r.counter("live.hits").add(3);
        r.gauge("exec.workers").set(4.0);
        let h = r.histogram("span.stage.sim.us");
        h.record(5);
        h.record(100);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE ppm_live_hits counter\nppm_live_hits 3\n"));
        assert!(text.contains("# TYPE ppm_exec_workers gauge\nppm_exec_workers 4\n"));
        assert!(text.contains("# TYPE ppm_span_stage_sim_us histogram\n"));
        assert!(text.contains("ppm_span_stage_sim_us_bucket{le=\"5\"} 1\n"));
        assert!(text.contains("ppm_span_stage_sim_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("ppm_span_stage_sim_us_sum 105\n"));
        assert!(text.contains("ppm_span_stage_sim_us_count 2\n"));
        assert!(text.contains("ppm_span_stage_sim_us{quantile=\"0.5\"}"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value == "NaN" || value.parse::<f64>().is_ok(),
                "unparseable value in line: {line}"
            );
            assert!(parts.next().unwrap().starts_with("ppm_"), "{line}");
        }
    }

    #[test]
    fn labeled_series_share_one_header_with_the_aggregate() {
        let r = ppm_telemetry::Registry::new();
        r.counter("serve.shed").add(5);
        r.counter("serve.shed|reason=deadline").add(2);
        r.counter("serve.shed|reason=queue_full").add(3);
        let text = render_prometheus(&r.snapshot());
        // One header for the family, aggregate first, then labeled.
        assert_eq!(text.matches("# TYPE ppm_serve_shed counter").count(), 1);
        let agg = text.find("ppm_serve_shed 5\n").expect("aggregate");
        let lab = text
            .find("ppm_serve_shed{reason=\"deadline\"} 2\n")
            .expect("labeled");
        assert!(agg < lab, "aggregate must precede labeled series");
        assert!(text.contains("ppm_serve_shed{reason=\"queue_full\"} 3\n"));
        // Labeled lines still parse as `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn exemplars_render_as_comment_lines() {
        let r = ppm_telemetry::Registry::new();
        r.histogram("serve.latency.us")
            .record_tagged(950, "ppm-00000000002a");
        let text = render_prometheus(&r.snapshot());
        assert!(
            text.contains(
                "# EXEMPLAR ppm_serve_latency_us trace_id=\"ppm-00000000002a\" value=950\n"
            ),
            "{text}"
        );
        // Exemplars never break the `name value` sample grammar.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn empty_histogram_still_has_inf_bucket_and_zero_count() {
        let r = ppm_telemetry::Registry::new();
        r.histogram("span.stage.idle.us");
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("ppm_span_stage_idle_us_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("ppm_span_stage_idle_us_count 0\n"));
    }
}
