//! Prometheus text-exposition rendering of registry snapshots.

use ppm_telemetry::{MetricKind, MetricRecord};

/// Maps a dotted registry name onto the exported Prometheus name:
/// `ppm_` + the name with every non-alphanumeric character replaced by
/// `_` (`exec.rbf_grid.ms` → `ppm_exec_rbf_grid_ms`). Units stay where
/// the registry put them — as the trailing name segment.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("ppm_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a snapshot as Prometheus text exposition (version 0.0.4):
/// `# HELP` / `# TYPE` headers, counters and gauges as single samples,
/// histograms as cumulative `_bucket{le=...}` series plus `_sum` and
/// `_count`, with a final `+Inf` bucket. Quantiles ride along as
/// `{quantile="..."}`-labelled gauges of the base name, the classic
/// summary-style rendering scrape consumers understand.
pub fn render_prometheus(snapshot: &[MetricRecord]) -> String {
    let mut out = String::with_capacity(snapshot.len() * 96 + 64);
    for m in snapshot {
        let name = prometheus_name(&m.name);
        match m.kind {
            MetricKind::Counter => {
                out.push_str(&format!("# HELP {name} ppm counter {}\n", m.name));
                out.push_str(&format!("# TYPE {name} counter\n"));
                out.push_str(&format!("{name} {}\n", m.value.unwrap_or(0)));
            }
            MetricKind::Gauge => {
                out.push_str(&format!("# HELP {name} ppm gauge {}\n", m.name));
                out.push_str(&format!("# TYPE {name} gauge\n"));
                let v = m.gauge.unwrap_or(0.0);
                if v.is_finite() {
                    out.push_str(&format!("{name} {v}\n"));
                } else {
                    out.push_str(&format!("{name} NaN\n"));
                }
            }
            MetricKind::Histogram => {
                let (count, sum, _min, _max, p50, p95, p99) =
                    m.hist.unwrap_or((0, 0, 0, 0, 0, 0, 0));
                out.push_str(&format!("# HELP {name} ppm histogram {}\n", m.name));
                out.push_str(&format!("# TYPE {name} histogram\n"));
                if let Some(buckets) = &m.buckets {
                    for (le, cum) in buckets {
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
                    }
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
                out.push_str(&format!("{name}_sum {sum}\n"));
                out.push_str(&format!("{name}_count {count}\n"));
                for (q, v) in [("0.5", p50), ("0.95", p95), ("0.99", p99)] {
                    out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_follow_the_ppm_convention() {
        assert_eq!(prometheus_name("sim.batch_points"), "ppm_sim_batch_points");
        assert_eq!(
            prometheus_name("span.stage.simulation.us"),
            "ppm_span_stage_simulation_us"
        );
        assert_eq!(prometheus_name("exec.rbf-grid.ms"), "ppm_exec_rbf_grid_ms");
    }

    #[test]
    fn exposition_renders_all_three_kinds() {
        let r = ppm_telemetry::Registry::new();
        r.counter("live.hits").add(3);
        r.gauge("exec.workers").set(4.0);
        let h = r.histogram("span.stage.sim.us");
        h.record(5);
        h.record(100);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE ppm_live_hits counter\nppm_live_hits 3\n"));
        assert!(text.contains("# TYPE ppm_exec_workers gauge\nppm_exec_workers 4\n"));
        assert!(text.contains("# TYPE ppm_span_stage_sim_us histogram\n"));
        assert!(text.contains("ppm_span_stage_sim_us_bucket{le=\"5\"} 1\n"));
        assert!(text.contains("ppm_span_stage_sim_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("ppm_span_stage_sim_us_sum 105\n"));
        assert!(text.contains("ppm_span_stage_sim_us_count 2\n"));
        assert!(text.contains("ppm_span_stage_sim_us{quantile=\"0.5\"}"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value == "NaN" || value.parse::<f64>().is_ok(),
                "unparseable value in line: {line}"
            );
            assert!(parts.next().unwrap().starts_with("ppm_"), "{line}");
        }
    }

    #[test]
    fn empty_histogram_still_has_inf_bucket_and_zero_count() {
        let r = ppm_telemetry::Registry::new();
        r.histogram("span.stage.idle.us");
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("ppm_span_stage_idle_us_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("ppm_span_stage_idle_us_count 0\n"));
    }
}
