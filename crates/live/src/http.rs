//! Shared HTTP/1.1 plumbing for the workspace's zero-dependency
//! servers: the live observability plane (`crates/live`) and the
//! prediction service (`crates/serve`).
//!
//! This is deliberately a minimal subset — one request per connection,
//! `Connection: close`, bounded heads — because both servers only need
//! to survive scrapers, load generators, and misbehaving clients, not
//! implement the RFC. All functions return `String` errors so callers
//! can fold them into their own counters without caring about the
//! distinction between "peer vanished" and "peer sent garbage".

use std::io::{Read, Write};
use std::net::TcpStream;

/// Default upper bound on the request head either server will buffer.
pub const MAX_HEAD: usize = 8 * 1024;

/// A parsed request head: the request line plus the header fields that
/// followed it, kept as `(lowercased-name, value)` pairs so lookups are
/// case-insensitive without allocating per query.
#[derive(Debug, Clone)]
pub struct RequestHead {
    /// The trimmed request line, e.g. `GET /predict?rob=64 HTTP/1.1`.
    pub line: String,
    /// Header fields in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
}

impl RequestHead {
    /// Returns the value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads the request head (everything up to the blank line), bounding
/// the buffered size by `max_head`; the caller bounds time via the
/// stream's read timeout. Returns the first line (the request line).
///
/// # Errors
///
/// A human-readable description when the peer disconnects, stalls past
/// the socket timeout, sends an oversized head, or sends an empty
/// request line.
pub fn read_head(stream: &mut TcpStream, max_head: usize) -> Result<String, String> {
    read_request_head(stream, max_head).map(|head| head.line)
}

/// Like [`read_head`] but keeps the header fields too, for servers that
/// honor request metadata such as the `X-Ppm-Trace` trace-context
/// header. Same bounds and error contract as [`read_head`].
///
/// # Errors
///
/// Same contract as [`read_head`].
pub fn read_request_head(stream: &mut TcpStream, max_head: usize) -> Result<RequestHead, String> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed before request completed".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() > max_head {
            return Err(format!("request head exceeds {max_head} bytes"));
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let mut lines = text.lines();
    let line = match lines.next() {
        Some(line) if !line.trim().is_empty() => line.trim().to_string(),
        _ => return Err("empty request line".to_string()),
    };
    let mut headers = Vec::new();
    for raw in lines {
        let raw = raw.trim_end_matches('\r');
        if raw.is_empty() {
            break;
        }
        if let Some((name, value)) = raw.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok(RequestHead { line, headers })
}

/// The standard reason phrase for the status codes these servers emit.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

/// Writes a complete HTTP/1.1 response (`Connection: close`).
///
/// # Errors
///
/// A human-readable description when the peer stops reading mid-write.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> Result<(), String> {
    write_response_with_headers(stream, status, content_type, &[], body)
}

/// Like [`write_response`] but with extra response headers (name, value)
/// ahead of the body — used to echo the `X-Ppm-Trace` trace context.
///
/// # Errors
///
/// Same contract as [`write_response`].
pub fn write_response_with_headers(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &str,
) -> Result<(), String> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .map_err(|e| e.to_string())?;
    stream
        .write_all(body.as_bytes())
        .map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())
}

/// Splits a request-line path into `(route, query pairs)`:
/// `"/predict?rob=64&deadline_ms=50"` becomes
/// `("/predict", [("rob", "64"), ("deadline_ms", "50")])`. No
/// percent-decoding — the serving query surface is plain numerals.
pub fn split_query(path: &str) -> (&str, Vec<(&str, &str)>) {
    match path.split_once('?') {
        None => (path, Vec::new()),
        Some((route, query)) => {
            let pairs = query
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| kv.split_once('=').unwrap_or((kv, "")))
                .collect();
            (route, pairs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_query_handles_bare_and_paired_params() {
        assert_eq!(split_query("/predict"), ("/predict", vec![]));
        let (route, pairs) = split_query("/predict?rob=64&flag&x=");
        assert_eq!(route, "/predict");
        assert_eq!(pairs, vec![("rob", "64"), ("flag", ""), ("x", "")]);
    }

    #[test]
    fn request_head_lookup_is_case_insensitive() {
        let head = RequestHead {
            line: "GET /predict HTTP/1.1".to_string(),
            headers: vec![
                ("host".to_string(), "ppm".to_string()),
                ("x-ppm-trace".to_string(), "abc-7".to_string()),
            ],
        };
        assert_eq!(head.header("X-Ppm-Trace"), Some("abc-7"));
        assert_eq!(head.header("HOST"), Some("ppm"));
        assert_eq!(head.header("x-missing"), None);
    }

    #[test]
    fn full_head_reader_captures_headers() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"GET /p?x=1 HTTP/1.1\r\nHost: ppm\r\nX-Ppm-Trace: t-42\r\n\r\n")
                .expect("write");
            s
        });
        let (mut stream, _) = listener.accept().expect("accept");
        let head = read_request_head(&mut stream, MAX_HEAD).expect("head");
        assert_eq!(head.line, "GET /p?x=1 HTTP/1.1");
        assert_eq!(head.header("x-ppm-trace"), Some("t-42"));
        drop(writer.join());
    }

    #[test]
    fn reasons_cover_the_served_statuses() {
        for status in [200, 400, 404, 405, 409, 500, 503] {
            assert_ne!(reason(status), "Error", "status {status}");
        }
        assert_eq!(reason(418), "Error");
    }
}
