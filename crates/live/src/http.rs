//! Shared HTTP/1.1 plumbing for the workspace's zero-dependency
//! servers: the live observability plane (`crates/live`) and the
//! prediction service (`crates/serve`).
//!
//! This is deliberately a minimal subset — one request per connection,
//! `Connection: close`, bounded heads — because both servers only need
//! to survive scrapers, load generators, and misbehaving clients, not
//! implement the RFC. All functions return `String` errors so callers
//! can fold them into their own counters without caring about the
//! distinction between "peer vanished" and "peer sent garbage".

use std::io::{Read, Write};
use std::net::TcpStream;

/// Default upper bound on the request head either server will buffer.
pub const MAX_HEAD: usize = 8 * 1024;

/// Reads the request head (everything up to the blank line), bounding
/// the buffered size by `max_head`; the caller bounds time via the
/// stream's read timeout. Returns the first line (the request line).
///
/// # Errors
///
/// A human-readable description when the peer disconnects, stalls past
/// the socket timeout, sends an oversized head, or sends an empty
/// request line.
pub fn read_head(stream: &mut TcpStream, max_head: usize) -> Result<String, String> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed before request completed".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() > max_head {
            return Err(format!("request head exceeds {max_head} bytes"));
        }
    }
    let text = String::from_utf8_lossy(&buf);
    match text.lines().next() {
        Some(line) if !line.trim().is_empty() => Ok(line.trim().to_string()),
        _ => Err("empty request line".to_string()),
    }
}

/// The standard reason phrase for the status codes these servers emit.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

/// Writes a complete HTTP/1.1 response (`Connection: close`).
///
/// # Errors
///
/// A human-readable description when the peer stops reading mid-write.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> Result<(), String> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .map_err(|e| e.to_string())?;
    stream
        .write_all(body.as_bytes())
        .map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())
}

/// Splits a request-line path into `(route, query pairs)`:
/// `"/predict?rob=64&deadline_ms=50"` becomes
/// `("/predict", [("rob", "64"), ("deadline_ms", "50")])`. No
/// percent-decoding — the serving query surface is plain numerals.
pub fn split_query(path: &str) -> (&str, Vec<(&str, &str)>) {
    match path.split_once('?') {
        None => (path, Vec::new()),
        Some((route, query)) => {
            let pairs = query
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| kv.split_once('=').unwrap_or((kv, "")))
                .collect();
            (route, pairs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_query_handles_bare_and_paired_params() {
        assert_eq!(split_query("/predict"), ("/predict", vec![]));
        let (route, pairs) = split_query("/predict?rob=64&flag&x=");
        assert_eq!(route, "/predict");
        assert_eq!(pairs, vec![("rob", "64"), ("flag", ""), ("x", "")]);
    }

    #[test]
    fn reasons_cover_the_served_statuses() {
        for status in [200, 400, 404, 405, 409, 500, 503] {
            assert_ne!(reason(status), "Error", "status {status}");
        }
        assert_eq!(reason(418), "Error");
    }
}
