//! # ppm-live
//!
//! An in-process observability plane: a zero-dependency background HTTP
//! endpoint that exposes the telemetry registry and build progress of a
//! *running* pipeline, plus the terminal client behind `ppm top`.
//!
//! The rest of the workspace's observability is post-hoc — ledgers and
//! traces are readable only after a run finishes. This crate is the
//! live half: a std `TcpListener` accept loop on a dedicated thread
//! serving a minimal HTTP/1.1 subset with three routes:
//!
//! | route | payload |
//! |-------|---------|
//! | `GET /metrics` | Prometheus text exposition of every counter, gauge, and histogram (with cumulative buckets) |
//! | `GET /buildz`  | `ppm-buildz v1` JSON: current stage, points planned/done, retries, quarantines, ETA |
//! | `GET /eventz`  | `ppm-eventz v1` JSON: the bounded ring of recent leveled events |
//!
//! Metric names follow the `ppm_<crate>_<name>{unit}` convention: the
//! registry's dotted names are prefixed with `ppm_` and every
//! non-alphanumeric character becomes `_`, so `sim.batch_points`
//! exports as `ppm_sim_batch_points` and the unit suffix already
//! embedded in histogram names (`span.stage.simulation.us`) survives as
//! `ppm_span_stage_simulation_us`.
//!
//! The server is deliberately single-threaded (scrapes are rare and
//! cheap), never panics on client misbehaviour — malformed requests and
//! mid-response disconnects become the `live.client_errors` counter and
//! a `Level::Warn` event — and shuts down cleanly when the
//! [`LiveServer`] handle drops. This is the exact exposition surface a
//! future `ppm serve` mounts.

mod buildz;
mod client;
mod expo;
pub mod http;
mod server;
mod top;

pub use buildz::render_buildz;
pub use client::{http_get, http_post, http_request_full, HttpResponse};
pub use expo::{render_prometheus, split_labels};
pub use server::LiveServer;
pub use top::{fetch_top, render_frame, ServeView, SloWindowView, TopSnapshot, TopState};

use std::fmt;
use std::sync::Arc;

use ppm_telemetry::{MetricRecord, Registry};

/// Errors from the live plane: binding, serving, and polling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LiveError {
    /// The listen address could not be bound (in use, no permission,
    /// unparseable).
    Bind {
        /// The address that was requested.
        addr: String,
        /// The OS-level detail.
        detail: String,
    },
    /// A client-side socket operation failed (connect, read, write).
    Io(String),
    /// The endpoint answered with a non-200 status.
    Http {
        /// The status code received.
        status: u16,
        /// The response body (or reason) for diagnosis.
        detail: String,
    },
    /// The response was not the expected shape (bad JSON, missing
    /// header, truncated exposition).
    Malformed(String),
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Bind { addr, detail } => {
                write!(f, "cannot bind live plane on {addr}: {detail}")
            }
            LiveError::Io(detail) => write!(f, "live plane I/O failed: {detail}"),
            LiveError::Http { status, detail } => {
                write!(f, "live plane answered {status}: {detail}")
            }
            LiveError::Malformed(detail) => write!(f, "malformed live response: {detail}"),
        }
    }
}

impl std::error::Error for LiveError {}

/// Where the server reads instruments from: the process-global registry
/// (the CLI's case) or a shared handle (tests with scoped registries).
#[derive(Debug, Clone, Default)]
pub enum RegistrySource {
    /// The global [`ppm_telemetry::registry`].
    #[default]
    Global,
    /// An explicit registry handle.
    Shared(Arc<Registry>),
}

impl RegistrySource {
    /// Snapshots every instrument from the selected registry.
    pub fn snapshot(&self) -> Vec<MetricRecord> {
        match self {
            RegistrySource::Global => ppm_telemetry::registry().snapshot(),
            RegistrySource::Shared(r) => r.snapshot(),
        }
    }
}
