//! The accept loop: a minimal HTTP/1.1 server on a dedicated thread.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ppm_telemetry::{EventRing, Level};

use crate::http::{read_head, write_response, MAX_HEAD};
use crate::{buildz, expo, LiveError, RegistrySource};

/// Per-connection socket budget: a scraper that cannot send a request
/// line or drain a response in this window is dropped.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running live-plane endpoint. Dropping the handle (or calling
/// [`LiveServer::shutdown`]) stops the accept loop and joins its
/// thread; in-flight responses finish first.
#[derive(Debug)]
pub struct LiveServer {
    addr: SocketAddr,
    // atomic-policy(stop): Release, Acquire — shutdown() publishes the
    // flag with Release so the accept loop's Acquire load also observes
    // any state written before the shutdown request.
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl LiveServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving `/metrics`, `/buildz`, and `/eventz` on a
    /// background thread. `source` selects the registry the routes
    /// snapshot; `ring` is the event buffer behind `/eventz` (install a
    /// clone of it as a telemetry sink to populate it).
    ///
    /// # Errors
    ///
    /// [`LiveError::Bind`] when the address cannot be bound or parsed.
    pub fn start(addr: &str, source: RegistrySource, ring: EventRing) -> Result<Self, LiveError> {
        let listener = TcpListener::bind(addr).map_err(|e| LiveError::Bind {
            addr: addr.to_string(),
            detail: e.to_string(),
        })?;
        let local = listener.local_addr().map_err(|e| LiveError::Bind {
            addr: addr.to_string(),
            detail: e.to_string(),
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ppm-live".to_string())
            .spawn(move || accept_loop(&listener, &stop_thread, &source, &ring))
            .map_err(|e| LiveError::Bind {
                addr: addr.to_string(),
                detail: format!("cannot spawn accept thread: {e}"),
            })?;
        Ok(LiveServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The actually bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection; if even
        // that fails the listener is already dead and join will return.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    source: &RegistrySource,
    ring: &EventRing,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match conn {
            Ok(stream) => handle_connection(stream, source, ring),
            Err(e) => client_error("accept", &e.to_string()),
        }
    }
}

/// Records a client-side failure: typed counter plus a `Warn` event.
/// Client misbehaviour (disconnects mid-response, garbage requests)
/// must never take down the accept thread.
fn client_error(op: &str, detail: &str) {
    ppm_telemetry::counter("live.client_errors").inc();
    ppm_telemetry::event!(
        Level::Warn,
        "live.client_error",
        "op" => op,
        "detail" => detail,
    );
}

fn handle_connection(mut stream: TcpStream, source: &RegistrySource, ring: &EventRing) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let head = match read_head(&mut stream, MAX_HEAD) {
        Ok(head) => head,
        Err(detail) => {
            client_error("read", &detail);
            // Best-effort 400; the peer may already be gone.
            let _ = write_response(&mut stream, 400, "text/plain", "bad request\n");
            return;
        }
    };
    let (status, content_type, body) = route(&head, source, ring);
    if let Err(detail) = write_response(&mut stream, status, content_type, &body) {
        client_error("write", &detail);
    }
}

/// Dispatches one request line to a route, returning
/// `(status, content-type, body)`.
fn route(
    request_line: &str,
    source: &RegistrySource,
    ring: &EventRing,
) -> (u16, &'static str, String) {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return (
            405,
            "text/plain",
            format!("method {method} not allowed; this endpoint is GET-only\n"),
        );
    }
    match path {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4",
            expo::render_prometheus(&source.snapshot()),
        ),
        "/buildz" => (
            200,
            "application/json",
            buildz::render_buildz(&source.snapshot()),
        ),
        "/eventz" => (200, "application/json", ring.render_json()),
        "/" => (
            200,
            "text/plain",
            "ppm live plane: /metrics /buildz /eventz\n".to_string(),
        ),
        other => (404, "text/plain", format!("no route {other}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::http_get;
    use ppm_obs::Json;
    use std::io::{Read, Write};
    use std::sync::Arc as StdArc;

    fn scoped_server() -> (LiveServer, StdArc<ppm_telemetry::Registry>, EventRing) {
        let registry = StdArc::new(ppm_telemetry::Registry::new());
        let ring = EventRing::new(16);
        let server = LiveServer::start(
            "127.0.0.1:0",
            RegistrySource::Shared(StdArc::clone(&registry)),
            ring.clone(),
        )
        .expect("bind ephemeral port");
        (server, registry, ring)
    }

    #[test]
    fn serves_metrics_buildz_and_eventz() {
        let (server, registry, ring) = scoped_server();
        registry.counter("live.test_hits").add(7);
        {
            let mut writer = ring.clone();
            use ppm_telemetry::{Record, Sink, Value};
            writer.record(&Record::Event {
                name: "t.ring".into(),
                level: Level::Warn,
                fields: vec![("k".into(), Value::from(1u64))],
                depth: 0,
            });
        }
        let addr = server.addr().to_string();
        let (status, body) = http_get(&addr, "/metrics", IO_TIMEOUT).expect("scrape metrics");
        assert_eq!(status, 200);
        assert!(body.contains("ppm_live_test_hits 7\n"), "{body}");
        let (status, body) = http_get(&addr, "/buildz", IO_TIMEOUT).expect("scrape buildz");
        assert_eq!(status, 200);
        let doc = Json::parse(&body).expect("buildz is JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("ppm-buildz v1")
        );
        let (status, body) = http_get(&addr, "/eventz", IO_TIMEOUT).expect("scrape eventz");
        assert_eq!(status, 200);
        let doc = Json::parse(&body).expect("eventz is JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("ppm-eventz v1")
        );
        assert!(body.contains("t.ring"));
    }

    #[test]
    fn unknown_route_is_404_and_post_is_405() {
        let (server, _registry, _ring) = scoped_server();
        let addr = server.addr().to_string();
        let (status, _) = http_get(&addr, "/nope", IO_TIMEOUT).expect("404 response");
        assert_eq!(status, 404);
        // A raw POST through a plain socket.
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("send");
        let mut text = String::new();
        let _ = stream.read_to_string(&mut text);
        assert!(text.starts_with("HTTP/1.1 405"), "{text}");
    }

    #[test]
    fn garbage_and_disconnects_count_as_client_errors_not_panics() {
        let (server, _registry, _ring) = scoped_server();
        let before = ppm_telemetry::registry()
            .counter("live.client_errors")
            .get();
        // A connection that closes without sending anything.
        drop(TcpStream::connect(server.addr()).expect("connect"));
        // A connection that sends garbage with no request terminator.
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(b"\x00\x01\x02 garbage").expect("send");
        drop(stream);
        // The server must still answer afterwards.
        let addr = server.addr().to_string();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match http_get(&addr, "/buildz", IO_TIMEOUT) {
                Ok((200, _)) => break,
                _ if std::time::Instant::now() > deadline => panic!("server stopped answering"),
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        let after = ppm_telemetry::registry()
            .counter("live.client_errors")
            .get();
        assert!(after >= before + 2, "before={before} after={after}");
    }

    #[test]
    fn bind_failure_is_a_typed_error() {
        let (server, _registry, _ring) = scoped_server();
        let taken = server.addr().to_string();
        let err = LiveServer::start(&taken, RegistrySource::Global, EventRing::new(4))
            .expect_err("address in use");
        match err {
            LiveError::Bind { addr, .. } => assert_eq!(addr, taken),
            other => panic!("wrong error: {other:?}"),
        }
        let nonsense =
            LiveServer::start("not-an-address", RegistrySource::Global, EventRing::new(4));
        assert!(matches!(nonsense, Err(LiveError::Bind { .. })));
    }

    #[test]
    fn shutdown_joins_and_stops_accepting() {
        let (mut server, _registry, _ring) = scoped_server();
        let addr = server.addr();
        server.shutdown();
        // The listener is gone: connects are refused (or at least no
        // longer answered).
        let res = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
        assert!(res.is_err(), "server still accepting after shutdown");
    }
}
