//! The data and rendering layer behind `ppm top`: poll a live plane,
//! compute a completion rate, and draw one terminal frame.

use std::time::Duration;

use ppm_obs::Json;

use crate::client::http_get;
use crate::LiveError;

/// One poll of a live endpoint: the `/buildz` progress document plus
/// the recent quarantine events from `/eventz`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopSnapshot {
    /// Innermost open `stage.*` span, if any.
    pub stage: Option<String>,
    /// Milliseconds since the process's telemetry epoch.
    pub elapsed_ms: u64,
    /// Points planned across all batches so far.
    pub planned: u64,
    /// Points finished (including resumed and quarantined ones).
    pub done: u64,
    /// Points served from a checkpoint.
    pub resumed: u64,
    /// Total supervisor retries.
    pub retries: u64,
    /// Total quarantined points.
    pub quarantined: u64,
    /// Workers currently inside executor shards.
    pub workers_live: f64,
    /// Estimated milliseconds to completion, when computable.
    pub eta_ms: Option<u64>,
    /// Human-readable recent quarantine descriptions, oldest first.
    pub quarantine_log: Vec<String>,
    /// Populated instead of the build fields when the polled endpoint
    /// is a serving plane (`/buildz` 404s but `/statusz` answers).
    pub serve: Option<ServeView>,
}

/// One SLO burn-rate window as reported by the serving plane.
#[derive(Debug, Clone, PartialEq)]
pub struct SloWindowView {
    /// Window length in seconds (5, 60, or 300).
    pub window_s: u64,
    /// Requests observed inside the window.
    pub total: u64,
    /// Availability error-budget burn rate (1.0 = burning exactly at
    /// the objective; above 1.0 the budget shrinks).
    pub availability_burn: f64,
    /// Latency error-budget burn rate.
    pub latency_burn: f64,
}

/// The serving plane's `/statusz` condensed for a `ppm top` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeView {
    /// Version string of the model currently answering `/predict`.
    pub model_version: String,
    /// Lifetime request count.
    pub requests: u64,
    /// Lifetime 200s.
    pub ok: u64,
    /// Lifetime sheds (queue-full refusals).
    pub shed: u64,
    /// Lifetime degraded (analytical-fallback) answers.
    pub degraded: u64,
    /// Lifetime deadline expiries.
    pub deadline_exceeded: u64,
    /// Requests queued right now.
    pub queued: u64,
    /// Worker threads.
    pub workers: u64,
    /// Whether the service is sticky-degraded (model failing).
    pub sticky_degraded: bool,
    /// Whether request tracing is on.
    pub trace_enabled: bool,
    /// Trace records currently retained in the ring.
    pub trace_retained: u64,
    /// Fraction of the 5-minute availability error budget left
    /// (negative when overspent).
    pub availability_budget_remaining: f64,
    /// Fraction of the 5-minute latency error budget left.
    pub latency_budget_remaining: f64,
    /// Burn-rate windows, shortest first.
    pub windows: Vec<SloWindowView>,
}

fn u64_field(doc: &Json, key: &str) -> u64 {
    doc.get(key)
        .and_then(Json::as_i64)
        .map(|v| v.max(0) as u64)
        .unwrap_or(0)
}

/// Polls `addr`'s `/buildz` and `/eventz` routes and assembles a
/// [`TopSnapshot`].
///
/// # Errors
///
/// [`LiveError::Io`] / [`LiveError::Http`] when the endpoint is
/// unreachable or unhappy, [`LiveError::Malformed`] when a payload does
/// not parse as the expected schema.
pub fn fetch_top(addr: &str, timeout: Duration) -> Result<TopSnapshot, LiveError> {
    let (status, body) = http_get(addr, "/buildz", timeout)?;
    if status == 404 {
        // Not a build plane. A serving plane has no /buildz but does
        // have /statusz — fall back to the serve view.
        return fetch_serve_top(addr, timeout);
    }
    if status != 200 {
        return Err(LiveError::Http {
            status,
            detail: body,
        });
    }
    let doc = Json::parse(&body)
        .map_err(|e| LiveError::Malformed(format!("/buildz is not JSON: {e}")))?;
    if doc.get("schema").and_then(Json::as_str) != Some("ppm-buildz v1") {
        return Err(LiveError::Malformed(
            "/buildz missing `ppm-buildz v1` schema header".to_string(),
        ));
    }
    let points = doc.get("points").cloned().unwrap_or(Json::Null);
    let mut snap = TopSnapshot {
        stage: doc
            .get("stage")
            .and_then(Json::as_str)
            .map(|s| s.to_string()),
        elapsed_ms: u64_field(&doc, "elapsed_ms"),
        planned: u64_field(&points, "planned"),
        done: u64_field(&points, "done"),
        resumed: u64_field(&points, "resumed"),
        retries: u64_field(&doc, "retries"),
        quarantined: u64_field(&doc, "quarantined"),
        workers_live: doc
            .get("workers_live")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        eta_ms: doc.get("eta_ms").and_then(Json::as_i64).map(|v| v as u64),
        quarantine_log: Vec::new(),
        serve: None,
    };
    // The quarantine list is best-effort colour: a failed /eventz fetch
    // must not blank the whole view.
    if let Ok((200, body)) = http_get(addr, "/eventz", timeout) {
        if let Ok(doc) = Json::parse(&body) {
            if let Some(events) = doc.get("events").and_then(Json::as_arr) {
                for e in events {
                    if e.get("name").and_then(Json::as_str) != Some("robust.quarantine") {
                        continue;
                    }
                    let fields = e.get("fields").cloned().unwrap_or(Json::Null);
                    let index = u64_field(&fields, "index");
                    let fault = fields
                        .get("fault")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown fault")
                        .to_string();
                    snap.quarantine_log.push(format!("point {index}: {fault}"));
                }
            }
        }
    }
    Ok(snap)
}

/// Polls a serving plane's `/statusz` and assembles the serve-flavored
/// [`TopSnapshot`] (build fields zeroed, `serve` populated).
fn fetch_serve_top(addr: &str, timeout: Duration) -> Result<TopSnapshot, LiveError> {
    let (status, body) = http_get(addr, "/statusz", timeout)?;
    if status != 200 {
        return Err(LiveError::Http {
            status,
            detail: body,
        });
    }
    let doc = Json::parse(&body)
        .map_err(|e| LiveError::Malformed(format!("/statusz is not JSON: {e}")))?;
    if doc.get("schema").and_then(Json::as_str) != Some("ppm-statusz v1") {
        return Err(LiveError::Malformed(
            "/statusz missing `ppm-statusz v1` schema header".to_string(),
        ));
    }
    let trace = doc.get("trace").cloned().unwrap_or(Json::Null);
    let slo = doc.get("slo").cloned().unwrap_or(Json::Null);
    let mut windows = Vec::new();
    if let Some(arr) = slo.get("windows").and_then(Json::as_arr) {
        for w in arr {
            windows.push(SloWindowView {
                window_s: u64_field(w, "window_s"),
                total: u64_field(w, "total"),
                availability_burn: w
                    .get("availability_burn")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                latency_burn: w.get("latency_burn").and_then(Json::as_f64).unwrap_or(0.0),
            });
        }
    }
    let view = ServeView {
        model_version: doc
            .get("model_version")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string(),
        requests: u64_field(&doc, "requests"),
        ok: u64_field(&doc, "ok"),
        shed: u64_field(&doc, "shed"),
        degraded: u64_field(&doc, "degraded"),
        deadline_exceeded: u64_field(&doc, "deadline_exceeded"),
        queued: u64_field(&doc, "queued"),
        workers: u64_field(&doc, "workers"),
        sticky_degraded: doc
            .get("sticky_degraded")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        trace_enabled: trace
            .get("enabled")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        trace_retained: u64_field(&trace, "retained"),
        availability_budget_remaining: slo
            .get("availability_budget_remaining")
            .and_then(Json::as_f64)
            .unwrap_or(1.0),
        latency_budget_remaining: slo
            .get("latency_budget_remaining")
            .and_then(Json::as_f64)
            .unwrap_or(1.0),
        windows,
    };
    Ok(TopSnapshot {
        stage: Some("serving".to_string()),
        elapsed_ms: 0,
        planned: 0,
        done: 0,
        resumed: 0,
        retries: 0,
        quarantined: 0,
        workers_live: view.workers as f64,
        eta_ms: None,
        quarantine_log: Vec::new(),
        serve: Some(view),
    })
}

/// Carries the previous poll across frames so the completion rate is a
/// true delta, not a lifetime average.
#[derive(Debug, Default)]
pub struct TopState {
    prev: Option<(u64, u64)>,
}

impl TopState {
    /// A fresh state (first frame shows no rate).
    pub fn new() -> Self {
        TopState::default()
    }

    /// Renders one frame and advances the rate window.
    pub fn frame(&mut self, addr: &str, snap: &TopSnapshot) -> String {
        let qps = match self.prev {
            Some((done, at_ms)) if snap.elapsed_ms > at_ms && snap.done >= done => {
                Some((snap.done - done) as f64 * 1000.0 / (snap.elapsed_ms - at_ms) as f64)
            }
            _ => None,
        };
        self.prev = Some((snap.done, snap.elapsed_ms));
        render_frame(addr, snap, qps)
    }
}

fn fmt_secs(ms: u64) -> String {
    format!("{:.1}s", ms as f64 / 1000.0)
}

/// Draws one `ppm top` frame as plain text: header, stage bar, rate
/// line, and recent quarantines. Pure string assembly — the CLI decides
/// whether to print it once (`--once`) or redraw in a loop.
pub fn render_frame(addr: &str, snap: &TopSnapshot, qps: Option<f64>) -> String {
    if let Some(serve) = &snap.serve {
        return render_serve_frame(addr, serve);
    }
    let mut out = String::with_capacity(512);
    out.push_str(&format!("ppm top — {addr}\n"));
    let stage = snap.stage.as_deref().unwrap_or("idle");
    let eta = match snap.eta_ms {
        Some(ms) => fmt_secs(ms),
        None => "--".to_string(),
    };
    out.push_str(&format!(
        "stage {stage}   elapsed {}   eta {eta}\n",
        fmt_secs(snap.elapsed_ms)
    ));
    const WIDTH: usize = 30;
    let (filled, pct) = if snap.planned > 0 {
        let frac = (snap.done as f64 / snap.planned as f64).clamp(0.0, 1.0);
        ((frac * WIDTH as f64).round() as usize, frac * 100.0)
    } else {
        (0, 0.0)
    };
    out.push_str(&format!(
        "points [{}{}] {}/{} ({pct:.1}%)  resumed {}\n",
        "#".repeat(filled.min(WIDTH)),
        "-".repeat(WIDTH - filled.min(WIDTH)),
        snap.done,
        snap.planned,
        snap.resumed
    ));
    let rate = match qps {
        Some(q) => format!("{q:.1} pts/s"),
        None => "--".to_string(),
    };
    out.push_str(&format!(
        "rate {rate}   workers {:.0}   retries {}   quarantined {}\n",
        snap.workers_live, snap.retries, snap.quarantined
    ));
    if !snap.quarantine_log.is_empty() {
        out.push_str("recent quarantines:\n");
        for q in snap.quarantine_log.iter().rev().take(5) {
            out.push_str(&format!("  {q}\n"));
        }
    }
    out
}

/// Draws one `ppm top` frame for a serving plane: traffic counters,
/// trace-ring occupancy, and the multi-window SLO burn rates.
fn render_serve_frame(addr: &str, serve: &ServeView) -> String {
    let mut out = String::with_capacity(512);
    out.push_str(&format!("ppm top — {addr} (serving)\n"));
    out.push_str(&format!(
        "model {}   workers {}   queued {}{}\n",
        serve.model_version,
        serve.workers,
        serve.queued,
        if serve.sticky_degraded {
            "   STICKY-DEGRADED"
        } else {
            ""
        }
    ));
    out.push_str(&format!(
        "requests {}   ok {}   shed {}   degraded {}   deadline {}\n",
        serve.requests, serve.ok, serve.shed, serve.degraded, serve.deadline_exceeded
    ));
    out.push_str(&format!(
        "trace {}   retained {}\n",
        if serve.trace_enabled { "on" } else { "off" },
        serve.trace_retained
    ));
    for w in &serve.windows {
        out.push_str(&format!(
            "slo {:>4}s  n {:<7} avail burn {:.2}   latency burn {:.2}\n",
            w.window_s, w.total, w.availability_burn, w.latency_burn
        ));
    }
    out.push_str(&format!(
        "budget remaining  availability {:.1}%   latency {:.1}%\n",
        serve.availability_budget_remaining * 100.0,
        serve.latency_budget_remaining * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> TopSnapshot {
        TopSnapshot {
            stage: Some("simulation".to_string()),
            elapsed_ms: 4000,
            planned: 40,
            done: 10,
            resumed: 2,
            retries: 3,
            quarantined: 1,
            workers_live: 2.0,
            eta_ms: Some(12_000),
            quarantine_log: vec!["point 7: panicked: injected".to_string()],
            serve: None,
        }
    }

    #[test]
    fn frame_renders_progress_and_rate() {
        let mut state = TopState::new();
        let first = state.frame("127.0.0.1:1", &snap());
        assert!(first.contains("ppm top — 127.0.0.1:1"));
        assert!(first.contains("stage simulation"));
        assert!(first.contains("10/40 (25.0%)"));
        assert!(first.contains("eta 12.0s"));
        assert!(first.contains("rate --"), "no rate on the first frame");
        assert!(first.contains("point 7: panicked: injected"));

        let mut later = snap();
        later.done = 30;
        later.elapsed_ms = 8000;
        let second = state.frame("127.0.0.1:1", &later);
        // 20 points in 4 seconds.
        assert!(second.contains("rate 5.0 pts/s"), "{second}");
    }

    #[test]
    fn empty_plan_renders_without_division() {
        let empty = TopSnapshot {
            stage: None,
            elapsed_ms: 0,
            planned: 0,
            done: 0,
            resumed: 0,
            retries: 0,
            quarantined: 0,
            workers_live: 0.0,
            eta_ms: None,
            quarantine_log: Vec::new(),
            serve: None,
        };
        let frame = render_frame("x", &empty, None);
        assert!(frame.contains("stage idle"));
        assert!(frame.contains("0/0 (0.0%)"));
        assert!(frame.contains("eta --"));
    }

    #[test]
    fn serve_frames_show_slo_and_trace_state() {
        let mut s = snap();
        s.serve = Some(ServeView {
            model_version: "v3".to_string(),
            requests: 100,
            ok: 90,
            shed: 4,
            degraded: 5,
            deadline_exceeded: 1,
            queued: 2,
            workers: 4,
            sticky_degraded: true,
            trace_enabled: true,
            trace_retained: 37,
            availability_budget_remaining: 0.5,
            latency_budget_remaining: -0.25,
            windows: vec![SloWindowView {
                window_s: 5,
                total: 12,
                availability_burn: 1.5,
                latency_burn: 0.0,
            }],
        });
        let frame = render_frame("127.0.0.1:1", &s, None);
        assert!(frame.contains("(serving)"), "{frame}");
        assert!(frame.contains("model v3"), "{frame}");
        assert!(frame.contains("STICKY-DEGRADED"), "{frame}");
        assert!(frame.contains("shed 4"), "{frame}");
        assert!(frame.contains("retained 37"), "{frame}");
        assert!(frame.contains("avail burn 1.50"), "{frame}");
        assert!(frame.contains("availability 50.0%"), "{frame}");
        assert!(frame.contains("latency -25.0%"), "{frame}");
    }

    #[test]
    fn fetch_top_round_trips_against_a_live_server() {
        let registry = std::sync::Arc::new(ppm_telemetry::Registry::new());
        registry.counter("build.points_planned").add(8);
        registry.counter("build.points_done").add(2);
        let ring = ppm_telemetry::EventRing::new(8);
        {
            use ppm_telemetry::{Level, Record, Sink, Value};
            let mut writer = ring.clone();
            writer.record(&Record::Event {
                name: "robust.quarantine".into(),
                level: Level::Error,
                fields: vec![
                    ("index".into(), Value::from(3u64)),
                    ("attempts".into(), Value::from(3u64)),
                    ("fault".into(), Value::from("panicked: injected")),
                ],
                depth: 1,
            });
        }
        let server = crate::LiveServer::start(
            "127.0.0.1:0",
            crate::RegistrySource::Shared(std::sync::Arc::clone(&registry)),
            ring,
        )
        .expect("bind");
        let snap =
            fetch_top(&server.addr().to_string(), Duration::from_secs(2)).expect("fetch top");
        assert_eq!(snap.planned, 8);
        assert_eq!(snap.done, 2);
        assert_eq!(snap.quarantine_log, vec!["point 3: panicked: injected"]);
    }

    #[test]
    fn fetch_top_reports_unreachable_endpoints_as_io() {
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").port()
        };
        let err = fetch_top(&format!("127.0.0.1:{port}"), Duration::from_millis(300))
            .expect_err("dead port");
        assert!(matches!(err, LiveError::Io(_)));
    }
}
