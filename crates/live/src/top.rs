//! The data and rendering layer behind `ppm top`: poll a live plane,
//! compute a completion rate, and draw one terminal frame.

use std::time::Duration;

use ppm_obs::Json;

use crate::client::http_get;
use crate::LiveError;

/// One poll of a live endpoint: the `/buildz` progress document plus
/// the recent quarantine events from `/eventz`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopSnapshot {
    /// Innermost open `stage.*` span, if any.
    pub stage: Option<String>,
    /// Milliseconds since the process's telemetry epoch.
    pub elapsed_ms: u64,
    /// Points planned across all batches so far.
    pub planned: u64,
    /// Points finished (including resumed and quarantined ones).
    pub done: u64,
    /// Points served from a checkpoint.
    pub resumed: u64,
    /// Total supervisor retries.
    pub retries: u64,
    /// Total quarantined points.
    pub quarantined: u64,
    /// Workers currently inside executor shards.
    pub workers_live: f64,
    /// Estimated milliseconds to completion, when computable.
    pub eta_ms: Option<u64>,
    /// Human-readable recent quarantine descriptions, oldest first.
    pub quarantine_log: Vec<String>,
}

fn u64_field(doc: &Json, key: &str) -> u64 {
    doc.get(key)
        .and_then(Json::as_i64)
        .map(|v| v.max(0) as u64)
        .unwrap_or(0)
}

/// Polls `addr`'s `/buildz` and `/eventz` routes and assembles a
/// [`TopSnapshot`].
///
/// # Errors
///
/// [`LiveError::Io`] / [`LiveError::Http`] when the endpoint is
/// unreachable or unhappy, [`LiveError::Malformed`] when a payload does
/// not parse as the expected schema.
pub fn fetch_top(addr: &str, timeout: Duration) -> Result<TopSnapshot, LiveError> {
    let (status, body) = http_get(addr, "/buildz", timeout)?;
    if status != 200 {
        return Err(LiveError::Http {
            status,
            detail: body,
        });
    }
    let doc = Json::parse(&body)
        .map_err(|e| LiveError::Malformed(format!("/buildz is not JSON: {e}")))?;
    if doc.get("schema").and_then(Json::as_str) != Some("ppm-buildz v1") {
        return Err(LiveError::Malformed(
            "/buildz missing `ppm-buildz v1` schema header".to_string(),
        ));
    }
    let points = doc.get("points").cloned().unwrap_or(Json::Null);
    let mut snap = TopSnapshot {
        stage: doc
            .get("stage")
            .and_then(Json::as_str)
            .map(|s| s.to_string()),
        elapsed_ms: u64_field(&doc, "elapsed_ms"),
        planned: u64_field(&points, "planned"),
        done: u64_field(&points, "done"),
        resumed: u64_field(&points, "resumed"),
        retries: u64_field(&doc, "retries"),
        quarantined: u64_field(&doc, "quarantined"),
        workers_live: doc
            .get("workers_live")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        eta_ms: doc.get("eta_ms").and_then(Json::as_i64).map(|v| v as u64),
        quarantine_log: Vec::new(),
    };
    // The quarantine list is best-effort colour: a failed /eventz fetch
    // must not blank the whole view.
    if let Ok((200, body)) = http_get(addr, "/eventz", timeout) {
        if let Ok(doc) = Json::parse(&body) {
            if let Some(events) = doc.get("events").and_then(Json::as_arr) {
                for e in events {
                    if e.get("name").and_then(Json::as_str) != Some("robust.quarantine") {
                        continue;
                    }
                    let fields = e.get("fields").cloned().unwrap_or(Json::Null);
                    let index = u64_field(&fields, "index");
                    let fault = fields
                        .get("fault")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown fault")
                        .to_string();
                    snap.quarantine_log.push(format!("point {index}: {fault}"));
                }
            }
        }
    }
    Ok(snap)
}

/// Carries the previous poll across frames so the completion rate is a
/// true delta, not a lifetime average.
#[derive(Debug, Default)]
pub struct TopState {
    prev: Option<(u64, u64)>,
}

impl TopState {
    /// A fresh state (first frame shows no rate).
    pub fn new() -> Self {
        TopState::default()
    }

    /// Renders one frame and advances the rate window.
    pub fn frame(&mut self, addr: &str, snap: &TopSnapshot) -> String {
        let qps = match self.prev {
            Some((done, at_ms)) if snap.elapsed_ms > at_ms && snap.done >= done => {
                Some((snap.done - done) as f64 * 1000.0 / (snap.elapsed_ms - at_ms) as f64)
            }
            _ => None,
        };
        self.prev = Some((snap.done, snap.elapsed_ms));
        render_frame(addr, snap, qps)
    }
}

fn fmt_secs(ms: u64) -> String {
    format!("{:.1}s", ms as f64 / 1000.0)
}

/// Draws one `ppm top` frame as plain text: header, stage bar, rate
/// line, and recent quarantines. Pure string assembly — the CLI decides
/// whether to print it once (`--once`) or redraw in a loop.
pub fn render_frame(addr: &str, snap: &TopSnapshot, qps: Option<f64>) -> String {
    let mut out = String::with_capacity(512);
    out.push_str(&format!("ppm top — {addr}\n"));
    let stage = snap.stage.as_deref().unwrap_or("idle");
    let eta = match snap.eta_ms {
        Some(ms) => fmt_secs(ms),
        None => "--".to_string(),
    };
    out.push_str(&format!(
        "stage {stage}   elapsed {}   eta {eta}\n",
        fmt_secs(snap.elapsed_ms)
    ));
    const WIDTH: usize = 30;
    let (filled, pct) = if snap.planned > 0 {
        let frac = (snap.done as f64 / snap.planned as f64).clamp(0.0, 1.0);
        ((frac * WIDTH as f64).round() as usize, frac * 100.0)
    } else {
        (0, 0.0)
    };
    out.push_str(&format!(
        "points [{}{}] {}/{} ({pct:.1}%)  resumed {}\n",
        "#".repeat(filled.min(WIDTH)),
        "-".repeat(WIDTH - filled.min(WIDTH)),
        snap.done,
        snap.planned,
        snap.resumed
    ));
    let rate = match qps {
        Some(q) => format!("{q:.1} pts/s"),
        None => "--".to_string(),
    };
    out.push_str(&format!(
        "rate {rate}   workers {:.0}   retries {}   quarantined {}\n",
        snap.workers_live, snap.retries, snap.quarantined
    ));
    if !snap.quarantine_log.is_empty() {
        out.push_str("recent quarantines:\n");
        for q in snap.quarantine_log.iter().rev().take(5) {
            out.push_str(&format!("  {q}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> TopSnapshot {
        TopSnapshot {
            stage: Some("simulation".to_string()),
            elapsed_ms: 4000,
            planned: 40,
            done: 10,
            resumed: 2,
            retries: 3,
            quarantined: 1,
            workers_live: 2.0,
            eta_ms: Some(12_000),
            quarantine_log: vec!["point 7: panicked: injected".to_string()],
        }
    }

    #[test]
    fn frame_renders_progress_and_rate() {
        let mut state = TopState::new();
        let first = state.frame("127.0.0.1:1", &snap());
        assert!(first.contains("ppm top — 127.0.0.1:1"));
        assert!(first.contains("stage simulation"));
        assert!(first.contains("10/40 (25.0%)"));
        assert!(first.contains("eta 12.0s"));
        assert!(first.contains("rate --"), "no rate on the first frame");
        assert!(first.contains("point 7: panicked: injected"));

        let mut later = snap();
        later.done = 30;
        later.elapsed_ms = 8000;
        let second = state.frame("127.0.0.1:1", &later);
        // 20 points in 4 seconds.
        assert!(second.contains("rate 5.0 pts/s"), "{second}");
    }

    #[test]
    fn empty_plan_renders_without_division() {
        let empty = TopSnapshot {
            stage: None,
            elapsed_ms: 0,
            planned: 0,
            done: 0,
            resumed: 0,
            retries: 0,
            quarantined: 0,
            workers_live: 0.0,
            eta_ms: None,
            quarantine_log: Vec::new(),
        };
        let frame = render_frame("x", &empty, None);
        assert!(frame.contains("stage idle"));
        assert!(frame.contains("0/0 (0.0%)"));
        assert!(frame.contains("eta --"));
    }

    #[test]
    fn fetch_top_round_trips_against_a_live_server() {
        let registry = std::sync::Arc::new(ppm_telemetry::Registry::new());
        registry.counter("build.points_planned").add(8);
        registry.counter("build.points_done").add(2);
        let ring = ppm_telemetry::EventRing::new(8);
        {
            use ppm_telemetry::{Level, Record, Sink, Value};
            let mut writer = ring.clone();
            writer.record(&Record::Event {
                name: "robust.quarantine".into(),
                level: Level::Error,
                fields: vec![
                    ("index".into(), Value::from(3u64)),
                    ("attempts".into(), Value::from(3u64)),
                    ("fault".into(), Value::from("panicked: injected")),
                ],
                depth: 1,
            });
        }
        let server = crate::LiveServer::start(
            "127.0.0.1:0",
            crate::RegistrySource::Shared(std::sync::Arc::clone(&registry)),
            ring,
        )
        .expect("bind");
        let snap =
            fetch_top(&server.addr().to_string(), Duration::from_secs(2)).expect("fetch top");
        assert_eq!(snap.planned, 8);
        assert_eq!(snap.done, 2);
        assert_eq!(snap.quarantine_log, vec!["point 3: panicked: injected"]);
    }

    #[test]
    fn fetch_top_reports_unreachable_endpoints_as_io() {
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").port()
        };
        let err = fetch_top(&format!("127.0.0.1:{port}"), Duration::from_millis(300))
            .expect_err("dead port");
        assert!(matches!(err, LiveError::Io(_)));
    }
}
