//! `ppm-bench v1` files: one wall-clock measurement per file, tracked
//! in `results/` so perf history accrues across PRs.
//!
//! Mirroring the ledger's header/body split, the document separates
//! the *comparable body* (what the measurement is: bench name and
//! unit — identical across byte-identical runs) from the *timing
//! sidecar* (what was measured and when: wall time, source run id,
//! creation timestamp). Diffing two bench files' bodies answers "is
//! this the same measurement?" without wall-clock noise.
//!
//! ```text
//! {
//!   "schema": "ppm-bench v1",
//!   "body":   { "bench": "rbf_train", "unit": "ms" },
//!   "timing": { "wall_ms": 2.816,
//!               "source_run": "build-7-19fd388a3c6",
//!               "created_unix_ms": 1785960375238 }
//! }
//! ```
//!
//! The legacy flat layout (all five fields at the top level) is still
//! accepted by [`BenchRecord::parse`] so older committed files remain
//! readable.

use std::fmt;
use std::path::Path;

use crate::json::Json;

/// The `schema` header every bench file carries.
pub const BENCH_SCHEMA: &str = "ppm-bench v1";

/// One wall-clock benchmark measurement with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Measurement name, e.g. `rbf_train` or `build_total`.
    pub bench: String,
    /// Unit of `wall_ms`'s *presentation* — always `"ms"` today, kept
    /// explicit so the body states what a comparison would compare.
    pub unit: String,
    /// The measured wall time in milliseconds.
    pub wall_ms: f64,
    /// The run ledger this measurement was extracted from.
    pub source_run: String,
    /// When the source run was created (Unix milliseconds).
    pub created_unix_ms: u64,
}

/// A bench file that could not be parsed.
#[derive(Debug)]
pub struct BenchError(String);

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for BenchError {}

impl BenchRecord {
    /// The deterministic half of the document: identical for
    /// byte-identical runs, whatever the clock said.
    pub fn body_json(&self) -> Json {
        Json::Obj(vec![
            ("bench".to_string(), Json::Str(self.bench.clone())),
            ("unit".to_string(), Json::Str(self.unit.clone())),
        ])
    }

    /// The wall-clock sidecar: the measurement and its provenance.
    pub fn timing_json(&self) -> Json {
        Json::Obj(vec![
            ("wall_ms".to_string(), Json::Float(self.wall_ms)),
            ("source_run".to_string(), Json::Str(self.source_run.clone())),
            (
                "created_unix_ms".to_string(),
                Json::from(self.created_unix_ms),
            ),
        ])
    }

    /// The full `ppm-bench v1` document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(BENCH_SCHEMA.to_string())),
            ("body".to_string(), self.body_json()),
            ("timing".to_string(), self.timing_json()),
        ])
    }

    /// Parses a bench document, accepting both the current body/timing
    /// layout and the legacy flat one.
    ///
    /// # Errors
    ///
    /// [`BenchError`] when the text is not JSON, carries the wrong
    /// schema header, or is missing required fields.
    pub fn parse(text: &str) -> Result<BenchRecord, BenchError> {
        let doc =
            Json::parse(text).map_err(|e| BenchError(format!("bench file is not JSON: {e}")))?;
        if doc.get("schema").and_then(Json::as_str) != Some(BENCH_SCHEMA) {
            return Err(BenchError(format!(
                "bench file is missing the `{BENCH_SCHEMA}` schema header"
            )));
        }
        // Current layout nests identity under `body` and the clock
        // under `timing`; the legacy layout is flat. Field lookups
        // fall through to the top level either way.
        let body = doc.get("body").cloned().unwrap_or_else(|| doc.clone());
        let timing = doc.get("timing").cloned().unwrap_or_else(|| doc.clone());
        let req_str = |scope: &Json, key: &str| -> Result<String, BenchError> {
            scope
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| BenchError(format!("bench file is missing `{key}`")))
        };
        Ok(BenchRecord {
            bench: req_str(&body, "bench")?,
            unit: body
                .get("unit")
                .and_then(Json::as_str)
                .unwrap_or("ms")
                .to_string(),
            wall_ms: timing
                .get("wall_ms")
                .and_then(Json::as_f64)
                .ok_or_else(|| BenchError("bench file is missing `wall_ms`".to_string()))?,
            source_run: req_str(&timing, "source_run")?,
            created_unix_ms: timing
                .get("created_unix_ms")
                .and_then(Json::as_i64)
                .map(|v| v.max(0) as u64)
                .unwrap_or(0),
        })
    }
}

/// Writes `record` to `path` atomically as pretty-ish one-line JSON.
///
/// # Errors
///
/// Any I/O failure from [`crate::write_atomic`].
pub fn write_bench(path: &Path, record: &BenchRecord) -> std::io::Result<()> {
    let mut text = record.to_json().dump();
    text.push('\n');
    crate::write_atomic(path, text.as_bytes())
}

/// Reads and parses a bench file.
///
/// # Errors
///
/// [`BenchError`] when the file cannot be read or parsed.
pub fn load_bench(path: &Path) -> Result<BenchRecord, BenchError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| BenchError(format!("cannot read {}: {e}", path.display())))?;
    BenchRecord::parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> BenchRecord {
        BenchRecord {
            bench: "rbf_train".to_string(),
            unit: "ms".to_string(),
            wall_ms: 2.816,
            source_run: "build-7-19fd388a3c6".to_string(),
            created_unix_ms: 1_785_960_375_238,
        }
    }

    #[test]
    fn round_trips_through_file() {
        let dir = std::env::temp_dir().join(format!("ppm-bench-test-{}", std::process::id()));
        let path = dir.join("BENCH_x.json");
        write_bench(&path, &record()).unwrap();
        let back = load_bench(&path).unwrap();
        assert_eq!(back, record());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn body_is_identical_across_runs_that_differ_only_in_timing() {
        let a = record();
        let mut b = record();
        b.wall_ms = 9999.0;
        b.source_run = "build-7-ffffffffff".to_string();
        b.created_unix_ms = 1;
        assert_eq!(a.body_json().dump(), b.body_json().dump());
        assert_ne!(a.timing_json().dump(), b.timing_json().dump());
        // And no wall-clock field leaks into the body.
        let body = a.body_json().dump();
        for clock_field in ["wall_ms", "created_unix_ms", "source_run"] {
            assert!(!body.contains(clock_field), "{clock_field} in body: {body}");
        }
    }

    #[test]
    fn parses_the_legacy_flat_layout() {
        let legacy = r#"{
          "schema": "ppm-bench v1",
          "bench": "rbf_train",
          "wall_ms": 2.816,
          "source_run": "build-7-19fd388a3c6",
          "created_unix_ms": 1785960375238
        }"#;
        let rec = BenchRecord::parse(legacy).unwrap();
        assert_eq!(rec, record());
    }

    #[test]
    fn rejects_wrong_schema_and_missing_fields() {
        assert!(BenchRecord::parse("{}").is_err());
        assert!(BenchRecord::parse(r#"{"schema":"ppm-bench v2"}"#).is_err());
        let no_wall = r#"{"schema":"ppm-bench v1","body":{"bench":"x"},"timing":{}}"#;
        let err = BenchRecord::parse(no_wall).unwrap_err();
        assert!(err.to_string().contains("wall_ms"), "{err}");
    }
}
