//! A small JSON document model with parser and serializer.
//!
//! `ppm-telemetry` deliberately ships only a serializer; the flight
//! recorder also needs to *read* JSON back — ledgers for the regression
//! sentry, trace files for validation — so this module provides a full
//! round-trip on a hand-rolled recursive-descent parser. Zero
//! dependencies, like everything else in the workspace.
//!
//! Objects preserve insertion order (serialization is deterministic for
//! a deterministically built document), and numbers distinguish
//! integers from floats so counters survive a round trip exactly.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional part or exponent that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; entries keep insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure with byte offset and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after document"));
        }
        Ok(value)
    }

    /// Serializes the value as compact JSON.
    pub fn dump(&self) -> String {
        let mut s = String::with_capacity(128);
        self.write(&mut s);
        s
    }

    fn write(&self, s: &mut String) {
        match self {
            Json::Null => s.push_str("null"),
            Json::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let mut buf = String::new();
                fmt::Write::write_fmt(&mut buf, format_args!("{i}")).ok();
                s.push_str(&buf);
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` keeps a decimal point or exponent, so the
                    // value stays a float across a round trip.
                    let mut buf = String::new();
                    fmt::Write::write_fmt(&mut buf, format_args!("{f:?}")).ok();
                    s.push_str(&buf);
                } else {
                    s.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(v) => write_escaped(s, v),
            Json::Arr(items) => {
                s.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    v.write(s);
                }
                s.push(']');
            }
            Json::Obj(entries) => {
                s.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    write_escaped(s, k);
                    s.push(':');
                    v.write(s);
                }
                s.push('}');
            }
        }
    }

    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload (also accepts integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        // Counters beyond i64::MAX are unreachable in practice; keep
        // exactness where possible and fall back to float.
        i64::try_from(v)
            .map(Json::Int)
            .unwrap_or(Json::Float(v as f64))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::from(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

fn write_escaped(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let mut buf = String::new();
                fmt::Write::write_fmt(&mut buf, format_args!("\\u{:04x}", c as u32)).ok();
                s.push_str(&buf);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "non-utf8 number"))?;
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| err(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are not needed for our own
                        // files; map lone surrogates to the replacement
                        // character rather than failing.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance by whole UTF-8 code points.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "invalid utf-8 in string"))?;
                match rest.chars().next() {
                    Some(c) => {
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                    None => return Err(err(*pos, "unterminated string")),
                }
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected string key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':' after key"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":"x\"y","d":null,"e":true},"f":[]}"#;
        let parsed = Json::parse(text).unwrap();
        assert_eq!(parsed.dump(), text);
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        let parsed = Json::parse("[7, 7.0, 1e3, -12]").unwrap();
        let items = parsed.as_arr().unwrap();
        assert_eq!(items[0], Json::Int(7));
        assert_eq!(items[1], Json::Float(7.0));
        assert_eq!(items[2], Json::Float(1000.0));
        assert_eq!(items[3], Json::Int(-12));
        assert_eq!(items[1].dump(), "7.0");
    }

    #[test]
    fn escapes_round_trip() {
        let original = Json::Str("line\nwith \"quotes\" and \\slash\t".to_string());
        let dumped = original.dump();
        assert_eq!(Json::parse(&dumped).unwrap(), original);
    }

    #[test]
    fn unicode_escapes_parse() {
        let parsed = Json::parse(r#""\u00e9\u0041""#).unwrap();
        assert_eq!(parsed.as_str(), Some("éA"));
    }

    #[test]
    fn lookup_helpers_navigate_objects() {
        let doc = Json::parse(r#"{"outer":{"n":42,"s":"hi","f":2.5}}"#).unwrap();
        let outer = doc.get("outer").unwrap();
        assert_eq!(outer.get("n").unwrap().as_i64(), Some(42));
        assert_eq!(outer.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(outer.get("f").unwrap().as_f64(), Some(2.5));
        assert!(outer.get("missing").is_none());
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        for bad in [
            "{",
            "[1,",
            "\"unterminated",
            "{\"k\" 1}",
            "tru",
            "[1] garbage",
            "",
            "{'single': 1}",
        ] {
            let e = Json::parse(bad).unwrap_err();
            assert!(!e.to_string().is_empty(), "{bad:?} should fail");
        }
    }

    #[test]
    fn metric_jsonl_lines_parse() {
        // The exact shape ppm-telemetry emits.
        let line = r#"{"t":"metric","kind":"counter","name":"sim.batch_points","value":90}"#;
        let parsed = Json::parse(line).unwrap();
        assert_eq!(parsed.get("t").unwrap().as_str(), Some("metric"));
        assert_eq!(parsed.get("value").unwrap().as_i64(), Some(90));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).dump(), "null");
        assert_eq!(Json::Float(f64::INFINITY).dump(), "null");
    }
}
