//! The run ledger: a self-describing JSON manifest of one pipeline run.
//!
//! Every ledger document has two top-level blocks:
//!
//! * `header` — identity and timing: the run id, wall-clock creation
//!   time, and per-stage wall/CPU durations. These legitimately differ
//!   between otherwise identical runs.
//! * `body` — everything reproducible: the command, its full argument
//!   set, the relevant environment, a metric snapshot filtered to
//!   deterministic instruments, model-quality diagnostics, and an
//!   FNV-1a content hash over the rest of the body. Two runs with the
//!   same config, seed, and thread count must produce byte-identical
//!   bodies — the regression sentry and the acceptance tests rely on
//!   it.
//!
//! The format is versioned through the `schema` field
//! ([`LEDGER_SCHEMA`]), following the `ppm-checkpoint v1` convention.

use std::fmt;
use std::path::Path;

use ppm_telemetry::{MetricKind, MetricRecord};

use crate::json::{Json, JsonError};
use crate::trace::StageTiming;

/// The ledger format version tag.
pub const LEDGER_SCHEMA: &str = "ppm-ledger v1";

/// A run ledger under assembly; see the module docs for the layout.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    /// Unique id of this run (embeds command, seed, and time).
    pub run_id: String,
    /// Wall-clock creation time, Unix milliseconds.
    pub created_unix_ms: u64,
    /// The CLI subcommand (`build`, `simulate`, ...).
    pub command: String,
    /// The run's effective arguments, sorted by flag name.
    pub args: Vec<(String, String)>,
    /// Relevant environment variables (`PPM_THREADS`, `PPM_TRACE`),
    /// with `""` for unset.
    pub env: Vec<(String, String)>,
    /// Metric snapshot; [`Ledger::body_json`] filters it through
    /// [`deterministic_metrics`].
    pub metrics: Vec<MetricRecord>,
    /// Model-quality diagnostics (held-out error stats, per-region
    /// residuals, selection parameters), when the command built a model.
    pub diagnostics: Option<Json>,
    /// Per-stage wall/CPU timings (header block).
    pub stages: Vec<StageTiming>,
    /// Total run wall time in microseconds (header block).
    pub total_wall_us: u64,
    /// Total process CPU time in microseconds, when available.
    pub total_cpu_us: Option<u64>,
}

impl Ledger {
    /// The deterministic body block, including its content hash.
    pub fn body_json(&self) -> Json {
        let mut body = self.body_without_hash();
        let hash = fnv1a64_hex(body.dump().as_bytes());
        if let Json::Obj(entries) = &mut body {
            entries.push(("content_hash".to_string(), Json::from(hash)));
        }
        body
    }

    fn body_without_hash(&self) -> Json {
        let args = self
            .args
            .iter()
            .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
            .collect();
        let env = self
            .env
            .iter()
            .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
            .collect();
        let metrics = deterministic_metrics(&self.metrics)
            .iter()
            .map(metric_json)
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::from(LEDGER_SCHEMA)),
            ("command".to_string(), Json::from(self.command.as_str())),
            ("args".to_string(), Json::Obj(args)),
            ("env".to_string(), Json::Obj(env)),
            ("metrics".to_string(), Json::Arr(metrics)),
            (
                "diagnostics".to_string(),
                self.diagnostics.clone().unwrap_or(Json::Null),
            ),
        ])
    }

    /// The content hash of the body (also embedded in it).
    pub fn content_hash(&self) -> String {
        fnv1a64_hex(self.body_without_hash().dump().as_bytes())
    }

    /// The header block: run identity and timings.
    pub fn header_json(&self) -> Json {
        let stages = self
            .stages
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("name".to_string(), Json::from(s.name.as_str())),
                    ("wall_us".to_string(), Json::from(s.wall_us)),
                    (
                        "cpu_us".to_string(),
                        s.cpu_us.map(Json::from).unwrap_or(Json::Null),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::from(LEDGER_SCHEMA)),
            ("run_id".to_string(), Json::from(self.run_id.as_str())),
            (
                "created_unix_ms".to_string(),
                Json::from(self.created_unix_ms),
            ),
            (
                "timings".to_string(),
                Json::Obj(vec![
                    ("total_wall_us".to_string(), Json::from(self.total_wall_us)),
                    (
                        "total_cpu_us".to_string(),
                        self.total_cpu_us.map(Json::from).unwrap_or(Json::Null),
                    ),
                    ("stages".to_string(), Json::Arr(stages)),
                ]),
            ),
        ])
    }

    /// The full two-block document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("header".to_string(), self.header_json()),
            ("body".to_string(), self.body_json()),
        ])
    }

    /// Serializes the full document (compact, one line).
    pub fn render(&self) -> String {
        self.to_json().dump()
    }

    /// Writes the document to `path` atomically (temp + rename),
    /// creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating directories or writing the file.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        crate::write_atomic(path, self.render().as_bytes())
    }
}

/// Loads and structurally checks a ledger file: must parse as JSON and
/// carry `header`/`body` blocks with the supported schema tag.
///
/// # Errors
///
/// [`LedgerError`] naming the file and what is wrong with it.
pub fn load_ledger(path: &Path) -> Result<Json, LedgerError> {
    let text = std::fs::read_to_string(path).map_err(|e| LedgerError {
        path: path.display().to_string(),
        message: format!("unreadable: {e}"),
    })?;
    let doc = Json::parse(&text).map_err(|e| LedgerError {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    for block in ["header", "body"] {
        let schema = doc
            .get(block)
            .and_then(|b| b.get("schema"))
            .and_then(Json::as_str);
        if schema != Some(LEDGER_SCHEMA) {
            return Err(LedgerError {
                path: path.display().to_string(),
                message: format!(
                    "{block} schema {:?} is not {LEDGER_SCHEMA:?}",
                    schema.unwrap_or("<missing>")
                ),
            });
        }
    }
    Ok(doc)
}

/// Verifies a loaded ledger body's embedded `content_hash` against a
/// recomputation over the rest of the body. Returns the hash on
/// success.
///
/// # Errors
///
/// [`LedgerError`] when the hash is absent or does not match.
pub fn verify_content_hash(doc: &Json) -> Result<String, LedgerError> {
    let body = doc.get("body").ok_or_else(|| LedgerError {
        path: String::new(),
        message: "missing body block".to_string(),
    })?;
    let embedded = body
        .get("content_hash")
        .and_then(Json::as_str)
        .ok_or_else(|| LedgerError {
            path: String::new(),
            message: "missing content_hash".to_string(),
        })?;
    let Json::Obj(entries) = body else {
        return Err(LedgerError {
            path: String::new(),
            message: "body is not an object".to_string(),
        });
    };
    let stripped: Vec<(String, Json)> = entries
        .iter()
        .filter(|(k, _)| k != "content_hash")
        .cloned()
        .collect();
    let recomputed = fnv1a64_hex(Json::Obj(stripped).dump().as_bytes());
    if recomputed != embedded {
        return Err(LedgerError {
            path: String::new(),
            message: format!("content_hash mismatch: embedded {embedded}, computed {recomputed}"),
        });
    }
    Ok(recomputed)
}

/// A ledger load/validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerError {
    /// The offending file (may be empty for in-memory checks).
    pub path: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "invalid ledger: {}", self.message)
        } else {
            write!(f, "invalid ledger {}: {}", self.path, self.message)
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<JsonError> for LedgerError {
    fn from(e: JsonError) -> Self {
        LedgerError {
            path: String::new(),
            message: e.to_string(),
        }
    }
}

/// Filters a metric snapshot down to instruments that are reproducible
/// across identical fixed-seed runs.
///
/// Excluded: span-duration histograms (`span.*`), any instrument whose
/// name ends in a time unit (`.us`, `_us`, `.ms`, `_ms`), and the
/// executor's scheduling counters (`exec.idle`, `exec.steals`) — all of
/// these depend on wall-clock or thread interleaving. Timings belong in
/// the ledger header instead.
pub fn deterministic_metrics(snapshot: &[MetricRecord]) -> Vec<MetricRecord> {
    snapshot
        .iter()
        .filter(|m| {
            !m.name.starts_with("span.")
                && !m.name.ends_with(".us")
                && !m.name.ends_with("_us")
                && !m.name.ends_with(".ms")
                && !m.name.ends_with("_ms")
                && m.name != "exec.idle"
                && m.name != "exec.steals"
        })
        .cloned()
        .collect()
}

/// One metric as a ledger JSON object (same field names as the JSONL
/// sink's `metric` lines, minus the `"t"` tag).
fn metric_json(m: &MetricRecord) -> Json {
    let mut entries = vec![(
        "kind".to_string(),
        Json::from(match m.kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }),
    )];
    entries.push(("name".to_string(), Json::from(m.name.as_str())));
    match m.kind {
        MetricKind::Counter => {
            entries.push(("value".to_string(), Json::from(m.value.unwrap_or(0))));
        }
        MetricKind::Gauge => {
            let v = m.gauge.unwrap_or(0.0);
            entries.push((
                "value".to_string(),
                if v.is_finite() {
                    Json::Float(v)
                } else {
                    Json::Null
                },
            ));
        }
        MetricKind::Histogram => {
            let (count, sum, min, max, p50, p95, p99) = m.hist.unwrap_or((0, 0, 0, 0, 0, 0, 0));
            for (k, v) in [
                ("count", count),
                ("sum", sum),
                ("min", min),
                ("max", max),
                ("p50", p50),
                ("p95", p95),
                ("p99", p99),
            ] {
                entries.push((k.to_string(), Json::from(v)));
            }
        }
    }
    Json::Obj(entries)
}

/// FNV-1a 64-bit over `bytes`, rendered as 16 lowercase hex digits —
/// the same construction as the checkpoint journal's checksum.
pub fn fnv1a64_hex(bytes: &[u8]) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ledger() -> Ledger {
        Ledger {
            run_id: "build-1-abc".to_string(),
            created_unix_ms: 1_722_850_000_000,
            command: "build".to_string(),
            args: vec![
                ("--sample".to_string(), "40".to_string()),
                ("--seed".to_string(), "7".to_string()),
            ],
            env: vec![("PPM_THREADS".to_string(), String::new())],
            metrics: vec![
                MetricRecord {
                    name: "sim.batch_points".to_string(),
                    kind: MetricKind::Counter,
                    value: Some(40),
                    gauge: None,
                    hist: None,
                    buckets: None,
                    exemplar: None,
                },
                MetricRecord {
                    name: "span.stage.tree.us".to_string(),
                    kind: MetricKind::Histogram,
                    value: None,
                    gauge: None,
                    hist: Some((1, 100, 100, 100, 100, 100, 100)),
                    buckets: Some(vec![(100, 1)]),
                    exemplar: None,
                },
                MetricRecord {
                    name: "exec.rbf_grid.ms".to_string(),
                    kind: MetricKind::Gauge,
                    value: None,
                    gauge: Some(139.0),
                    hist: None,
                    buckets: None,
                    exemplar: None,
                },
                MetricRecord {
                    name: "exec.idle".to_string(),
                    kind: MetricKind::Counter,
                    value: Some(3),
                    gauge: None,
                    hist: None,
                    buckets: None,
                    exemplar: None,
                },
            ],
            diagnostics: Some(Json::Obj(vec![("mean_pct".to_string(), Json::Float(2.1))])),
            stages: vec![StageTiming {
                name: "stage.rbf_train".to_string(),
                wall_us: 139_000,
                cpu_us: Some(500_000),
            }],
            total_wall_us: 1_000_000,
            total_cpu_us: Some(3_000_000),
        }
    }

    #[test]
    fn body_excludes_timing_dependent_metrics() {
        let body = sample_ledger().body_json().dump();
        assert!(body.contains("sim.batch_points"));
        assert!(!body.contains("span.stage.tree.us"));
        assert!(!body.contains("exec.rbf_grid.ms"));
        assert!(!body.contains("exec.idle"));
    }

    #[test]
    fn identical_ledgers_have_identical_bodies_despite_headers() {
        let mut a = sample_ledger();
        let mut b = sample_ledger();
        // Header-only fields differ between runs.
        b.run_id = "build-1-other".to_string();
        b.created_unix_ms += 12345;
        b.total_wall_us *= 2;
        b.stages[0].wall_us *= 3;
        a.total_cpu_us = Some(1);
        assert_eq!(a.body_json().dump(), b.body_json().dump());
        assert_eq!(a.content_hash(), b.content_hash());
        assert_ne!(a.header_json().dump(), b.header_json().dump());
    }

    #[test]
    fn body_changes_move_the_content_hash() {
        let a = sample_ledger();
        let mut b = sample_ledger();
        b.args[0].1 = "41".to_string();
        assert_ne!(a.content_hash(), b.content_hash());
        let mut c = sample_ledger();
        c.metrics[0].value = Some(41);
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn round_trip_through_disk_verifies() {
        let dir = std::env::temp_dir().join(format!("ppm-obs-test-{}", std::process::id()));
        let path = dir.join("ledger.json");
        let ledger = sample_ledger();
        ledger.write_atomic(&path).unwrap();
        let doc = load_ledger(&path).unwrap();
        assert_eq!(
            doc.get("header").unwrap().get("run_id").unwrap().as_str(),
            Some("build-1-abc")
        );
        let hash = verify_content_hash(&doc).unwrap();
        assert_eq!(hash, ledger.content_hash());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn doctored_body_fails_hash_verification() {
        let doc_text = sample_ledger().render().replace("\"build\"", "\"built\"");
        let doc = Json::parse(&doc_text).unwrap();
        let err = verify_content_hash(&doc).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn load_rejects_wrong_schema() {
        let dir = std::env::temp_dir().join(format!("ppm-obs-schema-{}", std::process::id()));
        let path = dir.join("bad.json");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            &path,
            r#"{"header":{"schema":"ppm-ledger v0"},"body":{"schema":"ppm-ledger v1"}}"#,
        )
        .unwrap();
        let err = load_ledger(&path).unwrap_err();
        assert!(err.to_string().contains("ppm-ledger v0"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // FNV-1a 64 reference values.
        assert_eq!(fnv1a64_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a64_hex(b"a"), "af63dc4c8601ec8c");
    }
}
