//! # ppm-obs
//!
//! The flight recorder for the BuildRBFmodel pipeline: everything a
//! run leaves behind so that later sessions (and CI) can answer "what
//! ran, how fast, and did it get worse?" without re-running it.
//!
//! Three pieces, layered on `ppm-telemetry`:
//!
//! * [`ledger`] — every CLI run writes a self-describing JSON manifest
//!   (`ppm-ledger v1`) with the full configuration, environment,
//!   deterministic metric snapshot, model-quality diagnostics, and a
//!   content hash; timings live in a separate header block so that two
//!   identical fixed-seed runs produce byte-identical bodies.
//! * [`trace`] — a [`trace::FlightRecorder`] sink captures the span
//!   tree (with monotonic timestamps, thread ordinals, and CPU time)
//!   and exports Chrome-trace/Perfetto JSON for `--trace-out`.
//! * [`report`] — the regression sentry: diff two ledgers' stage
//!   times, error statistics, and counters against thresholds, for
//!   `ppm report` and the CI gate in `scripts/verify.sh`.
//! * [`bench`] — `ppm-bench v1` perf-history files: one wall-time
//!   measurement each, with the comparable identity (`body`) split
//!   from the wall-clock sidecar (`timing`), for `ppm bench-export`
//!   and the `results/BENCH_*.json` trajectory.
//!
//! Like the rest of the workspace, this crate has no external
//! dependencies; [`json`] is a small self-contained JSON value type
//! with a parser and serializer.

pub mod bench;
pub mod json;
pub mod ledger;
pub mod report;
pub mod trace;

pub use bench::{load_bench, write_bench, BenchError, BenchRecord, BENCH_SCHEMA};
pub use json::{Json, JsonError};
pub use ledger::{
    deterministic_metrics, fnv1a64_hex, load_ledger, verify_content_hash, Ledger, LedgerError,
    LEDGER_SCHEMA,
};
pub use report::{compare, Finding, FindingCategory, Report, ReportError, Thresholds};
pub use trace::{validate_chrome_trace, FlightRecorder, StageTiming, TraceError, TraceSummary};

use std::io::Write;
use std::path::Path;

/// Writes `bytes` to `path` atomically: the data lands in a sibling
/// temp file first and is renamed into place, so readers never observe
/// a partial document. Parent directories are created as needed.
///
/// # Errors
///
/// Any I/O failure creating directories, writing, or renaming.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_creates_parents_and_replaces() {
        let dir = std::env::temp_dir().join(format!("ppm-obs-atomic-{}", std::process::id()));
        let path = dir.join("nested/out.json");
        write_atomic(&path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        write_atomic(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
