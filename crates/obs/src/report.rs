//! The regression sentry: compares two run ledgers — a candidate
//! against a baseline — and flags stage-time blowups, model-error
//! growth, and counter drift against configurable thresholds.
//!
//! The comparison is deliberately asymmetric: only changes *for the
//! worse* regress (slower stages, larger errors). Faster/smaller is
//! reported as headroom, never as a failure — a sentry that fails on
//! improvement trains people to stop running it.

use std::fmt;
use std::fmt::Write as _;

use crate::json::Json;

/// Regression thresholds; [`Thresholds::default`] gives the values
/// used by `scripts/verify.sh`.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// A stage regresses when `candidate_wall > baseline_wall *
    /// max_stage_ratio` (default 2.0 — wall time is noisy in CI).
    pub max_stage_ratio: f64,
    /// Stages faster than this (in both runs) are ignored entirely —
    /// sub-millisecond stages are pure scheduling jitter.
    pub min_stage_us: u64,
    /// An error statistic regresses when `candidate > baseline *
    /// max_error_ratio + error_slack_pp`.
    pub max_error_ratio: f64,
    /// Absolute slack in percentage points added on top of the error
    /// ratio, so near-zero baselines don't trip on rounding.
    pub error_slack_pp: f64,
    /// Allowed relative drift for deterministic counters (default 0.0:
    /// fixed-seed counters must match exactly).
    pub counter_tol: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            max_stage_ratio: 2.0,
            min_stage_us: 1_000,
            max_error_ratio: 1.10,
            error_slack_pp: 0.1,
            counter_tol: 0.0,
        }
    }
}

/// What kind of quantity a [`Finding`] compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingCategory {
    /// A stage wall time from the ledger header.
    Stage,
    /// A model-error statistic from the body diagnostics.
    Error,
    /// A deterministic counter from the body metrics.
    Counter,
}

impl FindingCategory {
    fn label(self) -> &'static str {
        match self {
            FindingCategory::Stage => "stage",
            FindingCategory::Error => "error",
            FindingCategory::Counter => "counter",
        }
    }
}

/// One compared quantity.
#[derive(Debug, Clone)]
pub struct Finding {
    /// What kind of quantity this is.
    pub category: FindingCategory,
    /// Name of the stage / statistic / counter.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// `candidate / baseline` (1.0 when the baseline is zero and the
    /// candidate matches it; infinite when it does not).
    pub ratio: f64,
    /// The threshold this finding was judged against, as a ratio.
    pub limit: f64,
    /// Whether the candidate is worse than the threshold allows.
    pub regressed: bool,
}

/// The sentry's verdict over all compared quantities.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Every compared quantity, regressed or not, in comparison order.
    pub findings: Vec<Finding>,
    /// Quantities present in only one ledger (named, with which side).
    pub unmatched: Vec<String>,
}

impl Report {
    /// Whether any finding regressed.
    pub fn regressed(&self) -> bool {
        self.findings.iter().any(|f| f.regressed)
    }

    /// Only the regressed findings.
    pub fn regressions(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.regressed)
    }

    /// A fixed-width human-readable table with a one-line verdict.
    pub fn human_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<7} {:<34} {:>14} {:>14} {:>8} {:>8}  verdict",
            "kind", "name", "baseline", "candidate", "ratio", "limit"
        );
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{:<7} {:<34} {:>14} {:>14} {:>8} {:>8}  {}",
                f.category.label(),
                f.name,
                fmt_value(f.baseline),
                fmt_value(f.candidate),
                fmt_ratio(f.ratio),
                fmt_ratio(f.limit),
                if f.regressed { "REGRESSED" } else { "ok" }
            );
        }
        for name in &self.unmatched {
            let _ = writeln!(out, "note    {name} (present in only one ledger; skipped)");
        }
        let n = self.regressions().count();
        if n == 0 {
            let _ = writeln!(
                out,
                "verdict: OK ({} quantities compared)",
                self.findings.len()
            );
        } else {
            let _ = writeln!(
                out,
                "verdict: REGRESSED ({n} of {} quantities)",
                self.findings.len()
            );
        }
        out
    }

    /// The machine-readable form for `ppm report --json-out`.
    pub fn to_json(&self) -> Json {
        let findings = self
            .findings
            .iter()
            .map(|f| {
                Json::Obj(vec![
                    ("category".to_string(), Json::from(f.category.label())),
                    ("name".to_string(), Json::from(f.name.as_str())),
                    ("baseline".to_string(), Json::Float(f.baseline)),
                    ("candidate".to_string(), Json::Float(f.candidate)),
                    ("ratio".to_string(), Json::Float(f.ratio)),
                    ("limit".to_string(), Json::Float(f.limit)),
                    ("regressed".to_string(), Json::Bool(f.regressed)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::from("ppm-report v1")),
            ("regressed".to_string(), Json::Bool(self.regressed())),
            ("findings".to_string(), Json::Arr(findings)),
            (
                "unmatched".to_string(),
                Json::Arr(
                    self.unmatched
                        .iter()
                        .map(|s| Json::from(s.as_str()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A structural problem that prevents comparing two ledgers at all
/// (as opposed to a regression, which is a successful comparison).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportError(pub String);

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot compare ledgers: {}", self.0)
    }
}

impl std::error::Error for ReportError {}

/// Compares a candidate ledger document against a baseline.
///
/// Three families of quantities are diffed:
///
/// * header stage wall times (`timings.stages[].wall_us`),
/// * body diagnostics error statistics (any numeric field of
///   `diagnostics.holdout` whose name ends in `_pct`, plus
///   `diagnostics` numeric fields ending in `_pct`),
/// * body counters (exact match by default).
///
/// Quantities present in only one document are listed in
/// [`Report::unmatched`] and do not regress — a new stage or counter
/// is a code change, not a performance regression.
///
/// # Errors
///
/// [`ReportError`] when either document is structurally unusable
/// (missing blocks, no commands, non-numeric values where numbers are
/// required).
pub fn compare(baseline: &Json, candidate: &Json, t: &Thresholds) -> Result<Report, ReportError> {
    let mut report = Report::default();

    let base_cmd = command_of(baseline)?;
    let cand_cmd = command_of(candidate)?;
    if base_cmd != cand_cmd {
        return Err(ReportError(format!(
            "command mismatch: baseline ran {base_cmd:?}, candidate ran {cand_cmd:?}"
        )));
    }

    // Stage wall times (header block).
    let base_stages = stage_walls(baseline);
    let cand_stages = stage_walls(candidate);
    for (name, base_us) in &base_stages {
        match cand_stages.iter().find(|(n, _)| n == name) {
            Some((_, cand_us)) => {
                if *base_us < t.min_stage_us && *cand_us < t.min_stage_us {
                    continue;
                }
                let (ratio, regressed) =
                    judge_ratio(*base_us as f64, *cand_us as f64, t.max_stage_ratio, 0.0);
                report.findings.push(Finding {
                    category: FindingCategory::Stage,
                    name: name.clone(),
                    baseline: *base_us as f64,
                    candidate: *cand_us as f64,
                    ratio,
                    limit: t.max_stage_ratio,
                    regressed,
                });
            }
            None => report
                .unmatched
                .push(format!("stage {name} (baseline only)")),
        }
    }
    for (name, _) in &cand_stages {
        if !base_stages.iter().any(|(n, _)| n == name) {
            report
                .unmatched
                .push(format!("stage {name} (candidate only)"));
        }
    }

    // Error statistics (body diagnostics).
    let base_errs = error_stats(baseline);
    let cand_errs = error_stats(candidate);
    for (name, base_v) in &base_errs {
        match cand_errs.iter().find(|(n, _)| n == name) {
            Some((_, cand_v)) => {
                let (ratio, regressed) =
                    judge_ratio(*base_v, *cand_v, t.max_error_ratio, t.error_slack_pp);
                report.findings.push(Finding {
                    category: FindingCategory::Error,
                    name: name.clone(),
                    baseline: *base_v,
                    candidate: *cand_v,
                    ratio,
                    limit: t.max_error_ratio,
                    regressed,
                });
            }
            None => report
                .unmatched
                .push(format!("error {name} (baseline only)")),
        }
    }
    for (name, _) in &cand_errs {
        if !base_errs.iter().any(|(n, _)| n == name) {
            report
                .unmatched
                .push(format!("error {name} (candidate only)"));
        }
    }

    // Deterministic counters (body metrics). Drift in either direction
    // beyond the tolerance regresses: a fixed-seed counter that merely
    // *changed* means the run did different work than the baseline.
    let base_ctrs = counters(baseline);
    let cand_ctrs = counters(candidate);
    for (name, base_v) in &base_ctrs {
        match cand_ctrs.iter().find(|(n, _)| n == name) {
            Some((_, cand_v)) => {
                let base_f = *base_v as f64;
                let cand_f = *cand_v as f64;
                let ratio = if base_f == 0.0 {
                    if cand_f == 0.0 {
                        1.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    cand_f / base_f
                };
                let drift = (cand_f - base_f).abs() / base_f.max(1.0);
                report.findings.push(Finding {
                    category: FindingCategory::Counter,
                    name: name.clone(),
                    baseline: base_f,
                    candidate: cand_f,
                    ratio,
                    limit: 1.0 + t.counter_tol,
                    regressed: drift > t.counter_tol,
                });
            }
            None => report
                .unmatched
                .push(format!("counter {name} (baseline only)")),
        }
    }
    for (name, _) in &cand_ctrs {
        if !base_ctrs.iter().any(|(n, _)| n == name) {
            report
                .unmatched
                .push(format!("counter {name} (candidate only)"));
        }
    }

    if report.findings.is_empty() {
        return Err(ReportError(
            "no comparable quantities: both ledgers lack stages, diagnostics, and counters"
                .to_string(),
        ));
    }
    Ok(report)
}

/// `candidate/baseline` plus the worse-than-allowed verdict; `slack`
/// is absolute headroom added to the scaled baseline.
fn judge_ratio(base: f64, cand: f64, max_ratio: f64, slack: f64) -> (f64, bool) {
    let ratio = if base == 0.0 {
        if cand == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        cand / base
    };
    (ratio, cand > base * max_ratio + slack)
}

fn command_of(doc: &Json) -> Result<String, ReportError> {
    doc.get("body")
        .and_then(|b| b.get("command"))
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ReportError("missing body.command".to_string()))
}

fn stage_walls(doc: &Json) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let stages = doc
        .get("header")
        .and_then(|h| h.get("timings"))
        .and_then(|t| t.get("stages"))
        .and_then(Json::as_arr);
    if let Some(stages) = stages {
        for s in stages {
            if let (Some(name), Some(us)) = (
                s.get("name").and_then(Json::as_str),
                s.get("wall_us").and_then(Json::as_i64),
            ) {
                out.push((name.to_string(), us.max(0) as u64));
            }
        }
    }
    out
}

/// Numeric `_pct` fields from `body.diagnostics`, flattened one level:
/// top-level fields keep their name, nested objects (e.g. `holdout`)
/// prefix it (`holdout.mean_pct`). Region residuals are summarized by
/// their maximum `mean_abs_pct` rather than matched per-leaf — leaf
/// numbering shifts when the tree changes shape.
fn error_stats(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(diag) = doc.get("body").and_then(|b| b.get("diagnostics")) else {
        return out;
    };
    let Some(entries) = diag.as_obj() else {
        return out;
    };
    for (key, value) in entries {
        if key.ends_with("_pct") {
            if let Some(v) = value.as_f64() {
                out.push((key.clone(), v));
            }
        } else if key == "regions" {
            let worst = value
                .as_arr()
                .into_iter()
                .flatten()
                .filter_map(|r| r.get("mean_abs_pct").and_then(Json::as_f64))
                .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.max(v))));
            if let Some(w) = worst {
                out.push(("regions.worst_mean_abs_pct".to_string(), w));
            }
        } else if let Some(nested) = value.as_obj() {
            for (nk, nv) in nested {
                if nk.ends_with("_pct") {
                    if let Some(v) = nv.as_f64() {
                        out.push((format!("{key}.{nk}"), v));
                    }
                }
            }
        }
    }
    out
}

fn counters(doc: &Json) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let metrics = doc
        .get("body")
        .and_then(|b| b.get("metrics"))
        .and_then(Json::as_arr);
    if let Some(metrics) = metrics {
        for m in metrics {
            if m.get("kind").and_then(Json::as_str) == Some("counter") {
                if let (Some(name), Some(v)) = (
                    m.get("name").and_then(Json::as_str),
                    m.get("value").and_then(Json::as_i64),
                ) {
                    out.push((name.to_string(), v.max(0) as u64));
                }
            }
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

fn fmt_ratio(r: f64) -> String {
    if r.is_finite() {
        format!("{r:.3}")
    } else {
        "inf".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger_doc(stage_us: u64, mean_pct: f64, counter: u64) -> Json {
        let text = format!(
            r#"{{
              "header": {{
                "schema": "ppm-ledger v1",
                "run_id": "build-7-x",
                "created_unix_ms": 0,
                "timings": {{
                  "total_wall_us": {stage_us},
                  "total_cpu_us": null,
                  "stages": [
                    {{"name": "stage.rbf_train", "wall_us": {stage_us}, "cpu_us": null}},
                    {{"name": "stage.blip", "wall_us": 40, "cpu_us": null}}
                  ]
                }}
              }},
              "body": {{
                "schema": "ppm-ledger v1",
                "command": "build",
                "args": {{"--seed": "7"}},
                "env": {{}},
                "metrics": [
                  {{"kind": "counter", "name": "sim.batch_points", "value": {counter}}}
                ],
                "diagnostics": {{
                  "holdout": {{"mean_pct": {mean_pct}, "max_pct": {max_pct}}},
                  "regions": [
                    {{"leaf": 0, "count": 10, "mean_abs_pct": 1.5, "max_abs_pct": 4.0}},
                    {{"leaf": 2, "count": 12, "mean_abs_pct": 2.5, "max_abs_pct": 6.0}}
                  ],
                  "aicc": -12.0
                }}
              }}
            }}"#,
            max_pct = mean_pct * 3.0,
        );
        Json::parse(&text).unwrap()
    }

    #[test]
    fn self_compare_is_clean() {
        let doc = ledger_doc(100_000, 2.0, 40);
        let report = compare(&doc, &doc, &Thresholds::default()).unwrap();
        assert!(!report.regressed(), "{}", report.human_table());
        // stage.blip sits below min_stage_us and must be skipped.
        assert!(!report.findings.iter().any(|f| f.name == "stage.blip"));
        assert!(report
            .findings
            .iter()
            .any(|f| f.name == "regions.worst_mean_abs_pct" && f.baseline == 2.5));
        assert!(report.unmatched.is_empty());
    }

    #[test]
    fn slow_stage_regresses_but_fast_stage_does_not() {
        let base = ledger_doc(100_000, 2.0, 40);
        let slow = ledger_doc(250_000, 2.0, 40);
        let report = compare(&base, &slow, &Thresholds::default()).unwrap();
        let stage: Vec<_> = report.regressions().collect();
        assert_eq!(stage.len(), 1);
        assert_eq!(stage[0].name, "stage.rbf_train");
        assert_eq!(stage[0].category, FindingCategory::Stage);
        // The improvement direction never fails.
        let report = compare(&slow, &base, &Thresholds::default()).unwrap();
        assert!(!report.regressed());
    }

    #[test]
    fn error_growth_regresses_past_ratio_plus_slack() {
        let base = ledger_doc(100_000, 2.0, 40);
        let worse = ledger_doc(100_000, 2.5, 40);
        let report = compare(&base, &worse, &Thresholds::default()).unwrap();
        assert!(report
            .regressions()
            .any(|f| f.name == "holdout.mean_pct" && f.category == FindingCategory::Error));
        // Within ratio*1.10 + 0.1pp slack: fine.
        let ok = ledger_doc(100_000, 2.2, 40);
        let report = compare(&base, &ok, &Thresholds::default()).unwrap();
        assert!(!report
            .regressions()
            .any(|f| f.category == FindingCategory::Error));
    }

    #[test]
    fn counter_drift_regresses_in_both_directions() {
        let base = ledger_doc(100_000, 2.0, 40);
        for doctored in [39, 41] {
            let cand = ledger_doc(100_000, 2.0, doctored);
            let report = compare(&base, &cand, &Thresholds::default()).unwrap();
            assert!(report
                .regressions()
                .any(|f| f.category == FindingCategory::Counter));
        }
        let tolerant = Thresholds {
            counter_tol: 0.05,
            ..Thresholds::default()
        };
        let cand = ledger_doc(100_000, 2.0, 41);
        let report = compare(&base, &cand, &tolerant).unwrap();
        assert!(!report.regressed());
    }

    #[test]
    fn command_mismatch_is_an_error_not_a_regression() {
        let base = ledger_doc(100_000, 2.0, 40);
        let text = base.dump().replace("\"build\"", "\"simulate\"");
        let other = Json::parse(&text).unwrap();
        let err = compare(&base, &other, &Thresholds::default()).unwrap_err();
        assert!(err.to_string().contains("command mismatch"));
    }

    #[test]
    fn unmatched_quantities_are_noted_not_failed() {
        let base = ledger_doc(100_000, 2.0, 40);
        let text = base
            .dump()
            .replace("stage.rbf_train", "stage.renamed_train")
            .replace("sim.batch_points", "sim.renamed_points");
        let cand = Json::parse(&text).unwrap();
        let report = compare(&base, &cand, &Thresholds::default()).unwrap();
        assert!(!report.regressed());
        assert_eq!(report.unmatched.len(), 4, "{:?}", report.unmatched);
    }

    #[test]
    fn table_and_json_agree_on_verdict() {
        let base = ledger_doc(100_000, 2.0, 40);
        let slow = ledger_doc(300_000, 2.0, 40);
        let report = compare(&base, &slow, &Thresholds::default()).unwrap();
        assert!(report.human_table().contains("verdict: REGRESSED"));
        let json = report.to_json();
        assert_eq!(json.get("regressed"), Some(&Json::Bool(true)));
    }
}
