//! Span-tree capture and Chrome-trace (Perfetto) export.
//!
//! A [`FlightRecorder`] is a telemetry sink that captures every span
//! closing and event with its monotonic timestamp and thread ordinal.
//! After the run it renders the capture as Chrome-trace JSON — the
//! `traceEvents` array format that `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load directly — with one lane
//! per thread, so a parallel grid search shows its `ppm-exec` worker
//! shards as a real timeline.
//!
//! [`validate_chrome_trace`] re-parses an emitted file and checks the
//! structural invariants the viewers rely on; `scripts/verify.sh` runs
//! it over the smoke build's trace.

use std::fmt;
use std::sync::{Arc, Mutex};

use ppm_telemetry::{monotonic_us, thread_ordinal, Record, Sink, Verbosity};

use crate::json::Json;

/// One captured trace entry.
#[derive(Debug, Clone)]
enum Entry {
    /// A closed span: a complete slice on its thread's lane.
    Span {
        name: String,
        start_us: u64,
        dur_us: u64,
        tid: u64,
        cpu_us: Option<u64>,
        depth: usize,
        parent: Option<String>,
    },
    /// A discrete event: an instant marker, stamped at arrival.
    Instant {
        name: String,
        ts_us: u64,
        tid: u64,
        depth: usize,
    },
}

/// Captures the full span tree and event stream of a run for trace
/// export. Install with [`FlightRecorder::sink`]; the recorder handle
/// stays usable after the sink is dropped (shared buffer).
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl FlightRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink handle for [`ppm_telemetry::add_sink`]; records at Trace
    /// verbosity so nested spans and worker shards are captured.
    pub fn sink(&self) -> Box<dyn Sink> {
        Box::new(RecorderSink {
            entries: Arc::clone(&self.entries),
        })
    }

    /// Number of captured entries (spans + events).
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wall-clock and CPU totals per top-level span name (depth 0),
    /// aggregated in first-completion order. These are the per-stage
    /// timings the run ledger's header records.
    pub fn stage_timings(&self) -> Vec<StageTiming> {
        let entries = self
            .entries
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let mut order: Vec<String> = Vec::new();
        let mut totals: std::collections::BTreeMap<String, (u64, Option<u64>)> =
            std::collections::BTreeMap::new();
        for e in entries.iter() {
            if let Entry::Span {
                name,
                dur_us,
                cpu_us,
                depth: 0,
                ..
            } = e
            {
                let slot = totals.entry(name.clone()).or_insert_with(|| {
                    order.push(name.clone());
                    (0, Some(0))
                });
                slot.0 += dur_us;
                slot.1 = match (slot.1, cpu_us) {
                    (Some(acc), Some(c)) => Some(acc + c),
                    _ => None, // any missing reading poisons the total
                };
            }
        }
        order
            .into_iter()
            .filter_map(|name| {
                totals.get(&name).map(|&(wall_us, cpu_us)| StageTiming {
                    name: name.clone(),
                    wall_us,
                    cpu_us,
                })
            })
            .collect()
    }

    /// Renders the capture as a Chrome-trace JSON document.
    ///
    /// Spans become complete (`"ph":"X"`) slices with `ts`/`dur` in
    /// microseconds on their thread's lane; events become instant
    /// (`"ph":"i"`) markers; thread-name metadata labels the lanes.
    pub fn chrome_trace_json(&self) -> String {
        let entries = self
            .entries
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let mut events: Vec<Json> = Vec::with_capacity(entries.len() + 4);
        let mut tids: Vec<u64> = Vec::new();
        let note_tid = |tids: &mut Vec<u64>, tid: u64| {
            if !tids.contains(&tid) {
                tids.push(tid);
            }
        };
        for e in entries.iter() {
            match e {
                Entry::Span {
                    name,
                    start_us,
                    dur_us,
                    tid,
                    cpu_us,
                    depth,
                    parent,
                } => {
                    note_tid(&mut tids, *tid);
                    let mut args = vec![("depth".to_string(), Json::from(*depth))];
                    if let Some(c) = cpu_us {
                        args.push(("cpu_us".to_string(), Json::from(*c)));
                    }
                    if let Some(p) = parent {
                        args.push(("parent".to_string(), Json::from(p.as_str())));
                    }
                    events.push(Json::Obj(vec![
                        ("ph".to_string(), Json::from("X")),
                        ("name".to_string(), Json::from(name.as_str())),
                        ("cat".to_string(), Json::from("span")),
                        ("pid".to_string(), Json::Int(1)),
                        ("tid".to_string(), Json::from(*tid)),
                        ("ts".to_string(), Json::from(*start_us)),
                        ("dur".to_string(), Json::from(*dur_us)),
                        ("args".to_string(), Json::Obj(args)),
                    ]));
                }
                Entry::Instant {
                    name,
                    ts_us,
                    tid,
                    depth,
                } => {
                    note_tid(&mut tids, *tid);
                    events.push(Json::Obj(vec![
                        ("ph".to_string(), Json::from("i")),
                        ("name".to_string(), Json::from(name.as_str())),
                        ("cat".to_string(), Json::from("event")),
                        ("pid".to_string(), Json::Int(1)),
                        ("tid".to_string(), Json::from(*tid)),
                        ("ts".to_string(), Json::from(*ts_us)),
                        ("s".to_string(), Json::from("t")),
                        (
                            "args".to_string(),
                            Json::Obj(vec![("depth".to_string(), Json::from(*depth))]),
                        ),
                    ]));
                }
            }
        }
        // Lane labels: the first thread to record telemetry (ordinal 0)
        // is the main pipeline thread.
        for tid in tids {
            let label = if tid == 0 {
                "main".to_string()
            } else {
                format!("worker-{tid}")
            };
            events.push(Json::Obj(vec![
                ("ph".to_string(), Json::from("M")),
                ("name".to_string(), Json::from("thread_name")),
                ("pid".to_string(), Json::Int(1)),
                ("tid".to_string(), Json::from(tid)),
                (
                    "args".to_string(),
                    Json::Obj(vec![("name".to_string(), Json::from(label))]),
                ),
            ]));
        }
        Json::Obj(vec![
            ("displayTimeUnit".to_string(), Json::from("ms")),
            ("traceEvents".to_string(), Json::Arr(events)),
        ])
        .dump()
    }

    /// Writes the Chrome-trace JSON to `path` atomically (temp file +
    /// rename, the same convention as the checkpoint journal).
    ///
    /// # Errors
    ///
    /// Any I/O failure creating, writing, or renaming the file.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        crate::write_atomic(path, self.chrome_trace_json().as_bytes())
    }
}

/// Per-stage wall/CPU totals derived from top-level spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Span name (e.g. `stage.rbf_train`).
    pub name: String,
    /// Total wall-clock microseconds across closings.
    pub wall_us: u64,
    /// Total process CPU microseconds, when every closing carried a
    /// reading (10 ms granularity on Linux).
    pub cpu_us: Option<u64>,
}

/// The installable sink half of a [`FlightRecorder`].
struct RecorderSink {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl Sink for RecorderSink {
    fn record(&mut self, rec: &Record) {
        let entry = match rec {
            Record::Span {
                name,
                us,
                start_us,
                tid,
                cpu_us,
                depth,
                parent,
            } => Entry::Span {
                name: name.clone(),
                start_us: *start_us,
                dur_us: *us,
                tid: *tid,
                cpu_us: *cpu_us,
                depth: *depth,
                parent: parent.clone(),
            },
            // Events carry no timestamp of their own; dispatch is
            // synchronous on the emitting thread, so stamping at
            // arrival is exact.
            Record::Event { name, depth, .. } => Entry::Instant {
                name: name.clone(),
                ts_us: monotonic_us(),
                tid: thread_ordinal(),
                depth: *depth,
            },
            Record::Metric(_) => return,
        };
        self.entries
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .push(entry);
    }

    fn verbosity(&self) -> Verbosity {
        Verbosity::Trace
    }
}

/// A structural summary of a validated trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Number of complete (`"X"`) span slices.
    pub spans: usize,
    /// Number of instant (`"i"`) events.
    pub instants: usize,
    /// Number of distinct thread lanes.
    pub threads: usize,
}

/// A trace-validation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceError(pub String);

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Chrome trace: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

/// Validates that `text` parses as a Chrome-trace JSON document: a
/// top-level object with a `traceEvents` array whose entries carry the
/// fields the viewers require (`ph`, `name`, `pid`, `tid`, and `ts` +
/// `dur` for complete slices).
///
/// # Errors
///
/// [`TraceError`] describing the first structural violation.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, TraceError> {
    let doc = Json::parse(text).map_err(|e| TraceError(e.to_string()))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| TraceError("missing traceEvents array".to_string()))?;
    let mut spans = 0usize;
    let mut instants = 0usize;
    let mut tids: Vec<i64> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| TraceError(format!("event {i}: missing ph")))?;
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(TraceError(format!("event {i}: missing name")));
        }
        for field in ["pid", "tid"] {
            if ev.get(field).and_then(Json::as_i64).is_none() {
                return Err(TraceError(format!("event {i}: missing {field}")));
            }
        }
        if let Some(tid) = ev.get("tid").and_then(Json::as_i64) {
            if !tids.contains(&tid) {
                tids.push(tid);
            }
        }
        match ph {
            "X" => {
                for field in ["ts", "dur"] {
                    if ev.get(field).and_then(Json::as_i64).is_none() {
                        return Err(TraceError(format!("slice {i}: missing {field}")));
                    }
                }
                spans += 1;
            }
            "i" | "I" => {
                if ev.get("ts").and_then(Json::as_i64).is_none() {
                    return Err(TraceError(format!("instant {i}: missing ts")));
                }
                instants += 1;
            }
            "M" => {} // metadata
            other => {
                return Err(TraceError(format!(
                    "event {i}: unsupported phase {other:?}"
                )));
            }
        }
    }
    Ok(TraceSummary {
        spans,
        instants,
        threads: tids.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_span(rec: &mut Box<dyn Sink>, name: &str, start: u64, dur: u64, tid: u64) {
        rec.record(&Record::Span {
            name: name.to_string(),
            us: dur,
            start_us: start,
            tid,
            cpu_us: Some(dur / 2),
            depth: if tid == 0 { 0 } else { 1 },
            parent: (tid != 0).then(|| "stage.parent".to_string()),
        });
    }

    #[test]
    fn exported_trace_validates_and_counts_lanes() {
        let recorder = FlightRecorder::new();
        let mut sink = recorder.sink();
        record_span(&mut sink, "stage.sampling", 0, 500, 0);
        record_span(&mut sink, "exec.rbf_grid.w0", 600, 300, 1);
        record_span(&mut sink, "exec.rbf_grid.w1", 600, 280, 2);
        sink.record(&Record::Event {
            name: "rbf.selected".to_string(),
            level: ppm_telemetry::Level::Info,
            fields: vec![],
            depth: 1,
        });
        let text = recorder.chrome_trace_json();
        let summary = validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.instants, 1);
        assert!(summary.threads >= 3, "worker lanes missing: {summary:?}");
    }

    #[test]
    fn stage_timings_aggregate_top_level_spans() {
        let recorder = FlightRecorder::new();
        let mut sink = recorder.sink();
        record_span(&mut sink, "stage.sampling", 0, 500, 0);
        record_span(&mut sink, "stage.rbf_train", 600, 900, 0);
        record_span(&mut sink, "stage.rbf_train", 1600, 100, 0);
        record_span(&mut sink, "exec.rbf_grid.w0", 700, 300, 1); // depth 1: excluded
        let stages = recorder.stage_timings();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].name, "stage.sampling");
        assert_eq!(stages[0].wall_us, 500);
        assert_eq!(stages[1].name, "stage.rbf_train");
        assert_eq!(stages[1].wall_us, 1000);
        assert_eq!(stages[1].cpu_us, Some(500));
    }

    #[test]
    fn live_spans_are_captured_end_to_end() {
        // Real spans through the real dispatch path.
        ppm_telemetry::clear_sinks();
        let recorder = FlightRecorder::new();
        ppm_telemetry::add_sink(recorder.sink());
        {
            let _outer = ppm_telemetry::span("obs.live_outer");
            let _inner = ppm_telemetry::span("obs.live_inner");
        }
        ppm_telemetry::clear_sinks();
        let text = recorder.chrome_trace_json();
        let summary = validate_chrome_trace(&text).unwrap();
        assert!(summary.spans >= 2);
        assert!(text.contains("obs.live_outer") && text.contains("obs.live_inner"));
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
        let missing_dur = r#"{"traceEvents":[{"ph":"X","name":"a","pid":1,"tid":0,"ts":5}]}"#;
        let e = validate_chrome_trace(missing_dur).unwrap_err();
        assert!(e.to_string().contains("dur"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let recorder = FlightRecorder::new();
        let summary = validate_chrome_trace(&recorder.chrome_trace_json()).unwrap();
        assert_eq!(
            summary,
            TraceSummary {
                spans: 0,
                instants: 0,
                threads: 0
            }
        );
    }
}
