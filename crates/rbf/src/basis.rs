//! Gaussian radial basis functions with per-dimension radii.

/// A Gaussian radial basis function (paper Eq. 2):
///
/// ```text
/// h(x) = exp( -Σₖ (xₖ - cₖ)² / rₖ² )
/// ```
///
/// The response is 1 at the center and decays with distance, anisotropically
/// when the radii differ across dimensions.
///
/// # Examples
///
/// ```
/// use ppm_rbf::Rbf;
///
/// let h = Rbf::new(vec![0.5, 0.5], vec![0.25, 1.0]);
/// assert!((h.eval(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
/// // Moving along the tight dimension decays faster than the loose one.
/// assert!(h.eval(&[0.75, 0.5]) < h.eval(&[0.5, 0.75]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rbf {
    center: Vec<f64>,
    radius: Vec<f64>,
}

impl Rbf {
    /// Minimum radius; prevents a degenerate basis function whose
    /// response is a spike at a single point.
    pub const MIN_RADIUS: f64 = 1e-6;

    /// Creates a basis function with the given center and radius vector.
    ///
    /// Radii are clamped below by [`Rbf::MIN_RADIUS`].
    ///
    /// # Panics
    ///
    /// Panics if `center` and `radius` lengths differ, are empty, or any
    /// component is not finite or is negative (radius).
    pub fn new(center: Vec<f64>, radius: Vec<f64>) -> Self {
        assert_eq!(center.len(), radius.len(), "center/radius length mismatch");
        assert!(!center.is_empty(), "RBF needs at least one dimension");
        assert!(center.iter().all(|v| v.is_finite()), "non-finite center");
        assert!(
            radius.iter().all(|v| v.is_finite() && *v >= 0.0),
            "radii must be non-negative and finite"
        );
        let radius = radius
            .into_iter()
            .map(|r| r.max(Self::MIN_RADIUS))
            .collect();
        Rbf { center, radius }
    }

    /// The center point.
    pub fn center(&self) -> &[f64] {
        &self.center
    }

    /// The per-dimension radii.
    pub fn radius(&self) -> &[f64] {
        &self.radius
    }

    /// The input dimensionality.
    pub fn dim(&self) -> usize {
        self.center.len()
    }

    /// Evaluates the basis function at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        let mut d2 = 0.0;
        for ((&xi, &ci), &ri) in x.iter().zip(&self.center).zip(&self.radius) {
            let z = (xi - ci) / ri;
            d2 += z * z;
        }
        (-d2).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    #[test]
    fn unit_response_at_center() {
        let h = Rbf::new(vec![0.2, 0.9], vec![0.5, 0.5]);
        assert!((h.eval(&[0.2, 0.9]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn response_decays_with_distance() {
        let h = Rbf::new(vec![0.5], vec![0.5]);
        let near = h.eval(&[0.6]);
        let far = h.eval(&[0.9]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn matches_closed_form() {
        let h = Rbf::new(vec![0.0, 0.0], vec![1.0, 2.0]);
        let x = [1.0, 2.0];
        let expected = (-(1.0f64 / 1.0 + 4.0 / 4.0)).exp();
        assert!((h.eval(&x) - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_radius_is_clamped() {
        let h = Rbf::new(vec![0.5], vec![0.0]);
        assert_eq!(h.radius()[0], Rbf::MIN_RADIUS);
        assert!((h.eval(&[0.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        Rbf::new(vec![0.5], vec![0.5, 0.5]);
    }

    #[test]
    fn random_response_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(101);
        for _ in 0..128 {
            let dim = 1 + rng.below(5) as usize;
            let c: Vec<f64> = (0..dim).map(|_| rng.unit_f64()).collect();
            let x: Vec<f64> = c.iter().map(|a| a + 4.0 * rng.unit_f64() - 2.0).collect();
            let r = 0.01 + 9.99 * rng.unit_f64();
            let h = Rbf::new(c, vec![r; dim]);
            let v = h.eval(&x);
            assert!((0.0..=1.0).contains(&v), "response {v} outside [0, 1]");
        }
    }

    #[test]
    fn random_symmetric_about_center() {
        let mut rng = Rng::seed_from_u64(102);
        for _ in 0..128 {
            let off = 0.01 + 0.99 * rng.unit_f64();
            let r = 0.05 + 4.95 * rng.unit_f64();
            let h = Rbf::new(vec![0.5], vec![r]);
            let a = h.eval(&[0.5 + off]);
            let b = h.eval(&[0.5 - off]);
            assert!((a - b).abs() < 1e-12);
        }
    }
}
