//! Model-selection criteria balancing fit quality against complexity.

/// A model-selection criterion to minimize during subset selection.
///
/// The paper uses the corrected Akaike Information Criterion
/// ([`Criterion::Aicc`], paper Eq. 9); BIC and GCV are provided for the
/// selection-criterion ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Criterion {
    /// Corrected Akaike Information Criterion:
    /// `p·log(σ̂²) + 2m + 2m(m+1)/(p-m-1)`.
    #[default]
    Aicc,
    /// Bayesian Information Criterion: `p·log(σ̂²) + m·log(p)`.
    Bic,
    /// Generalized Cross-Validation: `p·log(σ̂²) - 2p·log(1 - m/p)`.
    Gcv,
}

impl Criterion {
    /// Evaluates the criterion for a model with `m` parameters fitted to
    /// `p` points with residual sum of squares `sse`. Lower is better.
    ///
    /// Returns `f64::INFINITY` for models too complex to be scored
    /// (`m >= p - 1` for AICc, `m >= p` for GCV) so that the selection
    /// search naturally rejects them.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `sse` is negative or non-finite.
    pub fn score(self, p: usize, m: usize, sse: f64) -> f64 {
        assert!(p > 0, "criterion needs at least one data point");
        assert!(sse.is_finite() && sse >= -1e-9, "invalid sse {sse}");
        let pf = p as f64;
        let mf = m as f64;
        // Floor the variance so a perfect fit scores very well without
        // producing -inf (which would defeat tie-breaking on complexity).
        let sigma2 = (sse.max(0.0) / pf).max(1e-12);
        let fit = pf * sigma2.ln();
        match self {
            Criterion::Aicc => {
                if m + 1 >= p {
                    return f64::INFINITY;
                }
                fit + 2.0 * mf + 2.0 * mf * (mf + 1.0) / (pf - mf - 1.0)
            }
            Criterion::Bic => fit + mf * pf.ln(),
            Criterion::Gcv => {
                if m >= p {
                    return f64::INFINITY;
                }
                fit - 2.0 * pf * (1.0 - mf / pf).ln()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aicc_matches_formula() {
        let p = 100usize;
        let m = 10usize;
        let sse = 2.5;
        let sigma2: f64 = sse / 100.0;
        let expected = 100.0 * sigma2.ln() + 20.0 + (20.0 * 11.0) / (100.0 - 10.0 - 1.0);
        assert!((Criterion::Aicc.score(p, m, sse) - expected).abs() < 1e-12);
    }

    #[test]
    fn all_criteria_penalize_complexity_at_equal_fit() {
        for c in [Criterion::Aicc, Criterion::Bic, Criterion::Gcv] {
            let simple = c.score(50, 5, 1.0);
            let complex = c.score(50, 20, 1.0);
            assert!(simple < complex, "{c:?} did not penalize complexity");
        }
    }

    #[test]
    fn all_criteria_reward_fit_at_equal_complexity() {
        for c in [Criterion::Aicc, Criterion::Bic, Criterion::Gcv] {
            let good = c.score(50, 5, 0.1);
            let bad = c.score(50, 5, 10.0);
            assert!(good < bad, "{c:?} did not reward fit");
        }
    }

    #[test]
    fn aicc_saturation_returns_infinity() {
        assert!(Criterion::Aicc.score(10, 9, 1.0).is_infinite());
        assert!(Criterion::Aicc.score(10, 20, 1.0).is_infinite());
        assert!(Criterion::Gcv.score(10, 10, 1.0).is_infinite());
    }

    #[test]
    fn perfect_fit_is_finite() {
        let s = Criterion::Aicc.score(50, 5, 0.0);
        assert!(s.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one data point")]
    fn zero_points_panics() {
        Criterion::Aicc.score(0, 0, 1.0);
    }
}
