//! Radial basis function networks for design-space interpolation
//! (paper §2.3–§2.6).
//!
//! The model is a weighted sum of Gaussian radial basis functions
//! (paper Eq. 1 and 2):
//!
//! ```text
//! f(x) = Σⱼ wⱼ hⱼ(x),    hⱼ(x) = exp( -Σₖ (xₖ - cⱼₖ)² / rⱼₖ² )
//! ```
//!
//! Candidate centers `cⱼ` and radii `rⱼ` come from the hyper-rectangles
//! of a fitted [`ppm_regtree::RegressionTree`]: the center of each tree
//! node's rectangle is a candidate center, and its radius is the
//! rectangle's size scaled by a method parameter α (paper Eq. 8). A
//! tree-ordered subset-selection procedure (Orr et al.) picks the subset
//! of candidates minimizing **AICc** (paper Eq. 9), and the output-layer
//! weights are solved by linear least squares.
//!
//! The top-level entry point is [`RbfTrainer`], which grid-searches the
//! method parameters `p_min` (tree leaf size) and α exactly as §2.6
//! prescribes, returning the fitted [`RbfNetwork`] with diagnostics.
//!
//! # Examples
//!
//! ```
//! use ppm_regtree::Dataset;
//! use ppm_rbf::RbfTrainer;
//!
//! // Fit a smooth 1-D function.
//! let pts: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 39.0]).collect();
//! let y: Vec<f64> = pts.iter().map(|p| (3.0 * p[0]).sin() + 2.0).collect();
//! let data = Dataset::new(pts, y)?;
//! let fitted = RbfTrainer::default().fit(&data)?;
//! let err = (fitted.network.predict(&[0.5]) - ((1.5f64).sin() + 2.0)).abs();
//! assert!(err < 0.2, "prediction error {err}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The grid search fans out over worker threads ([`ppm_exec`]); the
//! fitted model is byte-identical for every thread count.

mod basis;
mod criteria;
mod network;
mod selection;
mod trainer;

pub use basis::Rbf;
pub use criteria::Criterion;
pub use network::RbfNetwork;
pub use selection::{
    select_all_leaves, select_centers, select_centers_forward, SelectionConfig, SelectionResult,
};
pub use trainer::{FittedRbf, RbfTrainer, TrainError};
