//! The RBF network: a weighted sum of Gaussian basis functions.

use ppm_linalg::Matrix;

use crate::Rbf;

/// A fitted radial basis function network (paper Eq. 1, Figure 3).
///
/// # Examples
///
/// ```
/// use ppm_rbf::{Rbf, RbfNetwork};
///
/// let net = RbfNetwork::new(
///     vec![Rbf::new(vec![0.0], vec![1.0]), Rbf::new(vec![1.0], vec![1.0])],
///     vec![2.0, -1.0],
/// );
/// let y = net.predict(&[0.0]);
/// assert!((y - (2.0 - (-1.0f64).exp().powi(1))).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RbfNetwork {
    bases: Vec<Rbf>,
    weights: Vec<f64>,
}

impl RbfNetwork {
    /// Assembles a network from basis functions and their output weights.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ, the network is empty, or the basis
    /// functions have inconsistent dimensionality.
    pub fn new(bases: Vec<Rbf>, weights: Vec<f64>) -> Self {
        assert_eq!(bases.len(), weights.len(), "bases/weights length mismatch");
        assert!(
            !bases.is_empty(),
            "network needs at least one basis function"
        );
        let dim = bases[0].dim();
        assert!(
            bases.iter().all(|b| b.dim() == dim),
            "basis functions have inconsistent dimensionality"
        );
        RbfNetwork { bases, weights }
    }

    /// The basis functions (hidden layer).
    pub fn bases(&self) -> &[Rbf] {
        &self.bases
    }

    /// The output-layer weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of RBF centers (the paper's `m`).
    pub fn num_centers(&self) -> usize {
        self.bases.len()
    }

    /// The input dimensionality.
    pub fn dim(&self) -> usize {
        self.bases[0].dim()
    }

    /// Evaluates the network at a point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.bases
            .iter()
            .zip(&self.weights)
            .map(|(b, &w)| w * b.eval(x))
            .sum()
    }

    /// Evaluates the network at many points.
    pub fn predict_many(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Builds the design matrix `H` with `H[i][j] = hⱼ(xᵢ)` for a set of
    /// basis functions — the hidden-layer activations at each data point.
    pub fn design_matrix(bases: &[Rbf], points: &[Vec<f64>]) -> Matrix {
        Matrix::from_fn(points.len(), bases.len(), |i, j| bases[j].eval(&points[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_center_is_scaled_gaussian() {
        let net = RbfNetwork::new(vec![Rbf::new(vec![0.5], vec![0.3])], vec![4.0]);
        assert!((net.predict(&[0.5]) - 4.0).abs() < 1e-12);
        assert!(net.predict(&[0.9]) < 4.0);
    }

    #[test]
    fn predict_is_linear_in_weights() {
        let bases = vec![
            Rbf::new(vec![0.2], vec![0.4]),
            Rbf::new(vec![0.8], vec![0.4]),
        ];
        let n1 = RbfNetwork::new(bases.clone(), vec![1.0, 0.0]);
        let n2 = RbfNetwork::new(bases.clone(), vec![0.0, 1.0]);
        let n3 = RbfNetwork::new(bases, vec![2.0, 3.0]);
        let x = [0.6];
        let combined = 2.0 * n1.predict(&x) + 3.0 * n2.predict(&x);
        assert!((n3.predict(&x) - combined).abs() < 1e-12);
    }

    #[test]
    fn design_matrix_rows_are_activations() {
        let bases = vec![
            Rbf::new(vec![0.0], vec![1.0]),
            Rbf::new(vec![1.0], vec![1.0]),
        ];
        let pts = vec![vec![0.0], vec![1.0]];
        let h = RbfNetwork::design_matrix(&bases, &pts);
        assert!((h[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((h[(1, 1)] - 1.0).abs() < 1e-12);
        assert!((h[(0, 1)] - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn predict_many_matches_predict() {
        let net = RbfNetwork::new(vec![Rbf::new(vec![0.5, 0.5], vec![0.5, 0.5])], vec![1.5]);
        let pts = vec![vec![0.1, 0.2], vec![0.9, 0.8]];
        let many = net.predict_many(&pts);
        assert_eq!(many.len(), 2);
        for (x, &v) in pts.iter().zip(&many) {
            assert_eq!(net.predict(x), v);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_weights_panic() {
        RbfNetwork::new(vec![Rbf::new(vec![0.5], vec![0.5])], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent dimensionality")]
    fn mixed_dims_panic() {
        RbfNetwork::new(
            vec![
                Rbf::new(vec![0.5], vec![0.5]),
                Rbf::new(vec![0.5, 0.5], vec![0.5, 0.5]),
            ],
            vec![1.0, 2.0],
        );
    }
}
