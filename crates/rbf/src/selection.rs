//! Tree-ordered subset selection of RBF centers (paper §2.5).
//!
//! Every node of the regression tree contributes one candidate basis
//! function: center at the node's hyper-rectangle center, radius equal
//! to the rectangle size scaled by α (paper Eq. 8). Candidates are then
//! admitted into the model by the selection-ordering strategy of Orr et
//! al.: starting at the root, each internal node and its two children are
//! toggled through all 8 inclusion combinations, the combination that
//! minimizes the model-selection criterion is committed, and the search
//! descends to the children.

use ppm_linalg::{Cholesky, Matrix};
use ppm_regtree::{Dataset, RegressionTree};

use crate::{Criterion, Rbf, RbfNetwork};

/// Configuration of the subset-selection search.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionConfig {
    /// The criterion to minimize (the paper uses AICc).
    pub criterion: Criterion,
    /// Radius scale α: RBF radius = α × tree-region size (paper Eq. 8).
    pub alpha: f64,
    /// Optional hard cap on the number of centers.
    pub max_centers: Option<usize>,
}

impl SelectionConfig {
    /// A configuration with the given α and the paper's AICc criterion.
    pub fn with_alpha(alpha: f64) -> Self {
        SelectionConfig {
            criterion: Criterion::Aicc,
            alpha,
            max_centers: None,
        }
    }
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig::with_alpha(7.0)
    }
}

/// The outcome of subset selection: the fitted network plus diagnostics.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// The fitted network (selected centers with least-squares weights).
    pub network: RbfNetwork,
    /// Indices (into the tree's node arena) of the selected centers.
    pub selected_nodes: Vec<usize>,
    /// Final criterion value.
    pub score: f64,
    /// Final residual sum of squares on the training sample.
    pub sse: f64,
}

/// Runs tree-ordered subset selection and returns the fitted network.
///
/// # Panics
///
/// Panics if `config.alpha` is not positive and finite, or if the tree
/// and dataset dimensions disagree.
pub fn select_centers(
    tree: &RegressionTree,
    data: &Dataset,
    config: &SelectionConfig,
) -> SelectionResult {
    assert!(
        config.alpha.is_finite() && config.alpha > 0.0,
        "alpha must be positive, got {}",
        config.alpha
    );
    assert_eq!(tree.dim(), data.dim(), "tree/data dimension mismatch");

    // Candidate basis functions, one per tree node (paper Eq. 8).
    let candidates: Vec<Rbf> = tree
        .nodes()
        .iter()
        .map(|n| {
            let radius = n.rect.size.iter().map(|&s| config.alpha * s).collect();
            Rbf::new(n.rect.center.clone(), radius)
        })
        .collect();
    let h_full = RbfNetwork::design_matrix(&candidates, data.points());
    let sys = GramSystem::new(&h_full, data.y());

    let mut selected = vec![false; candidates.len()];
    let mut current = evaluate(&sys, &selected, config);

    // Breadth-first descent through the tree, toggling each internal
    // node together with its two children (8 combinations).
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(0usize);
    while let Some(idx) = queue.pop_front() {
        let node = tree.node(idx);
        let Some((l, r)) = node.children else {
            continue;
        };
        let trio = [idx, l, r];
        let mut best_mask = current_mask(&selected, &trio);
        let mut best_eval = current.clone();
        for mask in 0u8..8 {
            if mask == current_mask(&selected, &trio) {
                continue;
            }
            apply_mask(&mut selected, &trio, mask);
            let eval = evaluate(&sys, &selected, config);
            if eval.score < best_eval.score {
                best_eval = eval;
                best_mask = mask;
            }
        }
        apply_mask(&mut selected, &trio, best_mask);
        current = best_eval;
        queue.push_back(l);
        queue.push_back(r);
    }

    // Guard: never return an empty model — fall back to the root center,
    // whose wide RBF acts as a quasi-constant term.
    if !selected.iter().any(|&s| s) {
        selected[0] = true;
        current = evaluate(&sys, &selected, config);
    }

    let selected_nodes: Vec<usize> = selected
        .iter()
        .enumerate()
        .filter_map(|(i, &s)| s.then_some(i))
        .collect();
    let bases: Vec<Rbf> = selected_nodes
        .iter()
        .map(|&i| candidates[i].clone())
        .collect();
    let weights = current
        .weights
        .clone()
        .expect("non-empty model has weights");
    SelectionResult {
        network: RbfNetwork::new(bases, weights),
        selected_nodes,
        score: current.score,
        sse: current.sse,
    }
}

/// Plain greedy forward selection over all tree-node candidates: add
/// the center that most improves the criterion until no addition helps.
/// Provided as an ablation baseline against the tree-ordered strategy.
///
/// # Panics
///
/// Panics under the same conditions as [`select_centers`].
pub fn select_centers_forward(
    tree: &RegressionTree,
    data: &Dataset,
    config: &SelectionConfig,
) -> SelectionResult {
    assert!(
        config.alpha.is_finite() && config.alpha > 0.0,
        "alpha must be positive, got {}",
        config.alpha
    );
    assert_eq!(tree.dim(), data.dim(), "tree/data dimension mismatch");
    let candidates: Vec<Rbf> = tree
        .nodes()
        .iter()
        .map(|n| {
            let radius = n.rect.size.iter().map(|&s| config.alpha * s).collect();
            Rbf::new(n.rect.center.clone(), radius)
        })
        .collect();
    let h_full = RbfNetwork::design_matrix(&candidates, data.points());
    let sys = GramSystem::new(&h_full, data.y());
    let mut selected = vec![false; candidates.len()];
    let mut current = evaluate(&sys, &selected, config);
    loop {
        let mut best: Option<(usize, Evaluation)> = None;
        for i in 0..candidates.len() {
            if selected[i] {
                continue;
            }
            selected[i] = true;
            let eval = evaluate(&sys, &selected, config);
            selected[i] = false;
            if eval.score < current.score && best.as_ref().is_none_or(|(_, b)| eval.score < b.score)
            {
                best = Some((i, eval));
            }
        }
        match best {
            Some((i, eval)) => {
                selected[i] = true;
                current = eval;
            }
            None => break,
        }
    }
    finish(config, &candidates, &sys, selected, current)
}

/// Uses *every leaf* of the regression tree as a center (no selection),
/// with ridge-stabilized weights. An ablation baseline showing why
/// subset selection matters.
///
/// # Panics
///
/// Panics under the same conditions as [`select_centers`].
pub fn select_all_leaves(
    tree: &RegressionTree,
    data: &Dataset,
    config: &SelectionConfig,
) -> SelectionResult {
    assert!(
        config.alpha.is_finite() && config.alpha > 0.0,
        "alpha must be positive, got {}",
        config.alpha
    );
    assert_eq!(tree.dim(), data.dim(), "tree/data dimension mismatch");
    let candidates: Vec<Rbf> = tree
        .nodes()
        .iter()
        .map(|n| {
            let radius = n.rect.size.iter().map(|&s| config.alpha * s).collect();
            Rbf::new(n.rect.center.clone(), radius)
        })
        .collect();
    let h_full = RbfNetwork::design_matrix(&candidates, data.points());
    let sys = GramSystem::new(&h_full, data.y());
    let mut selected: Vec<bool> = tree.nodes().iter().map(|n| n.is_leaf()).collect();
    // Never exceed the data count; drop the deepest leaves if needed.
    let mut count = selected.iter().filter(|&&s| s).count();
    if count + 1 >= data.len() {
        let mut order: Vec<usize> = (0..selected.len()).filter(|&i| selected[i]).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(tree.node(i).depth));
        for &i in &order {
            if count + 1 < data.len() {
                break;
            }
            selected[i] = false;
            count -= 1;
        }
    }
    let current = evaluate(&sys, &selected, config);
    finish(config, &candidates, &sys, selected, current)
}

fn finish(
    config: &SelectionConfig,
    candidates: &[Rbf],
    sys: &GramSystem<'_>,
    mut selected: Vec<bool>,
    mut current: Evaluation,
) -> SelectionResult {
    if !selected.iter().any(|&s| s) {
        selected[0] = true;
        current = evaluate(sys, &selected, config);
    }
    let selected_nodes: Vec<usize> = selected
        .iter()
        .enumerate()
        .filter_map(|(i, &s)| s.then_some(i))
        .collect();
    let bases: Vec<Rbf> = selected_nodes
        .iter()
        .map(|&i| candidates[i].clone())
        .collect();
    let weights = current
        .weights
        .clone()
        .expect("non-empty model has weights");
    SelectionResult {
        network: RbfNetwork::new(bases, weights),
        selected_nodes,
        score: current.score,
        sse: current.sse,
    }
}

#[derive(Debug, Clone)]
struct Evaluation {
    score: f64,
    sse: f64,
    weights: Option<Vec<f64>>,
}

fn current_mask(selected: &[bool], trio: &[usize; 3]) -> u8 {
    trio.iter()
        .enumerate()
        .map(|(bit, &i)| (selected[i] as u8) << bit)
        .sum()
}

fn apply_mask(selected: &mut [bool], trio: &[usize; 3], mask: u8) {
    for (bit, &i) in trio.iter().enumerate() {
        selected[i] = mask & (1 << bit) != 0;
    }
}

/// The normal-equations view of the full candidate design matrix,
/// precomputed once per selection run.
///
/// The subset search scores hundreds of selections against the same
/// candidate set; factoring the tall `p × m` submatrix anew each time
/// made every evaluation O(p·m²). The Gram matrix `HᵀH` and right-hand
/// side `Hᵀy` over *all* candidates are computed once instead, and each
/// evaluation gathers the selected sub-block and solves the m×m normal
/// equations by Cholesky — O(m³) with m far below p.
struct GramSystem<'a> {
    /// The full candidate design matrix (rows = sample points).
    h_full: &'a Matrix,
    /// Gram matrix `HᵀH` over all candidates.
    gram: Matrix,
    /// Right-hand side `Hᵀy` over all candidates.
    hty: Vec<f64>,
    /// Training responses.
    y: &'a [f64],
}

impl<'a> GramSystem<'a> {
    fn new(h_full: &'a Matrix, y: &'a [f64]) -> Self {
        GramSystem {
            gram: h_full.gram(),
            hty: h_full.t_matvec(y),
            h_full,
            y,
        }
    }
}

/// Fits weights for the current selection and scores it.
fn evaluate(sys: &GramSystem<'_>, selected: &[bool], config: &SelectionConfig) -> Evaluation {
    let cols: Vec<usize> = selected
        .iter()
        .enumerate()
        .filter_map(|(i, &s)| s.then_some(i))
        .collect();
    let p = sys.y.len();
    let m = cols.len();
    if let Some(cap) = config.max_centers {
        if m > cap {
            return Evaluation {
                score: f64::INFINITY,
                sse: f64::INFINITY,
                weights: None,
            };
        }
    }
    if m == 0 {
        let sse: f64 = sys.y.iter().map(|v| v * v).sum();
        return Evaluation {
            score: config.criterion.score(p, 0, sse),
            sse,
            weights: None,
        };
    }
    if m >= p {
        // More centers than points can never be scored by AICc/GCV and
        // would be singular anyway.
        return Evaluation {
            score: f64::INFINITY,
            sse: f64::INFINITY,
            weights: None,
        };
    }
    // Gather the selected sub-block of the normal equations.
    let g = Matrix::from_fn(m, m, |a, b| sys.gram[(cols[a], cols[b])]);
    let rhs: Vec<f64> = cols.iter().map(|&c| sys.hty[c]).collect();
    // Greedy selection explores degenerate candidate sets (e.g. a parent
    // and child with nearly identical wide RBFs); fall back to a tiny
    // scaled ridge rather than failing.
    let w = match Cholesky::new(&g).map(|c| c.solve(&rhs)) {
        Some(w) => w,
        None => {
            let scale = (0..m).map(|a| g[(a, a)]).fold(0.0_f64, f64::max).max(1.0);
            let mut ridged = g;
            for a in 0..m {
                ridged[(a, a)] += 1e-9 * scale;
            }
            match Cholesky::new(&ridged).map(|c| c.solve(&rhs)) {
                Some(w) => w,
                None => {
                    return Evaluation {
                        score: f64::INFINITY,
                        sse: f64::INFINITY,
                        weights: None,
                    }
                }
            }
        }
    };
    ppm_telemetry::counter("rbf.subset_evals").inc();
    // Residual on the training sample, read off the full design matrix
    // (no catastrophic cancellation, unlike the yᵀy − wᵀHᵀy shortcut).
    let mut sse = 0.0;
    for k in 0..p {
        let row = sys.h_full.row(k);
        let mut fit = 0.0;
        for (wi, &c) in w.iter().zip(&cols) {
            fit += wi * row[c];
        }
        let d = fit - sys.y[k];
        sse += d * d;
    }
    Evaluation {
        score: config.criterion.score(p, m, sse),
        sse,
        weights: Some(w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_regtree::RegressionTree;
    use ppm_rng::Rng;

    /// A smooth response plus a little irreducible roughness, mimicking
    /// the regime of real simulator output (an RBF model can never fit
    /// it exactly, so AICc trades fit against center count).
    fn smooth_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from_u64(seed);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.unit_f64(), rng.unit_f64()])
            .collect();
        let y: Vec<f64> = pts
            .iter()
            .map(|p| 2.0 + (3.0 * p[0]).sin() + p[1] * p[1] + 0.03 * rng.normal())
            .collect();
        Dataset::new(pts, y).unwrap()
    }

    #[test]
    fn selection_fits_smooth_function() {
        let data = smooth_dataset(60, 42);
        let tree = RegressionTree::fit(&data, 1);
        let result = select_centers(&tree, &data, &SelectionConfig::with_alpha(6.0));
        // Training fit should be decent.
        let var: f64 = {
            let mean = data.mean_response();
            data.y().iter().map(|v| (v - mean) * (v - mean)).sum()
        };
        assert!(
            result.sse < 0.2 * var,
            "sse {} vs variance {var}",
            result.sse
        );
        // Far fewer centers than points (paper: "much less than half").
        assert!(result.network.num_centers() < data.len() / 2);
    }

    #[test]
    fn selection_generalizes_to_held_out_points() {
        let data = smooth_dataset(80, 7);
        let tree = RegressionTree::fit(&data, 1);
        let result = select_centers(&tree, &data, &SelectionConfig::with_alpha(6.0));
        let mut rng = Rng::seed_from_u64(1000);
        let mut worst: f64 = 0.0;
        for _ in 0..50 {
            let x = vec![rng.unit_f64(), rng.unit_f64()];
            let truth = 2.0 + (3.0 * x[0]).sin() + x[1] * x[1];
            let err = ((result.network.predict(&x) - truth) / truth).abs();
            worst = worst.max(err);
        }
        assert!(worst < 0.30, "worst relative error {worst}");
    }

    #[test]
    fn selected_nodes_match_network_size() {
        let data = smooth_dataset(40, 3);
        let tree = RegressionTree::fit(&data, 2);
        let result = select_centers(&tree, &data, &SelectionConfig::default());
        assert_eq!(result.selected_nodes.len(), result.network.num_centers());
        for &i in &result.selected_nodes {
            assert!(i < tree.nodes().len());
        }
    }

    #[test]
    fn constant_data_selects_minimal_model() {
        let pts: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let y = vec![3.0; 20];
        let data = Dataset::new(pts, y).unwrap();
        let tree = RegressionTree::fit(&data, 1); // a single root node
        let result = select_centers(&tree, &data, &SelectionConfig::default());
        assert_eq!(result.network.num_centers(), 1);
        // Prediction reproduces the constant everywhere in the core of
        // the region (wide RBF is nearly flat).
        assert!((result.network.predict(&[0.5]) - 3.0).abs() < 0.05);
    }

    #[test]
    fn max_centers_is_respected() {
        let data = smooth_dataset(60, 11);
        let tree = RegressionTree::fit(&data, 1);
        let config = SelectionConfig {
            max_centers: Some(3),
            ..SelectionConfig::default()
        };
        let result = select_centers(&tree, &data, &config);
        assert!(result.network.num_centers() <= 3);
    }

    #[test]
    fn forward_selection_also_fits() {
        let data = smooth_dataset(50, 21);
        let tree = RegressionTree::fit(&data, 1);
        let config = SelectionConfig::with_alpha(6.0);
        let fwd = select_centers_forward(&tree, &data, &config);
        assert!(fwd.network.num_centers() >= 1);
        assert!(fwd.sse.is_finite());
        // Greedy forward should achieve a competitive criterion value.
        let orr = select_centers(&tree, &data, &config);
        assert!(
            fwd.score <= orr.score + 50.0,
            "fwd {} vs orr {}",
            fwd.score,
            orr.score
        );
    }

    #[test]
    fn all_leaves_uses_every_leaf_up_to_data_count() {
        let data = smooth_dataset(40, 33);
        let tree = RegressionTree::fit(&data, 4);
        let result = select_all_leaves(
            data_tree_config(&tree),
            &data,
            &SelectionConfig::with_alpha(6.0),
        );
        let leaves = tree.num_leaves();
        assert!(result.network.num_centers() <= leaves);
        assert!(result.network.num_centers() >= leaves.min(data.len() - 2));
    }

    fn data_tree_config(tree: &RegressionTree) -> &RegressionTree {
        tree
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn invalid_alpha_panics() {
        let data = smooth_dataset(10, 0);
        let tree = RegressionTree::fit(&data, 1);
        select_centers(&tree, &data, &SelectionConfig::with_alpha(0.0));
    }
}
