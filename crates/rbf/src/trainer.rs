//! Grid search over the method parameters `p_min` and α (paper §2.6).

use ppm_regtree::{Dataset, RegressionTree};

use crate::{select_centers, Criterion, RbfNetwork, SelectionConfig};

/// Trains an RBF network by grid-searching the regression-tree leaf size
/// `p_min` and the radius scale α, keeping the combination with the
/// lowest model-selection criterion — exactly the procedure of §2.6.
///
/// # Examples
///
/// ```
/// use ppm_regtree::Dataset;
/// use ppm_rbf::RbfTrainer;
///
/// let pts: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
/// let y: Vec<f64> = pts.iter().map(|p| p[0] * p[0]).collect();
/// let data = Dataset::new(pts, y)?;
/// let trainer = RbfTrainer::default();
/// let fitted = trainer.fit(&data);
/// assert!(fitted.alpha > 0.0);
/// # Ok::<(), ppm_regtree::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RbfTrainer {
    /// Candidate regression-tree leaf sizes. The paper finds 1–2 best.
    pub p_min_candidates: Vec<usize>,
    /// Candidate radius scales. The paper finds 5–12 best.
    pub alpha_candidates: Vec<f64>,
    /// Selection criterion (the paper uses AICc).
    pub criterion: Criterion,
    /// Optional cap on the number of centers.
    pub max_centers: Option<usize>,
}

impl Default for RbfTrainer {
    fn default() -> Self {
        RbfTrainer {
            p_min_candidates: vec![1, 2, 3],
            alpha_candidates: vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0],
            criterion: Criterion::Aicc,
            max_centers: None,
        }
    }
}

/// A trained model with the method parameters that produced it
/// (the diagnostics of the paper's Table 4).
#[derive(Debug, Clone)]
pub struct FittedRbf {
    /// The winning network.
    pub network: RbfNetwork,
    /// The winning tree leaf size.
    pub p_min: usize,
    /// The winning radius scale.
    pub alpha: f64,
    /// The winning criterion value.
    pub score: f64,
    /// Residual sum of squares on the training sample.
    pub sse: f64,
    /// Number of nodes in the winning regression tree.
    pub tree_nodes: usize,
    /// Number of leaves in the winning regression tree.
    pub tree_leaves: usize,
}

impl RbfTrainer {
    /// A trainer with a reduced grid, for fast tests and CI.
    pub fn quick() -> Self {
        RbfTrainer {
            p_min_candidates: vec![1, 2],
            alpha_candidates: vec![4.0, 7.0, 10.0],
            ..RbfTrainer::default()
        }
    }

    /// Fits the model, returning the best (p_min, α) combination by the
    /// selection criterion.
    ///
    /// # Panics
    ///
    /// Panics if either candidate list is empty.
    pub fn fit(&self, data: &Dataset) -> FittedRbf {
        assert!(!self.p_min_candidates.is_empty(), "no p_min candidates");
        assert!(!self.alpha_candidates.is_empty(), "no alpha candidates");
        let _span = ppm_telemetry::span("stage.rbf_train");
        let mut best: Option<FittedRbf> = None;
        for &p_min in &self.p_min_candidates {
            let tree = RegressionTree::fit(data, p_min);
            for &alpha in &self.alpha_candidates {
                let config = SelectionConfig {
                    criterion: self.criterion,
                    alpha,
                    max_centers: self.max_centers,
                };
                let result = select_centers(&tree, data, &config);
                ppm_telemetry::counter("rbf.grid_cells").inc();
                ppm_telemetry::event(
                    "rbf.cell",
                    &[
                        ("p_min", p_min.into()),
                        ("alpha", alpha.into()),
                        ("score", result.score.into()),
                        ("centers", result.network.num_centers().into()),
                    ],
                );
                let candidate = FittedRbf {
                    network: result.network,
                    p_min,
                    alpha,
                    score: result.score,
                    sse: result.sse,
                    tree_nodes: tree.nodes().len(),
                    tree_leaves: tree.num_leaves(),
                };
                if best.as_ref().is_none_or(|b| candidate.score < b.score) {
                    best = Some(candidate);
                }
            }
        }
        let best = best.expect("non-empty candidate grids");
        ppm_telemetry::gauge("rbf.selected_aicc").set(best.score);
        ppm_telemetry::gauge("rbf.selected_centers").set(best.network.num_centers() as f64);
        ppm_telemetry::event(
            "rbf.selected",
            &[
                ("p_min", best.p_min.into()),
                ("alpha", best.alpha.into()),
                ("aicc", best.score.into()),
                ("centers", best.network.num_centers().into()),
                ("sse", best.sse.into()),
            ],
        );
        best
    }

    /// Fits with a single fixed `(p_min, α)` pair, bypassing the grid
    /// search (used by the method-parameter sensitivity ablation).
    pub fn fit_fixed(&self, data: &Dataset, p_min: usize, alpha: f64) -> FittedRbf {
        let tree = RegressionTree::fit(data, p_min);
        let config = SelectionConfig {
            criterion: self.criterion,
            alpha,
            max_centers: self.max_centers,
        };
        let result = select_centers(&tree, data, &config);
        FittedRbf {
            network: result.network,
            p_min,
            alpha,
            score: result.score,
            sse: result.sse,
            tree_nodes: tree.nodes().len(),
            tree_leaves: tree.num_leaves(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    fn dataset(n: usize) -> Dataset {
        let mut rng = Rng::seed_from_u64(77);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.unit_f64(), rng.unit_f64()])
            .collect();
        let y: Vec<f64> = pts
            .iter()
            .map(|p| 1.0 + p[0] * 2.0 + (-3.0 * p[1]).exp())
            .collect();
        Dataset::new(pts, y).unwrap()
    }

    #[test]
    fn grid_search_beats_or_matches_any_single_combo() {
        let data = dataset(50);
        let trainer = RbfTrainer::quick();
        let best = trainer.fit(&data);
        for &p_min in &trainer.p_min_candidates {
            for &alpha in &trainer.alpha_candidates {
                let single = trainer.fit_fixed(&data, p_min, alpha);
                assert!(
                    best.score <= single.score + 1e-9,
                    "grid missed a better combo ({p_min}, {alpha})"
                );
            }
        }
    }

    #[test]
    fn winning_parameters_come_from_grid() {
        let data = dataset(40);
        let trainer = RbfTrainer::quick();
        let best = trainer.fit(&data);
        assert!(trainer.p_min_candidates.contains(&best.p_min));
        assert!(trainer.alpha_candidates.contains(&best.alpha));
        assert!(best.tree_nodes >= best.tree_leaves);
    }

    #[test]
    fn fitted_model_predicts_training_points_well() {
        let data = dataset(60);
        let fitted = RbfTrainer::quick().fit(&data);
        let mean = data.mean_response();
        let var: f64 = data.y().iter().map(|v| (v - mean) * (v - mean)).sum();
        assert!(fitted.sse < 0.1 * var, "sse {} vs var {var}", fitted.sse);
    }

    #[test]
    #[should_panic(expected = "no p_min candidates")]
    fn empty_grid_panics() {
        let trainer = RbfTrainer {
            p_min_candidates: vec![],
            ..RbfTrainer::default()
        };
        trainer.fit(&dataset(10));
    }
}
