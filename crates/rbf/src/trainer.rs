//! Grid search over the method parameters `p_min` and α (paper §2.6).

use std::error::Error;
use std::fmt;

use ppm_exec::Executor;
use ppm_regtree::{Dataset, RegressionTree};

use crate::{select_centers, Criterion, RbfNetwork, SelectionConfig};

/// Errors from training an RBF network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TrainError {
    /// A candidate grid was empty; the field names which one
    /// (`"p_min"` or `"alpha"`).
    EmptyGrid(&'static str),
    /// The trainer was configured with zero worker threads.
    NoThreads,
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::EmptyGrid(which) => {
                write!(f, "no {which} candidates: the training grid is empty")
            }
            TrainError::NoThreads => write!(f, "trainer needs at least one worker thread"),
        }
    }
}

impl Error for TrainError {}

/// Trains an RBF network by grid-searching the regression-tree leaf size
/// `p_min` and the radius scale α, keeping the combination with the
/// lowest model-selection criterion — exactly the procedure of §2.6.
///
/// The grid cells are independent, so the search fans out over
/// [`RbfTrainer::threads`] workers: one regression tree is fitted per
/// `p_min`, the α cells share it, and the winner is reduced by an
/// order-independent argmin (ties break toward the lower grid index).
/// The fitted model is byte-identical for every thread count.
///
/// # Examples
///
/// ```
/// use ppm_regtree::Dataset;
/// use ppm_rbf::RbfTrainer;
///
/// let pts: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
/// let y: Vec<f64> = pts.iter().map(|p| p[0] * p[0]).collect();
/// let data = Dataset::new(pts, y)?;
/// let trainer = RbfTrainer::default();
/// let fitted = trainer.fit(&data)?;
/// assert!(fitted.alpha > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RbfTrainer {
    /// Candidate regression-tree leaf sizes. The paper finds 1–2 best.
    pub p_min_candidates: Vec<usize>,
    /// Candidate radius scales. The paper finds 5–12 best.
    pub alpha_candidates: Vec<f64>,
    /// Selection criterion (the paper uses AICc).
    pub criterion: Criterion,
    /// Optional cap on the number of centers.
    pub max_centers: Option<usize>,
    /// Worker threads for the grid search (results are identical for
    /// any value ≥ 1).
    pub threads: usize,
}

impl Default for RbfTrainer {
    fn default() -> Self {
        RbfTrainer {
            p_min_candidates: vec![1, 2, 3],
            alpha_candidates: vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0],
            criterion: Criterion::Aicc,
            max_centers: None,
            threads: ppm_exec::default_threads(),
        }
    }
}

/// A trained model with the method parameters that produced it
/// (the diagnostics of the paper's Table 4).
#[derive(Debug, Clone, PartialEq)]
pub struct FittedRbf {
    /// The winning network.
    pub network: RbfNetwork,
    /// The winning tree leaf size.
    pub p_min: usize,
    /// The winning radius scale.
    pub alpha: f64,
    /// The winning criterion value.
    pub score: f64,
    /// Residual sum of squares on the training sample.
    pub sse: f64,
    /// Number of nodes in the winning regression tree.
    pub tree_nodes: usize,
    /// Number of leaves in the winning regression tree.
    pub tree_leaves: usize,
}

impl RbfTrainer {
    /// A trainer with a reduced grid, for fast tests and CI.
    pub fn quick() -> Self {
        RbfTrainer {
            p_min_candidates: vec![1, 2],
            alpha_candidates: vec![4.0, 7.0, 10.0],
            ..RbfTrainer::default()
        }
    }

    /// Sets the worker-thread count for the grid search.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Fits the model, returning the best (p_min, α) combination by the
    /// selection criterion. Cells are searched in parallel over
    /// [`RbfTrainer::threads`] workers; the result is byte-identical
    /// for every thread count.
    ///
    /// # Errors
    ///
    /// * [`TrainError::EmptyGrid`] if either candidate list is empty.
    /// * [`TrainError::NoThreads`] if `threads == 0`.
    pub fn fit(&self, data: &Dataset) -> Result<FittedRbf, TrainError> {
        if self.p_min_candidates.is_empty() {
            return Err(TrainError::EmptyGrid("p_min"));
        }
        if self.alpha_candidates.is_empty() {
            return Err(TrainError::EmptyGrid("alpha"));
        }
        let exec = Executor::new(self.threads).map_err(|_| TrainError::NoThreads)?;
        let _span = ppm_telemetry::span("stage.rbf_train");

        // One regression tree per p_min, shared by that row's α cells.
        let trees: Vec<RegressionTree> = self
            .p_min_candidates
            .iter()
            .map(|&p_min| RegressionTree::fit(data, p_min))
            .collect();

        // Fan the (p_min, α) cells out: cell index = row-major grid
        // position, so the argmin tie-break reproduces the serial
        // loop's first-wins order.
        let n_alpha = self.alpha_candidates.len();
        let cells = self.p_min_candidates.len() * n_alpha;
        let results = exec.map("rbf_grid", cells, |idx| {
            let (pi, ai) = (idx / n_alpha, idx % n_alpha);
            let p_min = self.p_min_candidates[pi];
            let alpha = self.alpha_candidates[ai];
            let config = SelectionConfig {
                criterion: self.criterion,
                alpha,
                max_centers: self.max_centers,
            };
            let result = select_centers(&trees[pi], data, &config);
            ppm_telemetry::counter("rbf.grid_cells").inc();
            ppm_telemetry::event(
                "rbf.cell",
                &[
                    ("p_min", p_min.into()),
                    ("alpha", alpha.into()),
                    ("score", result.score.into()),
                    ("centers", result.network.num_centers().into()),
                ],
            );
            result
        });

        let Some(win) = ppm_exec::argmin(results.iter().map(|r| r.score)) else {
            unreachable!("both grids checked non-empty, so cells >= 1");
        };
        let (pi, ai) = (win / n_alpha, win % n_alpha);
        let mut results = results;
        let result = results.swap_remove(win);
        let best = FittedRbf {
            network: result.network,
            p_min: self.p_min_candidates[pi],
            alpha: self.alpha_candidates[ai],
            score: result.score,
            sse: result.sse,
            tree_nodes: trees[pi].nodes().len(),
            tree_leaves: trees[pi].num_leaves(),
        };
        ppm_telemetry::gauge("rbf.selected_aicc").set(best.score);
        ppm_telemetry::gauge("rbf.selected_centers").set(best.network.num_centers() as f64);
        ppm_telemetry::event(
            "rbf.selected",
            &[
                ("p_min", best.p_min.into()),
                ("alpha", best.alpha.into()),
                ("aicc", best.score.into()),
                ("centers", best.network.num_centers().into()),
                ("sse", best.sse.into()),
            ],
        );
        Ok(best)
    }

    /// Fits with a single fixed `(p_min, α)` pair, bypassing the grid
    /// search (used by the method-parameter sensitivity ablation).
    pub fn fit_fixed(&self, data: &Dataset, p_min: usize, alpha: f64) -> FittedRbf {
        let tree = RegressionTree::fit(data, p_min);
        let config = SelectionConfig {
            criterion: self.criterion,
            alpha,
            max_centers: self.max_centers,
        };
        let result = select_centers(&tree, data, &config);
        FittedRbf {
            network: result.network,
            p_min,
            alpha,
            score: result.score,
            sse: result.sse,
            tree_nodes: tree.nodes().len(),
            tree_leaves: tree.num_leaves(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    fn dataset(n: usize) -> Dataset {
        let mut rng = Rng::seed_from_u64(77);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.unit_f64(), rng.unit_f64()])
            .collect();
        let y: Vec<f64> = pts
            .iter()
            .map(|p| 1.0 + p[0] * 2.0 + (-3.0 * p[1]).exp())
            .collect();
        Dataset::new(pts, y).unwrap()
    }

    #[test]
    fn grid_search_beats_or_matches_any_single_combo() {
        let data = dataset(50);
        let trainer = RbfTrainer::quick();
        let best = trainer.fit(&data).unwrap();
        for &p_min in &trainer.p_min_candidates {
            for &alpha in &trainer.alpha_candidates {
                let single = trainer.fit_fixed(&data, p_min, alpha);
                assert!(
                    best.score <= single.score + 1e-9,
                    "grid missed a better combo ({p_min}, {alpha})"
                );
            }
        }
    }

    #[test]
    fn winning_parameters_come_from_grid() {
        let data = dataset(40);
        let trainer = RbfTrainer::quick();
        let best = trainer.fit(&data).unwrap();
        assert!(trainer.p_min_candidates.contains(&best.p_min));
        assert!(trainer.alpha_candidates.contains(&best.alpha));
        assert!(best.tree_nodes >= best.tree_leaves);
    }

    #[test]
    fn fitted_model_predicts_training_points_well() {
        let data = dataset(60);
        let fitted = RbfTrainer::quick().fit(&data).unwrap();
        let mean = data.mean_response();
        let var: f64 = data.y().iter().map(|v| (v - mean) * (v - mean)).sum();
        assert!(fitted.sse < 0.1 * var, "sse {} vs var {var}", fitted.sse);
    }

    #[test]
    fn empty_p_min_grid_is_a_typed_error() {
        let trainer = RbfTrainer {
            p_min_candidates: vec![],
            ..RbfTrainer::default()
        };
        let err = trainer.fit(&dataset(10)).unwrap_err();
        assert_eq!(err, TrainError::EmptyGrid("p_min"));
        assert!(err.to_string().contains("p_min"));
    }

    #[test]
    fn empty_alpha_grid_is_a_typed_error() {
        let trainer = RbfTrainer {
            alpha_candidates: vec![],
            ..RbfTrainer::default()
        };
        let err = trainer.fit(&dataset(10)).unwrap_err();
        assert_eq!(err, TrainError::EmptyGrid("alpha"));
    }

    #[test]
    fn zero_threads_is_a_typed_error() {
        let trainer = RbfTrainer::quick().with_threads(0);
        assert_eq!(
            trainer.fit(&dataset(10)).unwrap_err(),
            TrainError::NoThreads
        );
    }

    #[test]
    fn fit_is_identical_across_thread_counts() {
        let data = dataset(50);
        let reference = RbfTrainer::quick().with_threads(1).fit(&data).unwrap();
        for threads in [2, 8] {
            let fitted = RbfTrainer::quick()
                .with_threads(threads)
                .fit(&data)
                .unwrap();
            assert_eq!(reference, fitted, "threads={threads}");
        }
    }
}
