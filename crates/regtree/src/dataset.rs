//! Sampled design points with their simulated responses.

use std::error::Error;
use std::fmt;

/// Errors raised when constructing a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DatasetError {
    /// The dataset has no points.
    Empty,
    /// The number of responses differs from the number of points.
    LengthMismatch {
        /// Number of design points.
        points: usize,
        /// Number of responses.
        responses: usize,
    },
    /// Point `index` has a different dimension than point 0.
    InconsistentDimension {
        /// Index of the offending point.
        index: usize,
    },
    /// A coordinate or response is NaN or infinite.
    NonFinite,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Empty => write!(f, "dataset has no points"),
            DatasetError::LengthMismatch { points, responses } => {
                write!(f, "{points} points but {responses} responses")
            }
            DatasetError::InconsistentDimension { index } => {
                write!(f, "point {index} has inconsistent dimension")
            }
            DatasetError::NonFinite => write!(f, "dataset contains non-finite values"),
        }
    }
}

impl Error for DatasetError {}

/// A sample: design points (unit coordinates) and their responses.
///
/// # Examples
///
/// ```
/// use ppm_regtree::Dataset;
///
/// let data = Dataset::new(vec![vec![0.0], vec![1.0]], vec![1.0, 2.0])?;
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.dim(), 1);
/// # Ok::<(), ppm_regtree::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    points: Vec<Vec<f64>>,
    y: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset after validating shape and finiteness.
    ///
    /// # Errors
    ///
    /// See [`DatasetError`].
    pub fn new(points: Vec<Vec<f64>>, y: Vec<f64>) -> Result<Self, DatasetError> {
        if points.is_empty() {
            return Err(DatasetError::Empty);
        }
        if points.len() != y.len() {
            return Err(DatasetError::LengthMismatch {
                points: points.len(),
                responses: y.len(),
            });
        }
        let dim = points[0].len();
        if dim == 0 {
            return Err(DatasetError::InconsistentDimension { index: 0 });
        }
        for (i, p) in points.iter().enumerate() {
            if p.len() != dim {
                return Err(DatasetError::InconsistentDimension { index: i });
            }
            if p.iter().any(|v| !v.is_finite()) {
                return Err(DatasetError::NonFinite);
            }
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(DatasetError::NonFinite);
        }
        Ok(Dataset { points, y })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the dataset is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality of the points.
    pub fn dim(&self) -> usize {
        self.points[0].len()
    }

    /// The design points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// The responses.
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// One point.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.points[i]
    }

    /// One response.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn response(&self, i: usize) -> f64 {
        self.y[i]
    }

    /// Mean of the responses.
    pub fn mean_response(&self) -> f64 {
        self.y.iter().sum::<f64>() / self.y.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_shapes() {
        assert_eq!(Dataset::new(vec![], vec![]), Err(DatasetError::Empty));
        assert_eq!(
            Dataset::new(vec![vec![0.0]], vec![]),
            Err(DatasetError::LengthMismatch {
                points: 1,
                responses: 0
            })
        );
        assert_eq!(
            Dataset::new(vec![vec![0.0], vec![0.0, 1.0]], vec![1.0, 2.0]),
            Err(DatasetError::InconsistentDimension { index: 1 })
        );
        assert_eq!(
            Dataset::new(vec![vec![f64::NAN]], vec![1.0]),
            Err(DatasetError::NonFinite)
        );
        assert_eq!(
            Dataset::new(vec![vec![0.0]], vec![f64::INFINITY]),
            Err(DatasetError::NonFinite)
        );
    }

    #[test]
    fn accessors_work() {
        let d = Dataset::new(vec![vec![0.1, 0.2], vec![0.3, 0.4]], vec![1.0, 3.0]).unwrap();
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.dim(), 2);
        assert_eq!(d.point(1), &[0.3, 0.4]);
        assert_eq!(d.response(0), 1.0);
        assert_eq!(d.mean_response(), 2.0);
    }

    #[test]
    fn error_display() {
        assert!(DatasetError::Empty.to_string().contains("no points"));
        assert!(DatasetError::NonFinite.to_string().contains("non-finite"));
    }
}
