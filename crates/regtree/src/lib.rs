//! Regression trees over sampled design points (paper §2.4).
//!
//! A regression tree recursively bifurcates the design space along one
//! parameter at a time, choosing at each node the parameter `k` and
//! boundary `b` that minimize the residual square error
//!
//! ```text
//! E(k, b) = (1/p) ( Σ_{i ∈ S_L} (yᵢ - ȳ_L)² + Σ_{i ∈ S_R} (yᵢ - ȳ_R)² )
//! ```
//!
//! Splitting continues until every terminal node holds at most `p_min`
//! points. Every node corresponds to a hyper-rectangle of the (unit)
//! design space; the rectangles' centers and sizes seed the RBF network
//! construction (paper §2.5), and the split history reproduces the
//! paper's Table 5 and Figure 5.
//!
//! All coordinates are *unit* coordinates in `[0, 1]^n`; callers that
//! need engineering values convert through their `ParamSpace`.
//!
//! # Examples
//!
//! ```
//! use ppm_regtree::{Dataset, RegressionTree};
//!
//! // A step function in one dimension.
//! let points: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
//! let y: Vec<f64> = points.iter().map(|p| if p[0] < 0.5 { 1.0 } else { 3.0 }).collect();
//! let data = Dataset::new(points, y).unwrap();
//! let tree = RegressionTree::fit(&data, 1);
//! // The first split should be at the step.
//! let root_split = tree.splits()[0];
//! assert_eq!(root_split.param, 0);
//! assert!((tree.node(0).split.unwrap().value - 0.5).abs() < 0.07);
//! ```

mod dataset;
mod tree;

pub use dataset::{Dataset, DatasetError};
pub use tree::{Node, Rect, RegressionTree, Split, SplitRecord};
