//! Recursive-partitioning regression tree construction.

use crate::Dataset;

/// An axis-aligned hyper-rectangle in unit coordinates, stored as a
/// center and per-dimension sizes (paper §2.5).
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    /// Center of the rectangle.
    pub center: Vec<f64>,
    /// Side length along each dimension.
    pub size: Vec<f64>,
}

impl Rect {
    /// The unit cube `[0, 1]^n`.
    pub fn unit(dim: usize) -> Self {
        Rect {
            center: vec![0.5; dim],
            size: vec![1.0; dim],
        }
    }

    /// Lower corner along dimension `k`.
    pub fn lo(&self, k: usize) -> f64 {
        self.center[k] - self.size[k] / 2.0
    }

    /// Upper corner along dimension `k`.
    pub fn hi(&self, k: usize) -> f64 {
        self.center[k] + self.size[k] / 2.0
    }

    /// Splits the rectangle at `value` along dimension `k` into
    /// (left, right) halves.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the rectangle along `k`.
    pub fn split_at(&self, k: usize, value: f64) -> (Rect, Rect) {
        let (lo, hi) = (self.lo(k), self.hi(k));
        assert!(
            value > lo - 1e-12 && value < hi + 1e-12,
            "split {value} outside [{lo}, {hi}] in dim {k}"
        );
        let mut left = self.clone();
        left.center[k] = (lo + value) / 2.0;
        left.size[k] = value - lo;
        let mut right = self.clone();
        right.center[k] = (value + hi) / 2.0;
        right.size[k] = hi - value;
        (left, right)
    }

    /// True if the point lies inside the rectangle (closed bounds).
    pub fn contains(&self, x: &[f64]) -> bool {
        x.iter()
            .enumerate()
            .all(|(k, &v)| v >= self.lo(k) - 1e-12 && v <= self.hi(k) + 1e-12)
    }
}

/// A committed split: partition dimension and boundary value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// Index of the partitioned parameter (the paper's `k`).
    pub param: usize,
    /// Boundary value in unit coordinates (the paper's `b`): points with
    /// `x[param] <= value` go left.
    pub value: f64,
}

/// One entry of the split history, used for the paper's Table 5 and
/// Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitRecord {
    /// Index of the node that was split.
    pub node: usize,
    /// The partitioned parameter.
    pub param: usize,
    /// The boundary value in unit coordinates.
    pub value: f64,
    /// Depth of the split (root split has depth 1, like the paper).
    pub depth: usize,
    /// Reduction in total sum of squared error achieved by this split.
    pub sse_reduction: f64,
}

/// A node of the regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The hyper-rectangle of design space this node covers.
    pub rect: Rect,
    /// Number of sample points in the node.
    pub count: usize,
    /// Mean response of the node's points.
    pub mean: f64,
    /// Sum of squared deviations of the node's points from `mean`.
    pub sse: f64,
    /// Depth (root = 0).
    pub depth: usize,
    /// The split applied at this node, if it is internal.
    pub split: Option<Split>,
    /// Indices of the (left, right) children, if internal.
    pub children: Option<(usize, usize)>,
}

impl Node {
    /// True for terminal (leaf) nodes.
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// A fitted regression tree (paper §2.4).
///
/// Nodes are stored in an arena; index 0 is the root. The tree predicts
/// with the piecewise-constant leaf means, and exposes its structure for
/// the RBF-center derivation of §2.5.
///
/// # Examples
///
/// ```
/// use ppm_regtree::{Dataset, RegressionTree};
///
/// let pts: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
/// let y: Vec<f64> = pts.iter().map(|p| p[0] * 2.0).collect();
/// let data = Dataset::new(pts, y)?;
/// let tree = RegressionTree::fit(&data, 2);
/// let pred = tree.predict(&[0.5]);
/// assert!((pred - 1.0).abs() < 0.3);
/// # Ok::<(), ppm_regtree::DatasetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    splits: Vec<SplitRecord>,
    p_min: usize,
    dim: usize,
}

impl RegressionTree {
    /// Fits a tree to the dataset, splitting until every leaf holds at
    /// most `p_min` points (or no split reduces the error).
    ///
    /// # Panics
    ///
    /// Panics if `p_min == 0`.
    pub fn fit(data: &Dataset, p_min: usize) -> Self {
        assert!(p_min >= 1, "p_min must be at least 1");
        let _span = ppm_telemetry::span("stage.tree");
        let dim = data.dim();
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            splits: Vec::new(),
            p_min,
            dim,
        };
        let all: Vec<usize> = (0..data.len()).collect();
        let root = tree.make_node(data, &all, Rect::unit(dim), 0);
        tree.nodes.push(root);
        tree.grow(data, 0, all);
        // Order the recorded splits by decreasing significance (SSE
        // reduction), which is how the paper's Table 5 ranks them.
        tree.splits
            .sort_by(|a, b| b.sse_reduction.total_cmp(&a.sse_reduction));
        ppm_telemetry::counter("regtree.fits").inc();
        ppm_telemetry::counter("regtree.nodes_split").add(tree.splits.len() as u64);
        let leaf_sizes = ppm_telemetry::histogram("regtree.leaf_size");
        for node in tree.nodes.iter().filter(|n| n.is_leaf()) {
            leaf_sizes.record(node.count as u64);
        }
        tree
    }

    fn make_node(&self, data: &Dataset, indices: &[usize], rect: Rect, depth: usize) -> Node {
        let count = indices.len();
        let mean = indices.iter().map(|&i| data.response(i)).sum::<f64>() / count.max(1) as f64;
        let sse = indices
            .iter()
            .map(|&i| {
                let d = data.response(i) - mean;
                d * d
            })
            .sum();
        Node {
            rect,
            count,
            mean,
            sse,
            depth,
            split: None,
            children: None,
        }
    }

    fn grow(&mut self, data: &Dataset, node_idx: usize, indices: Vec<usize>) {
        if indices.len() <= self.p_min {
            return;
        }
        let Some((split, gain)) = best_split(data, &indices) else {
            return; // all points identical in x or y
        };
        let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
        for &i in &indices {
            if data.point(i)[split.param] <= split.value {
                left_idx.push(i);
            } else {
                right_idx.push(i);
            }
        }
        debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());

        let depth = self.nodes[node_idx].depth;
        // Clamp the boundary into the node's rectangle: the data-driven
        // midpoint always lies inside it by construction.
        let (lrect, rrect) = self.nodes[node_idx].rect.split_at(split.param, split.value);
        let lnode = self.make_node(data, &left_idx, lrect, depth + 1);
        let rnode = self.make_node(data, &right_idx, rrect, depth + 1);
        let li = self.nodes.len();
        self.nodes.push(lnode);
        let ri = self.nodes.len();
        self.nodes.push(rnode);
        self.nodes[node_idx].split = Some(split);
        self.nodes[node_idx].children = Some((li, ri));
        self.splits.push(SplitRecord {
            node: node_idx,
            param: split.param,
            value: split.value,
            depth: depth + 1,
            sse_reduction: gain,
        });
        self.grow(data, li, left_idx);
        self.grow(data, ri, right_idx);
    }

    /// The arena of nodes; index 0 is the root.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// One node by index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn node(&self, idx: usize) -> &Node {
        &self.nodes[idx]
    }

    /// The split history, ordered by decreasing SSE reduction
    /// ("most significant" first, as in the paper's Table 5).
    pub fn splits(&self) -> &[SplitRecord] {
        &self.splits
    }

    /// The `p_min` used to fit this tree.
    pub fn p_min(&self) -> usize {
        self.p_min
    }

    /// The input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Maximum node depth.
    pub fn max_depth(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Total SSE reduction attributed to each input parameter — a
    /// variance-based importance measure (the quantity behind the
    /// paper's Table 5 ranking, aggregated per parameter).
    pub fn importance(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.dim];
        for s in &self.splits {
            imp[s.param] += s.sse_reduction;
        }
        imp
    }

    /// Predicts with the piecewise-constant leaf means.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.nodes[self.leaf_index(x)].mean
    }

    /// The arena index of the leaf whose region contains `x` — the
    /// partition cell the tree assigns the point to. Useful for
    /// attributing residuals to tree regions.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn leaf_index(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        let mut idx = 0;
        loop {
            let node = &self.nodes[idx];
            match (node.split, node.children) {
                (Some(split), Some((l, r))) => {
                    idx = if x[split.param] <= split.value { l } else { r };
                }
                _ => return idx,
            }
        }
    }
}

/// Finds the (k, b) minimizing E(k, b) over all dimensions and all
/// midpoints between consecutive distinct sorted values. Returns the
/// split and the SSE reduction, or `None` if no split separates the data.
fn best_split(data: &Dataset, indices: &[usize]) -> Option<(Split, f64)> {
    let p = indices.len();
    debug_assert!(p >= 2);
    let total_mean = indices.iter().map(|&i| data.response(i)).sum::<f64>() / p as f64;
    let total_sse: f64 = indices
        .iter()
        .map(|&i| {
            let d = data.response(i) - total_mean;
            d * d
        })
        .sum();

    let mut best: Option<(Split, f64)> = None;
    let dim = data.dim();
    let mut order: Vec<usize> = Vec::with_capacity(p);
    for k in 0..dim {
        order.clear();
        order.extend_from_slice(indices);
        order.sort_by(|&a, &b| data.point(a)[k].total_cmp(&data.point(b)[k]));
        // Prefix sums over the sorted order let every boundary be
        // evaluated in O(1).
        let mut sum_l = 0.0;
        let mut sumsq_l = 0.0;
        let sum_total: f64 = order.iter().map(|&i| data.response(i)).sum();
        let sumsq_total: f64 = order
            .iter()
            .map(|&i| data.response(i) * data.response(i))
            .sum();
        for cut in 0..(p - 1) {
            let yi = data.response(order[cut]);
            sum_l += yi;
            sumsq_l += yi * yi;
            let x_here = data.point(order[cut])[k];
            let x_next = data.point(order[cut + 1])[k];
            if x_next - x_here <= 1e-12 {
                continue; // can't separate equal coordinates
            }
            let pl = (cut + 1) as f64;
            let pr = (p - cut - 1) as f64;
            let sse_l = sumsq_l - sum_l * sum_l / pl;
            let sum_r = sum_total - sum_l;
            let sse_r = (sumsq_total - sumsq_l) - sum_r * sum_r / pr;
            let e = sse_l + sse_r; // E(k,b) up to the constant 1/p factor
            let boundary = (x_here + x_next) / 2.0;
            let candidate = Split {
                param: k,
                value: boundary,
            };
            let better = match &best {
                None => true,
                Some((_, best_gain)) => total_sse - e > *best_gain + 1e-15,
            };
            if better {
                best = Some((candidate, total_sse - e));
            }
        }
    }
    // Only split when it genuinely reduces the error; a pure-noise-free
    // constant region gains nothing.
    best.filter(|(_, gain)| *gain > 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    fn step_data() -> Dataset {
        let pts: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64 / 15.0]).collect();
        let y: Vec<f64> = pts
            .iter()
            .map(|p| if p[0] < 0.5 { 1.0 } else { 5.0 })
            .collect();
        Dataset::new(pts, y).unwrap()
    }

    #[test]
    fn rect_split_partitions() {
        let r = Rect::unit(2);
        let (l, rr) = r.split_at(0, 0.3);
        assert!((l.lo(0) - 0.0).abs() < 1e-12);
        assert!((l.hi(0) - 0.3).abs() < 1e-12);
        assert!((rr.lo(0) - 0.3).abs() < 1e-12);
        assert!((rr.hi(0) - 1.0).abs() < 1e-12);
        // Dimension 1 untouched.
        assert_eq!(l.size[1], 1.0);
    }

    #[test]
    fn rect_contains() {
        let r = Rect::unit(2);
        assert!(r.contains(&[0.0, 1.0]));
        assert!(!r.contains(&[1.1, 0.5]));
    }

    #[test]
    fn step_function_splits_at_step() {
        let tree = RegressionTree::fit(&step_data(), 1);
        let split = tree.node(0).split.unwrap();
        assert_eq!(split.param, 0);
        assert!((split.value - 0.5).abs() < 0.05, "split at {}", split.value);
        // The step function is perfectly fit by two leaves; no further
        // splits have positive gain.
        assert_eq!(tree.num_leaves(), 2);
        assert_eq!(tree.predict(&[0.2]), 1.0);
        assert_eq!(tree.predict(&[0.9]), 5.0);
    }

    #[test]
    fn constant_response_never_splits() {
        let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let y = vec![2.5; 10];
        let tree = RegressionTree::fit(&Dataset::new(pts, y).unwrap(), 1);
        assert_eq!(tree.nodes().len(), 1);
        assert_eq!(tree.predict(&[0.7]), 2.5);
    }

    #[test]
    fn p_min_bounds_leaf_sizes() {
        let mut rng = Rng::seed_from_u64(10);
        let pts: Vec<Vec<f64>> = (0..64)
            .map(|_| vec![rng.unit_f64(), rng.unit_f64()])
            .collect();
        let y: Vec<f64> = pts
            .iter()
            .map(|p| p[0] * 3.0 + (p[1] * 7.0).sin())
            .collect();
        let data = Dataset::new(pts, y).unwrap();
        for p_min in [1usize, 2, 4, 8] {
            let tree = RegressionTree::fit(&data, p_min);
            for n in tree.nodes() {
                if n.is_leaf() {
                    assert!(
                        n.count <= p_min || n.sse < 1e-12,
                        "leaf with {} points at p_min={p_min}",
                        n.count
                    );
                }
            }
        }
    }

    #[test]
    fn children_rects_partition_parent() {
        let mut rng = Rng::seed_from_u64(12);
        let pts: Vec<Vec<f64>> = (0..40)
            .map(|_| vec![rng.unit_f64(), rng.unit_f64(), rng.unit_f64()])
            .collect();
        let y: Vec<f64> = pts.iter().map(|p| p[0] + p[1] * p[2]).collect();
        let tree = RegressionTree::fit(&Dataset::new(pts, y).unwrap(), 2);
        for n in tree.nodes() {
            if let (Some(split), Some((l, r))) = (n.split, n.children) {
                let (ln, rn) = (tree.node(l), tree.node(r));
                assert_eq!(n.count, ln.count + rn.count);
                // Rect edges meet exactly at the split value.
                assert!((ln.hi_edge(split.param) - split.value).abs() < 1e-9);
                assert!((rn.lo_edge(split.param) - split.value).abs() < 1e-9);
            }
        }
    }

    impl Node {
        fn hi_edge(&self, k: usize) -> f64 {
            self.rect.hi(k)
        }
        fn lo_edge(&self, k: usize) -> f64 {
            self.rect.lo(k)
        }
    }

    #[test]
    fn splits_ranked_by_sse_reduction() {
        let mut rng = Rng::seed_from_u64(13);
        let pts: Vec<Vec<f64>> = (0..50)
            .map(|_| vec![rng.unit_f64(), rng.unit_f64()])
            .collect();
        // Dimension 0 dominates the response.
        let y: Vec<f64> = pts.iter().map(|p| 10.0 * p[0] + 0.5 * p[1]).collect();
        let tree = RegressionTree::fit(&Dataset::new(pts, y).unwrap(), 2);
        let splits = tree.splits();
        assert!(!splits.is_empty());
        for w in splits.windows(2) {
            assert!(w[0].sse_reduction >= w[1].sse_reduction);
        }
        assert_eq!(splits[0].param, 0, "dominant parameter should split first");
        assert_eq!(splits[0].depth, 1, "most significant split is the root's");
    }

    #[test]
    fn importance_concentrates_on_the_driving_parameter() {
        let mut rng = Rng::seed_from_u64(15);
        let pts: Vec<Vec<f64>> = (0..80)
            .map(|_| vec![rng.unit_f64(), rng.unit_f64(), rng.unit_f64()])
            .collect();
        let y: Vec<f64> = pts.iter().map(|p| 5.0 * p[1] + 0.2 * p[0]).collect();
        let tree = RegressionTree::fit(&Dataset::new(pts, y).unwrap(), 2);
        let imp = tree.importance();
        assert_eq!(imp.len(), 3);
        assert!(imp[1] > imp[0] && imp[1] > imp[2], "{imp:?}");
        // Total importance equals the sum over recorded splits.
        let total: f64 = tree.splits().iter().map(|s| s.sse_reduction).sum();
        assert!((imp.iter().sum::<f64>() - total).abs() < 1e-9);
    }

    #[test]
    fn predict_on_training_points_with_pmin_1_is_exact() {
        let mut rng = Rng::seed_from_u64(14);
        // Distinct x guarantee every point is separable.
        let pts: Vec<Vec<f64>> = (0..32)
            .map(|i| vec![(i as f64 + rng.unit_f64() * 0.5) / 32.0])
            .collect();
        let y: Vec<f64> = pts.iter().map(|p| (p[0] * 13.0).sin()).collect();
        let data = Dataset::new(pts.clone(), y.clone()).unwrap();
        let tree = RegressionTree::fit(&data, 1);
        for (p, &t) in pts.iter().zip(&y) {
            assert!((tree.predict(p) - t).abs() < 1e-9);
        }
    }

    #[test]
    fn random_tree_counts_are_consistent() {
        for seed in 0..32u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let n = 4 + rng.below(56) as usize;
            let pts: Vec<Vec<f64>> = (0..n)
                .map(|_| vec![rng.unit_f64(), rng.unit_f64()])
                .collect();
            let y: Vec<f64> = pts.iter().map(|p| p[0] - p[1] * p[1]).collect();
            let tree = RegressionTree::fit(&Dataset::new(pts, y).unwrap(), 1);
            // Leaf counts sum to n.
            let leaf_total: usize = tree
                .nodes()
                .iter()
                .filter(|nd| nd.is_leaf())
                .map(|nd| nd.count)
                .sum();
            assert_eq!(leaf_total, n, "seed {seed}");
            assert_eq!(tree.node(0).count, n, "seed {seed}");
        }
    }

    #[test]
    fn leaf_index_always_names_a_containing_leaf() {
        for seed in 0..16u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let pts: Vec<Vec<f64>> = (0..40)
                .map(|_| vec![rng.unit_f64(), rng.unit_f64()])
                .collect();
            let y: Vec<f64> = pts.iter().map(|p| p[0] * 3.0 - p[1]).collect();
            let tree = RegressionTree::fit(&Dataset::new(pts, y).unwrap(), 2);
            for _ in 0..20 {
                let x = [rng.unit_f64(), rng.unit_f64()];
                let idx = tree.leaf_index(&x);
                let node = tree.node(idx);
                assert!(node.is_leaf(), "seed {seed}: index {idx} is internal");
                assert!(node.rect.contains(&x), "seed {seed}: leaf rect misses x");
                assert_eq!(tree.predict(&x), node.mean);
            }
        }
    }

    #[test]
    fn random_prediction_is_some_leaf_mean() {
        for seed in 0..32u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let pts: Vec<Vec<f64>> = (0..30)
                .map(|_| vec![rng.unit_f64(), rng.unit_f64()])
                .collect();
            let y: Vec<f64> = pts.iter().map(|p| p[0] * 2.0 + p[1]).collect();
            let tree = RegressionTree::fit(&Dataset::new(pts, y).unwrap(), 3);
            let x = [rng.unit_f64(), rng.unit_f64()];
            let pred = tree.predict(&x);
            let found = tree
                .nodes()
                .iter()
                .filter(|n| n.is_leaf())
                .any(|n| (n.mean - pred).abs() < 1e-12);
            assert!(found, "seed {seed}: prediction {pred} is not any leaf mean");
        }
    }
}
