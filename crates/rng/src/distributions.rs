//! Small distribution helpers built on top of [`Rng`].

use crate::Rng;

/// A geometric distribution over `1, 2, 3, ...` with success probability `p`.
///
/// Used throughout the workload models for register dependency distances and
/// reuse distances, which empirically decay geometrically.
///
/// # Examples
///
/// ```
/// use ppm_rng::{Geometric, Rng};
///
/// let dist = Geometric::new(0.5);
/// let mut rng = Rng::seed_from_u64(2);
/// let d = dist.sample(&mut rng);
/// assert!(d >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1`.
    pub fn new(p: f64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "geometric p must be in (0, 1], got {p}"
        );
        Geometric { p }
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The distribution mean, `1 / p`.
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// Draws one sample (support starts at 1).
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        // Inverse CDF: ceil(ln(u) / ln(1 - p)) for u in (0, 1).
        let u = 1.0 - rng.unit_f64(); // in (0, 1]
        let x = (u.ln() / (1.0 - self.p).ln()).ceil();
        // Clamp pathological float results into the support.
        if x < 1.0 {
            1
        } else if x > u64::MAX as f64 {
            u64::MAX
        } else {
            x as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn sample_mean_tracks_parameter() {
        for &p in &[0.9, 0.5, 0.1] {
            let dist = Geometric::new(p);
            let mut rng = Rng::seed_from_u64(1234);
            let n = 100_000;
            let total: u64 = (0..n).map(|_| dist.sample(&mut rng)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - dist.mean()).abs() / dist.mean() < 0.05,
                "p={p}: empirical mean {mean} vs {}",
                dist.mean()
            );
        }
    }

    #[test]
    fn degenerate_p_one_is_constant() {
        let dist = Geometric::new(1.0);
        let mut rng = Rng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "geometric p")]
    fn zero_p_panics() {
        Geometric::new(0.0);
    }

    #[test]
    fn support_starts_at_one() {
        let mut meta = Rng::seed_from_u64(2024);
        for seed in 0..64u64 {
            let p = 0.01 + 0.98 * meta.unit_f64();
            let dist = Geometric::new(p);
            let mut rng = Rng::seed_from_u64(seed);
            for _ in 0..50 {
                assert!(dist.sample(&mut rng) >= 1, "seed {seed} p {p}");
            }
        }
    }
}
