//! Deterministic, bit-stable pseudo-random number generation.
//!
//! Every stochastic component of this workspace (synthetic workload
//! generation, latin hypercube sampling, test-point generation) must be
//! exactly reproducible across runs, platforms and dependency upgrades:
//! the whole point of the surrogate-modeling methodology is that the CPI
//! response at a design point is a *deterministic* function of the design
//! parameters. We therefore implement a small, fixed PRNG
//! (xoshiro256++, public domain, Blackman & Vigna) rather than depending
//! on a generator whose stream may change between library versions.
//!
//! # Examples
//!
//! ```
//! use ppm_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let x = rng.unit_f64();          // uniform in [0, 1)
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.below(10);           // uniform in 0..10
//! assert!(k < 10);
//! ```

mod distributions;
mod xoshiro;

pub use distributions::Geometric;
pub use xoshiro::Rng;

/// Derives a child seed from a parent seed and a stream identifier.
///
/// Used to give independent, reproducible random streams to the different
/// components of a workload (instruction mix, addresses, branches, ...)
/// without the streams aliasing each other.
///
/// # Examples
///
/// ```
/// let a = ppm_rng::derive_seed(7, 0);
/// let b = ppm_rng::derive_seed(7, 1);
/// assert_ne!(a, b);
/// // Deterministic:
/// assert_eq!(a, ppm_rng::derive_seed(7, 0));
/// ```
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer over the combined value; good avalanche keeps
    // adjacent (parent, stream) pairs uncorrelated.
    let mut z = parent
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(stream.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_differ_across_streams() {
        let seeds: Vec<u64> = (0..100).map(|s| derive_seed(123, s)).collect();
        for i in 0..seeds.len() {
            for j in (i + 1)..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "streams {i} and {j} collided");
            }
        }
    }

    #[test]
    fn derived_seeds_differ_across_parents() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }
}
