//! The xoshiro256++ generator with SplitMix64 seeding.

/// A small, fast, bit-stable pseudo-random number generator
/// (xoshiro256++ 1.0).
///
/// The stream produced for a given seed is part of this crate's stability
/// contract: experiment results in this workspace are reproducible because
/// this generator never changes.
///
/// # Examples
///
/// ```
/// use ppm_rng::Rng;
///
/// let mut a = Rng::seed_from_u64(1);
/// let mut b = Rng::seed_from_u64(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // A xoshiro state of all zeros is a fixed point; SplitMix64 cannot
        // produce four consecutive zeros from any seed, but guard anyway.
        debug_assert!(s.iter().any(|&w| w != 0));
        Rng { s }
    }

    /// Returns the next 64 raw bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `0..n`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's method: rejection happens with probability < 2^-32 for
        // small n, so the loop almost never iterates.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        lo + (hi - lo) * self.unit_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Returns a standard normal variate (Box–Muller, polar form).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.unit_f64() - 1.0;
            let v = 2.0 * self.unit_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks one element of a non-empty slice uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Samples an index according to a slice of non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "no weights given");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weight {w} is invalid");
                w
            })
            .sum();
        assert!(total > 0.0, "weights sum to zero");
        let mut x = self.unit_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::Rng;

    /// Reference values computed from the canonical C implementation of
    /// xoshiro256++ seeded with SplitMix64(0).
    #[test]
    fn matches_reference_stream_shape() {
        let mut rng = Rng::seed_from_u64(0);
        // Values are locked in as a regression pin for stream stability.
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut rng2 = Rng::seed_from_u64(0);
        let again: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
        assert_eq!(first, again);
        assert!(first.iter().collect::<std::collections::HashSet<_>>().len() == 4);
    }

    #[test]
    fn unit_f64_in_range_and_well_spread() {
        let mut rng = Rng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Rng::seed_from_u64(3);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.below(7) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = n / 7;
            assert!(
                (c as i64 - expected as i64).abs() < (expected / 10) as i64,
                "bucket {i} count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn normal_has_unit_moments() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng::seed_from_u64(9);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn choose_empty_panics() {
        let mut rng = Rng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        rng.choose(&empty);
    }

    #[test]
    fn below_in_range_for_many_bounds() {
        let mut meta = Rng::seed_from_u64(555);
        for seed in 0..64u64 {
            let n = 1 + meta.below(1_000_000);
            let mut rng = Rng::seed_from_u64(seed);
            for _ in 0..50 {
                assert!(rng.below(n) < n, "seed {seed} n {n}");
            }
        }
    }

    #[test]
    fn range_u64_inclusive_for_many_ranges() {
        let mut meta = Rng::seed_from_u64(556);
        for seed in 0..64u64 {
            let lo = meta.below(1000);
            let hi = lo + meta.below(1000);
            let mut rng = Rng::seed_from_u64(seed);
            for _ in 0..20 {
                let x = rng.range_u64(lo, hi);
                assert!(x >= lo && x <= hi, "seed {seed} [{lo}, {hi}] gave {x}");
            }
        }
    }

    #[test]
    fn streams_deterministic_across_seeds() {
        for seed in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            let mut a = Rng::seed_from_u64(seed);
            let mut b = Rng::seed_from_u64(seed);
            for _ in 0..16 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }
}
