//! Space-filling quality measures for designs in the unit hypercube.
//!
//! The paper selects, among many candidate latin hypercube samples, the
//! one with the lowest **L2-star discrepancy** — the L2 norm of the
//! deviation between the sample's empirical distribution and the uniform
//! distribution over anchored boxes `[0, x)`. Warnock's closed form makes
//! this an `O(p² n)` computation.

/// Computes the L2-star discrepancy of a design (Warnock's formula).
///
/// Lower is better (more uniform). The value is `sqrt` of
///
/// ```text
/// (1/3)^n - (2/p) Σᵢ Πₖ (1 - xᵢₖ²)/2 + (1/p²) ΣᵢΣⱼ Πₖ (1 - max(xᵢₖ, xⱼₖ))
/// ```
///
/// # Panics
///
/// Panics if the design is empty, points have inconsistent dimensions, or
/// any coordinate lies outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// // A single centered point in 1-D has discrepancy sqrt(1/12).
/// let d = ppm_sampling::discrepancy::l2_star(&[vec![0.5]]);
/// assert!((d - (1.0f64 / 12.0).sqrt()).abs() < 1e-12);
/// ```
pub fn l2_star(points: &[Vec<f64>]) -> f64 {
    let (p, n) = validate(points);
    ppm_telemetry::counter("sampling.discrepancy_evals").inc();
    let term1 = (1.0f64 / 3.0).powi(n as i32);

    let mut term2 = 0.0;
    for x in points {
        let mut prod = 1.0;
        for &xi in x {
            prod *= (1.0 - xi * xi) / 2.0;
        }
        term2 += prod;
    }

    let mut term3 = 0.0;
    for (i, xi) in points.iter().enumerate() {
        // Diagonal term.
        let mut prod = 1.0;
        for &v in xi {
            prod *= 1.0 - v;
        }
        term3 += prod;
        // Off-diagonal terms (symmetric, count twice).
        for xj in points.iter().skip(i + 1) {
            let mut prod = 1.0;
            for (&a, &b) in xi.iter().zip(xj) {
                prod *= 1.0 - a.max(b);
            }
            term3 += 2.0 * prod;
        }
    }

    let pf = p as f64;
    let d2 = term1 - 2.0 / pf * term2 + term3 / (pf * pf);
    d2.max(0.0).sqrt()
}

/// Computes Hickernell's centered L2 discrepancy.
///
/// This variant is invariant under reflections of the hypercube about
/// coordinate half-planes; it is the measure Fang et al. use to compare
/// latin hypercube designs. Lower is better.
///
/// # Panics
///
/// Panics if the design is empty, points have inconsistent dimensions, or
/// any coordinate lies outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// let d = ppm_sampling::discrepancy::centered_l2(&[vec![0.5]]);
/// assert!((d - (1.0f64 / 12.0).sqrt()).abs() < 1e-12);
/// ```
pub fn centered_l2(points: &[Vec<f64>]) -> f64 {
    let (p, n) = validate(points);
    let term1 = (13.0f64 / 12.0).powi(n as i32);

    let mut term2 = 0.0;
    for x in points {
        let mut prod = 1.0;
        for &xi in x {
            let z = (xi - 0.5).abs();
            prod *= 1.0 + 0.5 * z - 0.5 * z * z;
        }
        term2 += prod;
    }

    let mut term3 = 0.0;
    for xi in points {
        for xj in points {
            let mut prod = 1.0;
            for (&a, &b) in xi.iter().zip(xj) {
                let za = (a - 0.5).abs();
                let zb = (b - 0.5).abs();
                prod *= 1.0 + 0.5 * za + 0.5 * zb - 0.5 * (a - b).abs();
            }
            term3 += prod;
        }
    }

    let pf = p as f64;
    let d2 = term1 - 2.0 / pf * term2 + term3 / (pf * pf);
    d2.max(0.0).sqrt()
}

/// The maximin-distance criterion: the smallest pairwise Euclidean
/// distance in the design. *Higher* is better (points repel each
/// other), complementary to the discrepancy measures.
///
/// # Panics
///
/// Panics if the design has fewer than two points or inconsistent
/// dimensions, or coordinates outside `[0, 1]`.
pub fn maximin(points: &[Vec<f64>]) -> f64 {
    let (p, _) = validate(points);
    assert!(p >= 2, "maximin needs at least two points");
    let mut best = f64::INFINITY;
    for i in 0..p {
        for j in (i + 1)..p {
            let d2: f64 = points[i]
                .iter()
                .zip(&points[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            best = best.min(d2);
        }
    }
    best.sqrt()
}

fn validate(points: &[Vec<f64>]) -> (usize, usize) {
    assert!(!points.is_empty(), "discrepancy of an empty design");
    let n = points[0].len();
    assert!(n > 0, "points must have at least one dimension");
    for (i, x) in points.iter().enumerate() {
        assert_eq!(x.len(), n, "point {i} has inconsistent dimension");
        for (k, &v) in x.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&v),
                "point {i} coordinate {k} = {v} outside [0, 1]"
            );
        }
    }
    (points.len(), n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    /// 1-D analytic check: D²(x) = 1/3 + x² - x for a single point.
    #[test]
    fn single_point_1d_matches_analytic() {
        for &x in &[0.0, 0.25, 0.5, 0.9, 1.0] {
            let expected = (1.0f64 / 3.0 + x * x - x).max(0.0).sqrt();
            let got = l2_star(&[vec![x]]);
            assert!((got - expected).abs() < 1e-12, "x={x}: {got} vs {expected}");
        }
    }

    #[test]
    fn centered_point_minimizes_1d_star() {
        let center = l2_star(&[vec![0.5]]);
        for &x in &[0.0, 0.2, 0.8, 1.0] {
            assert!(l2_star(&[vec![x]]) >= center - 1e-12);
        }
    }

    #[test]
    fn even_grid_beats_clustered_points() {
        let grid: Vec<Vec<f64>> = (0..10).map(|i| vec![(i as f64 + 0.5) / 10.0]).collect();
        let clustered: Vec<Vec<f64>> = (0..10).map(|i| vec![0.4 + i as f64 * 0.01]).collect();
        assert!(l2_star(&grid) < l2_star(&clustered));
        assert!(centered_l2(&grid) < centered_l2(&clustered));
    }

    #[test]
    fn discrepancy_decreases_with_more_uniform_points() {
        let mut rng = Rng::seed_from_u64(17);
        let sizes = [8usize, 32, 128];
        let mut last = f64::INFINITY;
        for &p in &sizes {
            // Average over several random designs to smooth out noise.
            let mut acc = 0.0;
            for _ in 0..5 {
                let pts: Vec<Vec<f64>> = (0..p)
                    .map(|_| (0..3).map(|_| rng.unit_f64()).collect())
                    .collect();
                acc += l2_star(&pts);
            }
            let avg = acc / 5.0;
            assert!(avg < last, "discrepancy did not shrink at p={p}");
            last = avg;
        }
    }

    #[test]
    fn maximin_prefers_spread_points() {
        let spread = vec![
            vec![0.1, 0.1],
            vec![0.9, 0.9],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
        ];
        let clumped = vec![
            vec![0.5, 0.5],
            vec![0.52, 0.5],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
        ];
        assert!(maximin(&spread) > maximin(&clumped));
    }

    #[test]
    fn maximin_known_value() {
        let pts = vec![vec![0.0], vec![0.5], vec![1.0]];
        assert!((maximin(&pts) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn maximin_single_point_panics() {
        maximin(&[vec![0.5]]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_point_panics() {
        l2_star(&[vec![1.5]]);
    }

    #[test]
    #[should_panic(expected = "empty design")]
    fn empty_design_panics() {
        l2_star(&[]);
    }

    #[test]
    fn random_discrepancies_nonnegative_and_finite() {
        for seed in 0..64u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let p = 1 + rng.below(19) as usize;
            let n = 1 + rng.below(4) as usize;
            let pts: Vec<Vec<f64>> = (0..p)
                .map(|_| (0..n).map(|_| rng.unit_f64()).collect())
                .collect();
            let star = l2_star(&pts);
            let cent = centered_l2(&pts);
            assert!(star.is_finite() && star >= 0.0, "seed {seed}");
            assert!(cent.is_finite() && cent >= 0.0, "seed {seed}");
        }
    }

    #[test]
    fn random_permutation_invariant() {
        for seed in 0..32u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let mut pts: Vec<Vec<f64>> = (0..12)
                .map(|_| (0..4).map(|_| rng.unit_f64()).collect())
                .collect();
            let before = l2_star(&pts);
            rng.shuffle(&mut pts);
            assert!((l2_star(&pts) - before).abs() < 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn random_centered_reflection_invariant() {
        // Reflecting every coordinate about 0.5 leaves centered L2 unchanged.
        for seed in 0..32u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let pts: Vec<Vec<f64>> = (0..10)
                .map(|_| (0..3).map(|_| rng.unit_f64()).collect())
                .collect();
            let reflected: Vec<Vec<f64>> = pts
                .iter()
                .map(|x| x.iter().map(|&v| 1.0 - v).collect())
                .collect();
            assert!(
                (centered_l2(&pts) - centered_l2(&reflected)).abs() < 1e-9,
                "seed {seed}"
            );
        }
    }
}
