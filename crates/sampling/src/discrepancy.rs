//! Space-filling quality measures for designs in the unit hypercube.
//!
//! The paper selects, among many candidate latin hypercube samples, the
//! one with the lowest **L2-star discrepancy** — the L2 norm of the
//! deviation between the sample's empirical distribution and the uniform
//! distribution over anchored boxes `[0, x)`. Warnock's closed form makes
//! this an `O(p² n)` computation.

/// Computes the L2-star discrepancy of a design (Warnock's formula).
///
/// Lower is better (more uniform). The value is `sqrt` of
///
/// ```text
/// (1/3)^n - (2/p) Σᵢ Πₖ (1 - xᵢₖ²)/2 + (1/p²) ΣᵢΣⱼ Πₖ (1 - max(xᵢₖ, xⱼₖ))
/// ```
///
/// # Panics
///
/// Panics if the design is empty, points have inconsistent dimensions, or
/// any coordinate lies outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// // A single centered point in 1-D has discrepancy sqrt(1/12).
/// let d = ppm_sampling::discrepancy::l2_star(&[vec![0.5]]);
/// assert!((d - (1.0f64 / 12.0).sqrt()).abs() < 1e-12);
/// ```
pub fn l2_star(points: &[Vec<f64>]) -> f64 {
    let (p, n) = validate(points);
    ppm_telemetry::counter("sampling.discrepancy_evals").inc();
    let term1 = (1.0f64 / 3.0).powi(n as i32);

    // Flatten once into a contiguous *column-major* buffer of the
    // complements (1 - x): `cols[k * p + j]` is dimension k of point j.
    // `1 - max(a, b)` becomes `min(1-a, 1-b)` over the precomputed
    // complements (bit-identical: max picks one of a, b, and its
    // complement is computed the same way either route), and the
    // column-major layout makes the j-values of one dimension
    // contiguous, so the pair loop below can process a block of j's
    // with independent (vectorizable) product accumulators.
    let mut cols = vec![0.0f64; p * n];
    let mut row_term2 = Vec::with_capacity(p);
    for (j, x) in points.iter().enumerate() {
        let mut prod = 1.0;
        for (k, &xi) in x.iter().enumerate() {
            cols[k * p + j] = 1.0 - xi;
            prod *= (1.0 - xi * xi) / 2.0;
        }
        row_term2.push(prod);
    }
    let term2 = pairwise_sum(&row_term2);

    // term3 row i: the diagonal product Πₖ(1-xᵢₖ) plus twice the
    // symmetric i<j products. Row totals feed a pairwise sum, which is
    // both more accurate than a running fold and keeps a fixed
    // association order regardless of the row loop's internals.
    const LANES: usize = 8;
    let mut ri = vec![0.0f64; n];
    let mut row_term3 = Vec::with_capacity(p);
    for i in 0..p {
        for (k, r) in ri.iter_mut().enumerate() {
            *r = cols[k * p + i];
        }
        let mut diag = 1.0;
        for &v in &ri {
            diag *= v;
        }
        let mut off = 0.0;
        let mut j = i + 1;
        // Blocked: LANES independent running products over contiguous
        // j's — no cross-lane dependency, so the chain of n multiplies
        // overlaps across the block (and vectorizes).
        while j + LANES <= p {
            let mut prod = [1.0f64; LANES];
            for (k, &m) in ri.iter().enumerate() {
                let c = &cols[k * p + j..k * p + j + LANES];
                for (pr, &v) in prod.iter_mut().zip(c) {
                    *pr *= m.min(v);
                }
            }
            off += ((prod[0] + prod[1]) + (prod[2] + prod[3]))
                + ((prod[4] + prod[5]) + (prod[6] + prod[7]));
            j += LANES;
        }
        while j < p {
            let mut prod = 1.0;
            for (k, &m) in ri.iter().enumerate() {
                prod *= m.min(cols[k * p + j]);
            }
            off += prod;
            j += 1;
        }
        row_term3.push(diag + 2.0 * off);
    }
    let term3 = pairwise_sum(&row_term3);

    let pf = p as f64;
    let d2 = term1 - 2.0 / pf * term2 + term3 / (pf * pf);
    d2.max(0.0).sqrt()
}

/// Deterministic chunked pairwise summation: O(log) rounding error
/// growth instead of O(n), and a fixed association order (midpoint
/// splits down to 32-element base chunks) regardless of caller context.
fn pairwise_sum(xs: &[f64]) -> f64 {
    const BASE: usize = 32;
    if xs.len() <= BASE {
        let mut s = 0.0;
        for &v in xs {
            s += v;
        }
        return s;
    }
    let mid = xs.len() / 2;
    pairwise_sum(&xs[..mid]) + pairwise_sum(&xs[mid..])
}

/// Computes Hickernell's centered L2 discrepancy.
///
/// This variant is invariant under reflections of the hypercube about
/// coordinate half-planes; it is the measure Fang et al. use to compare
/// latin hypercube designs. Lower is better.
///
/// # Panics
///
/// Panics if the design is empty, points have inconsistent dimensions, or
/// any coordinate lies outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// let d = ppm_sampling::discrepancy::centered_l2(&[vec![0.5]]);
/// assert!((d - (1.0f64 / 12.0).sqrt()).abs() < 1e-12);
/// ```
pub fn centered_l2(points: &[Vec<f64>]) -> f64 {
    let (p, n) = validate(points);
    let term1 = (13.0f64 / 12.0).powi(n as i32);

    let mut term2 = 0.0;
    for x in points {
        let mut prod = 1.0;
        for &xi in x {
            let z = (xi - 0.5).abs();
            prod *= 1.0 + 0.5 * z - 0.5 * z * z;
        }
        term2 += prod;
    }

    let mut term3 = 0.0;
    for xi in points {
        for xj in points {
            let mut prod = 1.0;
            for (&a, &b) in xi.iter().zip(xj) {
                let za = (a - 0.5).abs();
                let zb = (b - 0.5).abs();
                prod *= 1.0 + 0.5 * za + 0.5 * zb - 0.5 * (a - b).abs();
            }
            term3 += prod;
        }
    }

    let pf = p as f64;
    let d2 = term1 - 2.0 / pf * term2 + term3 / (pf * pf);
    d2.max(0.0).sqrt()
}

/// The maximin-distance criterion: the smallest pairwise Euclidean
/// distance in the design. *Higher* is better (points repel each
/// other), complementary to the discrepancy measures.
///
/// # Panics
///
/// Panics if the design has fewer than two points or inconsistent
/// dimensions, or coordinates outside `[0, 1]`.
pub fn maximin(points: &[Vec<f64>]) -> f64 {
    let (p, _) = validate(points);
    assert!(p >= 2, "maximin needs at least two points");
    let mut best = f64::INFINITY;
    for i in 0..p {
        for j in (i + 1)..p {
            let d2: f64 = points[i]
                .iter()
                .zip(&points[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            best = best.min(d2);
        }
    }
    best.sqrt()
}

fn validate(points: &[Vec<f64>]) -> (usize, usize) {
    assert!(!points.is_empty(), "discrepancy of an empty design");
    let n = points[0].len();
    assert!(n > 0, "points must have at least one dimension");
    for (i, x) in points.iter().enumerate() {
        assert_eq!(x.len(), n, "point {i} has inconsistent dimension");
        for (k, &v) in x.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&v),
                "point {i} coordinate {k} = {v} outside [0, 1]"
            );
        }
    }
    (points.len(), n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    /// 1-D analytic check: D²(x) = 1/3 + x² - x for a single point.
    #[test]
    fn single_point_1d_matches_analytic() {
        for &x in &[0.0, 0.25, 0.5, 0.9, 1.0] {
            let expected = (1.0f64 / 3.0 + x * x - x).max(0.0).sqrt();
            let got = l2_star(&[vec![x]]);
            assert!((got - expected).abs() < 1e-12, "x={x}: {got} vs {expected}");
        }
    }

    #[test]
    fn centered_point_minimizes_1d_star() {
        let center = l2_star(&[vec![0.5]]);
        for &x in &[0.0, 0.2, 0.8, 1.0] {
            assert!(l2_star(&[vec![x]]) >= center - 1e-12);
        }
    }

    #[test]
    fn even_grid_beats_clustered_points() {
        let grid: Vec<Vec<f64>> = (0..10).map(|i| vec![(i as f64 + 0.5) / 10.0]).collect();
        let clustered: Vec<Vec<f64>> = (0..10).map(|i| vec![0.4 + i as f64 * 0.01]).collect();
        assert!(l2_star(&grid) < l2_star(&clustered));
        assert!(centered_l2(&grid) < centered_l2(&clustered));
    }

    #[test]
    fn discrepancy_decreases_with_more_uniform_points() {
        let mut rng = Rng::seed_from_u64(17);
        let sizes = [8usize, 32, 128];
        let mut last = f64::INFINITY;
        for &p in &sizes {
            // Average over several random designs to smooth out noise.
            let mut acc = 0.0;
            for _ in 0..5 {
                let pts: Vec<Vec<f64>> = (0..p)
                    .map(|_| (0..3).map(|_| rng.unit_f64()).collect())
                    .collect();
                acc += l2_star(&pts);
            }
            let avg = acc / 5.0;
            assert!(avg < last, "discrepancy did not shrink at p={p}");
            last = avg;
        }
    }

    #[test]
    fn maximin_prefers_spread_points() {
        let spread = vec![
            vec![0.1, 0.1],
            vec![0.9, 0.9],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
        ];
        let clumped = vec![
            vec![0.5, 0.5],
            vec![0.52, 0.5],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
        ];
        assert!(maximin(&spread) > maximin(&clumped));
    }

    #[test]
    fn maximin_known_value() {
        let pts = vec![vec![0.0], vec![0.5], vec![1.0]];
        assert!((maximin(&pts) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn maximin_single_point_panics() {
        maximin(&[vec![0.5]]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_point_panics() {
        l2_star(&[vec![1.5]]);
    }

    #[test]
    #[should_panic(expected = "empty design")]
    fn empty_design_panics() {
        l2_star(&[]);
    }

    #[test]
    fn random_discrepancies_nonnegative_and_finite() {
        for seed in 0..64u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let p = 1 + rng.below(19) as usize;
            let n = 1 + rng.below(4) as usize;
            let pts: Vec<Vec<f64>> = (0..p)
                .map(|_| (0..n).map(|_| rng.unit_f64()).collect())
                .collect();
            let star = l2_star(&pts);
            let cent = centered_l2(&pts);
            assert!(star.is_finite() && star >= 0.0, "seed {seed}");
            assert!(cent.is_finite() && cent >= 0.0, "seed {seed}");
        }
    }

    /// The flat-buffer fast path must agree with a naive transcription
    /// of Warnock's formula to rounding error.
    #[test]
    fn random_l2_star_matches_naive_formula() {
        fn naive(points: &[Vec<f64>]) -> f64 {
            let p = points.len() as f64;
            let n = points[0].len() as i32;
            let term1 = (1.0f64 / 3.0).powi(n);
            let term2: f64 = points
                .iter()
                .map(|x| x.iter().map(|&v| (1.0 - v * v) / 2.0).product::<f64>())
                .sum();
            let mut term3 = 0.0;
            for xi in points {
                for xj in points {
                    let mut prod = 1.0;
                    for (&a, &b) in xi.iter().zip(xj) {
                        prod *= 1.0 - a.max(b);
                    }
                    term3 += prod;
                }
            }
            (term1 - 2.0 / p * term2 + term3 / (p * p)).max(0.0).sqrt()
        }
        for seed in 0..32u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let p = 1 + rng.below(40) as usize;
            let n = 1 + rng.below(6) as usize;
            let pts: Vec<Vec<f64>> = (0..p)
                .map(|_| (0..n).map(|_| rng.unit_f64()).collect())
                .collect();
            let (fast, slow) = (l2_star(&pts), naive(&pts));
            assert!((fast - slow).abs() < 1e-12, "seed {seed}: {fast} vs {slow}");
        }
    }

    #[test]
    fn pairwise_sum_matches_sequential_sum() {
        for len in [0usize, 1, 31, 32, 33, 100, 257] {
            let xs: Vec<f64> = (0..len).map(|i| (i as f64).sin()).collect();
            let seq: f64 = xs.iter().sum();
            assert!((pairwise_sum(&xs) - seq).abs() < 1e-9, "len {len}");
        }
    }

    #[test]
    fn random_permutation_invariant() {
        for seed in 0..32u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let mut pts: Vec<Vec<f64>> = (0..12)
                .map(|_| (0..4).map(|_| rng.unit_f64()).collect())
                .collect();
            let before = l2_star(&pts);
            rng.shuffle(&mut pts);
            assert!((l2_star(&pts) - before).abs() < 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn random_centered_reflection_invariant() {
        // Reflecting every coordinate about 0.5 leaves centered L2 unchanged.
        for seed in 0..32u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let pts: Vec<Vec<f64>> = (0..10)
                .map(|_| (0..3).map(|_| rng.unit_f64()).collect())
                .collect();
            let reflected: Vec<Vec<f64>> = pts
                .iter()
                .map(|x| x.iter().map(|&v| 1.0 - v).collect())
                .collect();
            assert!(
                (centered_l2(&pts) - centered_l2(&reflected)).abs() < 1e-9,
                "seed {seed}"
            );
        }
    }
}
