//! Halton low-discrepancy sequences.
//!
//! A deterministic alternative to latin hypercube sampling: the Halton
//! sequence fills the unit hypercube quasi-uniformly using radical
//! inverses in coprime bases. Included as a comparison point for the
//! sampling ablation — the paper chose (randomized, discrepancy-
//! optimized) latin hypercubes; quasi-random sequences are the other
//! classic space-filling family.

use crate::space::ParamSpace;
use crate::Design;

/// The first few primes, used as the per-dimension bases.
const PRIMES: [u64; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// The radical inverse of `index` in the given `base` — the core of the
/// Halton construction.
///
/// # Panics
///
/// Panics if `base < 2`.
pub fn radical_inverse(mut index: u64, base: u64) -> f64 {
    assert!(base >= 2, "radical inverse needs base >= 2");
    let mut result = 0.0;
    let mut fraction = 1.0 / base as f64;
    while index > 0 {
        result += (index % base) as f64 * fraction;
        index /= base;
        fraction /= base as f64;
    }
    result
}

/// Generates a Halton design of `size` points over a parameter space,
/// snapped to the parameters' level grids.
///
/// The sequence is offset by `skip` (a common remedy for the
/// correlations of early Halton points in higher dimensions).
///
/// # Panics
///
/// Panics if `size == 0` or the space has more than 16 dimensions.
///
/// # Examples
///
/// ```
/// use ppm_sampling::halton::halton_design;
/// use ppm_sampling::space::{ParamDef, ParamSpace};
///
/// let space = ParamSpace::new(vec![
///     ParamDef::continuous("a", 0.0, 1.0),
///     ParamDef::continuous("b", 0.0, 1.0),
/// ]);
/// let design = halton_design(&space, 32, 20);
/// assert_eq!(design.len(), 32);
/// ```
pub fn halton_design(space: &ParamSpace, size: usize, skip: u64) -> Design {
    assert!(size > 0, "empty design requested");
    assert!(
        space.dim() <= PRIMES.len(),
        "halton bases available for at most {} dimensions",
        PRIMES.len()
    );
    (0..size as u64)
        .map(|i| {
            let raw: Vec<f64> = (0..space.dim())
                .map(|k| radical_inverse(i + skip + 1, PRIMES[k]))
                .collect();
            space.snap(&raw, size.max(2))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrepancy::l2_star;
    use crate::space::ParamDef;
    use ppm_rng::Rng;

    fn unit_space(dim: usize) -> ParamSpace {
        ParamSpace::new(
            (0..dim)
                .map(|k| ParamDef::continuous(format!("x{k}"), 0.0, 1.0))
                .collect(),
        )
    }

    #[test]
    fn radical_inverse_base2_is_bit_reversal() {
        assert_eq!(radical_inverse(1, 2), 0.5);
        assert_eq!(radical_inverse(2, 2), 0.25);
        assert_eq!(radical_inverse(3, 2), 0.75);
        assert_eq!(radical_inverse(4, 2), 0.125);
    }

    #[test]
    fn radical_inverse_stays_in_unit_interval() {
        for base in [2u64, 3, 5, 7] {
            for i in 0..1000 {
                let v = radical_inverse(i, base);
                assert!((0.0..1.0).contains(&v), "ri({i}, {base}) = {v}");
            }
        }
    }

    #[test]
    fn halton_beats_random_on_discrepancy() {
        let space = unit_space(4);
        let halton = halton_design(&space, 64, 20);
        let mut rng = Rng::seed_from_u64(3);
        // Average a few random designs for a fair comparison.
        let mut rand_acc = 0.0;
        for _ in 0..5 {
            let rand: Vec<Vec<f64>> = (0..64)
                .map(|_| (0..4).map(|_| rng.unit_f64()).collect())
                .collect();
            rand_acc += l2_star(&rand);
        }
        let halton_d = l2_star(&halton);
        assert!(
            halton_d < rand_acc / 5.0,
            "halton {halton_d} should beat random {}",
            rand_acc / 5.0
        );
    }

    #[test]
    fn deterministic_and_snapped() {
        let space = ParamSpace::new(vec![ParamDef::leveled(
            "lvl",
            0.0,
            10.0,
            5,
            crate::space::Transform::Linear,
        )]);
        let a = halton_design(&space, 10, 0);
        let b = halton_design(&space, 10, 0);
        assert_eq!(a, b);
        for p in &a {
            let scaled = p[0] * 4.0;
            assert!((scaled - scaled.round()).abs() < 1e-9, "not snapped: {p:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_dimensions_panic() {
        halton_design(&unit_space(17), 10, 0);
    }
}
