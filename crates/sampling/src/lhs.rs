//! Latin hypercube sampling with discrepancy-optimized selection.

use ppm_rng::Rng;

use crate::discrepancy::l2_star;
use crate::space::ParamSpace;
use crate::Design;

/// A latin hypercube sampler over a [`ParamSpace`].
///
/// In a latin hypercube sample of size `S`, each parameter's range is cut
/// into strata and every stratum is hit; the strata of different
/// parameters are combined by independent random permutations. For a
/// parameter with `L` fixed levels (`L <= S`) each level appears
/// `S / L` times (±1), so "all settings of a parameter" are present, as
/// the paper requires.
///
/// [`LatinHypercube::best_of`] implements the paper's variant: generate
/// many candidate hypercubes and keep the one with the lowest L2-star
/// discrepancy.
///
/// # Examples
///
/// ```
/// use ppm_rng::Rng;
/// use ppm_sampling::lhs::LatinHypercube;
/// use ppm_sampling::space::{ParamDef, ParamSpace};
///
/// let space = ParamSpace::new(vec![
///     ParamDef::continuous("a", 0.0, 1.0),
///     ParamDef::continuous("b", 0.0, 1.0),
/// ]);
/// let mut rng = Rng::seed_from_u64(3);
/// let design = LatinHypercube::new(&space, 16).generate(&mut rng);
/// assert_eq!(design.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct LatinHypercube<'a> {
    space: &'a ParamSpace,
    size: usize,
}

impl<'a> LatinHypercube<'a> {
    /// Creates a sampler producing designs of `size` points.
    ///
    /// # Panics
    ///
    /// Panics if `size < 2`.
    pub fn new(space: &'a ParamSpace, size: usize) -> Self {
        assert!(size >= 2, "a latin hypercube needs at least 2 points");
        LatinHypercube { space, size }
    }

    /// The sample size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Generates one latin hypercube design in unit coordinates.
    ///
    /// Coordinates are snapped to each parameter's level grid, so the
    /// returned points are directly realizable configurations.
    pub fn generate(&self, rng: &mut Rng) -> Design {
        let s = self.size;
        let n = self.space.dim();
        let mut columns: Vec<Vec<f64>> = Vec::with_capacity(n);
        for p in self.space.params() {
            let levels = p.level_count(s);
            let grid = p.unit_grid(s);
            // Assign each of the S points a level, covering every level as
            // evenly as possible, then shuffle the assignment.
            let mut assignment: Vec<f64> = (0..s).map(|i| grid[i * levels / s]).collect();
            rng.shuffle(&mut assignment);
            columns.push(assignment);
        }
        (0..s)
            .map(|i| columns.iter().map(|c| c[i]).collect())
            .collect()
    }

    /// Generates `candidates` designs and returns the one with the lowest
    /// L2-star discrepancy (the paper's §2.2 selection rule).
    ///
    /// # Panics
    ///
    /// Panics if `candidates == 0`.
    pub fn best_of(&self, candidates: usize, rng: &mut Rng) -> Design {
        self.best_of_with_score(candidates, rng).0
    }

    /// Like [`LatinHypercube::best_of`] but also returns the winning
    /// discrepancy, for plotting Figure 2.
    ///
    /// # Panics
    ///
    /// Panics if `candidates == 0`.
    pub fn best_of_with_score(&self, candidates: usize, rng: &mut Rng) -> (Design, f64) {
        assert!(candidates > 0, "need at least one candidate");
        let _span = ppm_telemetry::span("stage.sampling");
        ppm_telemetry::counter("sampling.candidates").add(candidates as u64);
        let mut best: Option<(Design, f64)> = None;
        for i in 0..candidates {
            let d = self.generate(rng);
            let score = l2_star(&d);
            if best.as_ref().is_none_or(|(_, s)| score < *s) {
                ppm_telemetry::event(
                    "sampling.best_improved",
                    &[("candidate", i.into()), ("discrepancy", score.into())],
                );
                best = Some((d, score));
            }
        }
        let (design, score) = best.expect("candidates > 0");
        ppm_telemetry::event(
            "sampling.selected",
            &[
                ("points", design.len().into()),
                ("candidates", candidates.into()),
                ("discrepancy", score.into()),
            ],
        );
        (design, score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamDef, Transform};
    use ppm_rng::Rng;

    fn space2() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::continuous("a", 0.0, 1.0),
            ParamDef::leveled("b", 8.0, 64.0, 4, Transform::Log),
        ])
    }

    #[test]
    fn every_continuous_stratum_is_hit_once() {
        let space = ParamSpace::new(vec![ParamDef::continuous("a", 0.0, 1.0)]);
        let mut rng = Rng::seed_from_u64(5);
        let s = 20;
        let design = LatinHypercube::new(&space, s).generate(&mut rng);
        let mut seen: Vec<f64> = design.iter().map(|p| p[0]).collect();
        seen.sort_by(|x, y| x.partial_cmp(y).unwrap());
        // With S levels over [0,1] every grid value appears exactly once.
        for (i, v) in seen.iter().enumerate() {
            let expected = i as f64 / (s - 1) as f64;
            assert!((v - expected).abs() < 1e-12, "stratum {i} missing");
        }
    }

    #[test]
    fn fixed_levels_are_balanced() {
        let space = space2();
        let mut rng = Rng::seed_from_u64(6);
        let design = LatinHypercube::new(&space, 40).generate(&mut rng);
        let mut counts = std::collections::HashMap::new();
        for p in &design {
            *counts.entry(format!("{:.4}", p[1])).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 4, "all 4 levels should appear");
        for (level, c) in counts {
            assert_eq!(c, 10, "level {level} unbalanced");
        }
    }

    #[test]
    fn best_of_is_no_worse_than_single_draw() {
        let space = space2();
        let mut rng = Rng::seed_from_u64(7);
        let lhs = LatinHypercube::new(&space, 20);
        let (_, best_score) = lhs.best_of_with_score(32, &mut rng);
        let mut worse = 0;
        for _ in 0..16 {
            if l2_star(&lhs.generate(&mut rng)) < best_score {
                worse += 1;
            }
        }
        // The optimized design should beat the typical random draw.
        assert!(worse <= 3, "best-of-32 design was beaten {worse}/16 times");
    }

    #[test]
    fn deterministic_given_seed() {
        let space = space2();
        let d1 = LatinHypercube::new(&space, 10).generate(&mut Rng::seed_from_u64(9));
        let d2 = LatinHypercube::new(&space, 10).generate(&mut Rng::seed_from_u64(9));
        assert_eq!(d1, d2);
    }

    #[test]
    #[should_panic(expected = "at least 2 points")]
    fn tiny_sample_panics() {
        LatinHypercube::new(&space2(), 1);
    }

    #[test]
    fn random_design_in_unit_cube() {
        for seed in 0..32u64 {
            let space = space2();
            let mut rng = Rng::seed_from_u64(seed);
            let s = 2 + (seed as usize % 38);
            let design = LatinHypercube::new(&space, s).generate(&mut rng);
            assert_eq!(design.len(), s);
            for p in &design {
                assert_eq!(p.len(), 2);
                for &v in p {
                    assert!((0.0..=1.0).contains(&v), "seed {seed}: {v}");
                }
            }
        }
    }

    #[test]
    fn random_points_snapped_to_levels() {
        for seed in 0..32u64 {
            let space = space2();
            let mut rng = Rng::seed_from_u64(seed);
            let design = LatinHypercube::new(&space, 12).generate(&mut rng);
            for p in &design {
                // Dimension b has 4 levels: unit coords multiples of 1/3.
                let scaled = p[1] * 3.0;
                assert!((scaled - scaled.round()).abs() < 1e-9, "seed {seed}");
            }
        }
    }
}
