//! Latin hypercube sampling with discrepancy-optimized selection.

use std::error::Error;
use std::fmt;

use ppm_exec::Executor;
use ppm_rng::{derive_seed, Rng};

use crate::discrepancy::l2_star;
use crate::space::ParamSpace;
use crate::Design;

/// Errors from the candidate-selection sampler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SampleError {
    /// `best_of` was asked to pick from zero candidates.
    NoCandidates,
    /// The sampler was configured with zero worker threads.
    NoThreads,
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::NoCandidates => {
                write!(f, "need at least one latin-hypercube candidate")
            }
            SampleError::NoThreads => write!(f, "sampler needs at least one worker thread"),
        }
    }
}

impl Error for SampleError {}

/// A latin hypercube sampler over a [`ParamSpace`].
///
/// In a latin hypercube sample of size `S`, each parameter's range is cut
/// into strata and every stratum is hit; the strata of different
/// parameters are combined by independent random permutations. For a
/// parameter with `L` fixed levels (`L <= S`) each level appears
/// `S / L` times (±1), so "all settings of a parameter" are present, as
/// the paper requires.
///
/// [`LatinHypercube::best_of`] implements the paper's variant: generate
/// many candidate hypercubes and keep the one with the lowest L2-star
/// discrepancy. Candidates are generated and scored in parallel over
/// [`LatinHypercube::with_threads`] workers; each candidate derives its
/// own RNG stream from the caller's seed, so the chosen design is
/// byte-identical for every thread count.
///
/// # Examples
///
/// ```
/// use ppm_rng::Rng;
/// use ppm_sampling::lhs::LatinHypercube;
/// use ppm_sampling::space::{ParamDef, ParamSpace};
///
/// let space = ParamSpace::new(vec![
///     ParamDef::continuous("a", 0.0, 1.0),
///     ParamDef::continuous("b", 0.0, 1.0),
/// ]);
/// let mut rng = Rng::seed_from_u64(3);
/// let design = LatinHypercube::new(&space, 16).generate(&mut rng);
/// assert_eq!(design.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct LatinHypercube<'a> {
    space: &'a ParamSpace,
    size: usize,
    threads: usize,
    /// Per-parameter unshuffled level assignments, precomputed once so
    /// the candidate sweep does not redo the grid/transform math for
    /// every candidate: `assignments[k][i]` is the unit coordinate
    /// point `i` gets in dimension `k` before the permutation.
    assignments: Vec<Vec<f64>>,
}

impl<'a> LatinHypercube<'a> {
    /// Creates a sampler producing designs of `size` points, with the
    /// default worker-thread count (`PPM_THREADS`-aware).
    ///
    /// # Panics
    ///
    /// Panics if `size < 2`.
    pub fn new(space: &'a ParamSpace, size: usize) -> Self {
        assert!(size >= 2, "a latin hypercube needs at least 2 points");
        // Assign each of the S points a level, covering every level as
        // evenly as possible; generate() shuffles a copy per dimension.
        let assignments = space
            .params()
            .iter()
            .map(|p| {
                let levels = p.level_count(size);
                let grid = p.unit_grid(size);
                (0..size).map(|i| grid[i * levels / size]).collect()
            })
            .collect();
        LatinHypercube {
            space,
            size,
            threads: ppm_exec::default_threads(),
            assignments,
        }
    }

    /// Sets the worker-thread count for the candidate sweep (the chosen
    /// design does not depend on it).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The sample size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Generates one latin hypercube design in unit coordinates.
    ///
    /// Coordinates are snapped to each parameter's level grid, so the
    /// returned points are directly realizable configurations.
    pub fn generate(&self, rng: &mut Rng) -> Design {
        let s = self.size;
        let n = self.space.dim();
        let mut points: Vec<Vec<f64>> = (0..s).map(|_| Vec::with_capacity(n)).collect();
        let mut assignment: Vec<f64> = Vec::with_capacity(s);
        for base in &self.assignments {
            // Shuffle a copy of the precomputed level assignment.
            assignment.clear();
            assignment.extend_from_slice(base);
            rng.shuffle(&mut assignment);
            for (point, &v) in points.iter_mut().zip(&assignment) {
                point.push(v);
            }
        }
        points
    }

    /// Generates `candidates` designs and returns the one with the lowest
    /// L2-star discrepancy (the paper's §2.2 selection rule).
    ///
    /// # Errors
    ///
    /// See [`LatinHypercube::best_of_with_score`].
    pub fn best_of(&self, candidates: usize, rng: &mut Rng) -> Result<Design, SampleError> {
        self.best_of_with_score(candidates, rng).map(|(d, _)| d)
    }

    /// Like [`LatinHypercube::best_of`] but also returns the winning
    /// discrepancy, for plotting Figure 2.
    ///
    /// One master seed is drawn from `rng`, and candidate `i` generates
    /// from its own stream `derive_seed(master, i)` — which is what
    /// lets candidates run on any number of worker threads while the
    /// winner (ties broken toward the lower candidate index) stays
    /// byte-identical to the single-threaded sweep.
    ///
    /// # Errors
    ///
    /// * [`SampleError::NoCandidates`] if `candidates == 0`.
    /// * [`SampleError::NoThreads`] if configured with zero threads.
    pub fn best_of_with_score(
        &self,
        candidates: usize,
        rng: &mut Rng,
    ) -> Result<(Design, f64), SampleError> {
        if candidates == 0 {
            return Err(SampleError::NoCandidates);
        }
        let exec = Executor::new(self.threads).map_err(|_| SampleError::NoThreads)?;
        let _span = ppm_telemetry::span("stage.sampling");
        ppm_telemetry::counter("sampling.candidates").add(candidates as u64);

        let master = rng.next_u64();
        let mut scored: Vec<(Design, f64)> = exec.map("sampling.lhs", candidates, |i| {
            let mut stream = Rng::seed_from_u64(derive_seed(master, i as u64));
            let d = self.generate(&mut stream);
            let score = l2_star(&d);
            (d, score)
        });

        let Some(win) = ppm_exec::argmin(scored.iter().map(|(_, s)| *s)) else {
            unreachable!("candidates >= 1 was checked above");
        };
        // Replay the serial scan for the improvement events.
        let mut running_best = f64::INFINITY;
        for (i, (_, score)) in scored.iter().enumerate() {
            if *score < running_best {
                running_best = *score;
                ppm_telemetry::event(
                    "sampling.best_improved",
                    &[("candidate", i.into()), ("discrepancy", (*score).into())],
                );
            }
        }
        let (design, score) = scored.swap_remove(win);
        ppm_telemetry::event(
            "sampling.selected",
            &[
                ("points", design.len().into()),
                ("candidates", candidates.into()),
                ("discrepancy", score.into()),
            ],
        );
        Ok((design, score))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamDef, Transform};
    use ppm_rng::Rng;

    fn space2() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::continuous("a", 0.0, 1.0),
            ParamDef::leveled("b", 8.0, 64.0, 4, Transform::Log),
        ])
    }

    #[test]
    fn every_continuous_stratum_is_hit_once() {
        let space = ParamSpace::new(vec![ParamDef::continuous("a", 0.0, 1.0)]);
        let mut rng = Rng::seed_from_u64(5);
        let s = 20;
        let design = LatinHypercube::new(&space, s).generate(&mut rng);
        let mut seen: Vec<f64> = design.iter().map(|p| p[0]).collect();
        seen.sort_by(|x, y| x.partial_cmp(y).unwrap());
        // With S levels over [0,1] every grid value appears exactly once.
        for (i, v) in seen.iter().enumerate() {
            let expected = i as f64 / (s - 1) as f64;
            assert!((v - expected).abs() < 1e-12, "stratum {i} missing");
        }
    }

    #[test]
    fn fixed_levels_are_balanced() {
        let space = space2();
        let mut rng = Rng::seed_from_u64(6);
        let design = LatinHypercube::new(&space, 40).generate(&mut rng);
        let mut counts = std::collections::HashMap::new();
        for p in &design {
            *counts.entry(format!("{:.4}", p[1])).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 4, "all 4 levels should appear");
        for (level, c) in counts {
            assert_eq!(c, 10, "level {level} unbalanced");
        }
    }

    #[test]
    fn best_of_is_no_worse_than_single_draw() {
        let space = space2();
        let mut rng = Rng::seed_from_u64(7);
        let lhs = LatinHypercube::new(&space, 20);
        let (_, best_score) = lhs.best_of_with_score(32, &mut rng).unwrap();
        let mut worse = 0;
        for _ in 0..16 {
            if l2_star(&lhs.generate(&mut rng)) < best_score {
                worse += 1;
            }
        }
        // The optimized design should beat the typical random draw.
        assert!(worse <= 3, "best-of-32 design was beaten {worse}/16 times");
    }

    #[test]
    fn deterministic_given_seed() {
        let space = space2();
        let d1 = LatinHypercube::new(&space, 10).generate(&mut Rng::seed_from_u64(9));
        let d2 = LatinHypercube::new(&space, 10).generate(&mut Rng::seed_from_u64(9));
        assert_eq!(d1, d2);
    }

    #[test]
    fn best_of_identical_across_thread_counts() {
        let space = space2();
        let lhs = LatinHypercube::new(&space, 20);
        let reference = lhs
            .clone()
            .with_threads(1)
            .best_of_with_score(33, &mut Rng::seed_from_u64(11))
            .unwrap();
        for threads in [2, 8] {
            let got = lhs
                .clone()
                .with_threads(threads)
                .best_of_with_score(33, &mut Rng::seed_from_u64(11))
                .unwrap();
            assert_eq!(reference, got, "threads={threads}");
        }
    }

    #[test]
    fn best_of_zero_candidates_is_a_typed_error() {
        let space = space2();
        let mut rng = Rng::seed_from_u64(3);
        let err = LatinHypercube::new(&space, 10)
            .best_of(0, &mut rng)
            .unwrap_err();
        assert_eq!(err, SampleError::NoCandidates);
        assert!(err.to_string().contains("candidate"));
    }

    #[test]
    fn zero_threads_is_a_typed_error() {
        let space = space2();
        let mut rng = Rng::seed_from_u64(3);
        let err = LatinHypercube::new(&space, 10)
            .with_threads(0)
            .best_of(4, &mut rng)
            .unwrap_err();
        assert_eq!(err, SampleError::NoThreads);
    }

    #[test]
    #[should_panic(expected = "at least 2 points")]
    fn tiny_sample_panics() {
        LatinHypercube::new(&space2(), 1);
    }

    #[test]
    fn random_design_in_unit_cube() {
        for seed in 0..32u64 {
            let space = space2();
            let mut rng = Rng::seed_from_u64(seed);
            let s = 2 + (seed as usize % 38);
            let design = LatinHypercube::new(&space, s).generate(&mut rng);
            assert_eq!(design.len(), s);
            for p in &design {
                assert_eq!(p.len(), 2);
                for &v in p {
                    assert!((0.0..=1.0).contains(&v), "seed {seed}: {v}");
                }
            }
        }
    }

    #[test]
    fn random_points_snapped_to_levels() {
        for seed in 0..32u64 {
            let space = space2();
            let mut rng = Rng::seed_from_u64(seed);
            let design = LatinHypercube::new(&space, 12).generate(&mut rng);
            for p in &design {
                // Dimension b has 4 levels: unit coords multiples of 1/3.
                let scaled = p[1] * 3.0;
                assert!((scaled - scaled.round()).abs() < 1e-9, "seed {seed}");
            }
        }
    }
}
