//! Design-of-experiments sampling for processor design spaces.
//!
//! This crate implements the sample-selection machinery of the paper's
//! `BuildRBFmodel` procedure (§2.2):
//!
//! * [`space`] — declarative description of a parameter space: ranges,
//!   discrete levels, and linear/log transforms (paper Table 1).
//! * [`lhs`] — latin hypercube sampling, including the paper's
//!   best-of-many variant that keeps the candidate hypercube with the
//!   lowest L2-star discrepancy.
//! * [`discrepancy`] — the L2-star discrepancy (Warnock's closed form)
//!   and Hickernell's centered L2 discrepancy, which quantify how
//!   uniformly a sample fills the unit hypercube.
//! * [`random`] — plain uniform random designs (used for independent test
//!   sets and as an ablation baseline).
//! * [`pb`] — Plackett–Burman two-level screening designs with optional
//!   foldover (the Yi et al. related-work baseline).
//!
//! Design points are represented in *unit coordinates*: a point is a
//! `Vec<f64>` in `[0, 1]^n`, where each coordinate moves along the
//! (possibly log-) transformed range of the corresponding parameter.
//! [`space::ParamSpace`] converts between unit and engineering values.
//!
//! # Examples
//!
//! ```
//! use ppm_rng::Rng;
//! use ppm_sampling::lhs::LatinHypercube;
//! use ppm_sampling::space::{ParamDef, ParamSpace, Transform};
//! use ppm_sampling::discrepancy::l2_star;
//!
//! let space = ParamSpace::new(vec![
//!     ParamDef::continuous("rob", 24.0, 128.0),
//!     ParamDef::leveled("l2_size", 256.0, 8192.0, 6, Transform::Log),
//! ]);
//! let mut rng = Rng::seed_from_u64(1);
//! let design = LatinHypercube::new(&space, 30).best_of(64, &mut rng)?;
//! assert_eq!(design.len(), 30);
//! let d = l2_star(&design);
//! assert!(d > 0.0 && d < 1.0);
//! # Ok::<(), ppm_sampling::lhs::SampleError>(())
//! ```
//!
//! The best-of-many sweep scores candidates in parallel
//! ([`ppm_exec`]); each candidate derives its own RNG stream from the
//! caller's seed, so the chosen design is byte-identical for every
//! thread count.

pub mod discrepancy;
pub mod halton;
pub mod lhs;
pub mod pb;
pub mod random;
pub mod space;

pub use lhs::SampleError;

/// A design: a list of points in unit coordinates `[0, 1]^n`.
pub type Design = Vec<Vec<f64>>;
