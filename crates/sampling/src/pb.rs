//! Plackett–Burman two-level screening designs.
//!
//! The related-work baseline of Yi et al. (HPCA 2005): a PB design with
//! `N` runs estimates up to `N - 1` main effects in `N` simulations, but
//! cannot resolve interactions. A *foldover* design (the design plus its
//! mirror image) removes the aliasing of main effects with two-factor
//! interactions at the cost of doubling the run count.

use crate::Design;

/// Generator first rows for the cyclic Plackett–Burman constructions.
/// `true` encodes the `+` level.
fn generator_row(n: usize) -> Option<Vec<bool>> {
    let row: &[u8] = match n {
        12 => b"++-+++---+-",
        20 => b"++--++++-+-+----++-",
        24 => b"+++++-+-++--++--+-+----",
        _ => return None,
    };
    Some(row.iter().map(|&c| c == b'+').collect())
}

/// A Plackett–Burman design with `runs` runs over `factors` factors.
///
/// # Examples
///
/// ```
/// use ppm_sampling::pb::PlackettBurman;
///
/// let design = PlackettBurman::new(12, 9).unwrap();
/// assert_eq!(design.runs(), 12);
/// let pts = design.unit_points();
/// assert_eq!(pts.len(), 12);
/// assert_eq!(pts[0].len(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlackettBurman {
    /// `matrix[run][factor]`, `true` = high level.
    matrix: Vec<Vec<bool>>,
}

impl PlackettBurman {
    /// Constructs a PB design with `runs ∈ {4, 8, 12, 16, 20, 24, 32}`
    /// and up to `runs - 1` factors.
    ///
    /// Returns `None` if the run count is unsupported or cannot
    /// accommodate the number of factors.
    pub fn new(runs: usize, factors: usize) -> Option<Self> {
        if factors == 0 || factors > runs.saturating_sub(1) {
            return None;
        }
        let full = if runs.is_power_of_two() && (4..=32).contains(&runs) {
            hadamard_pm(runs)
        } else {
            let gen = generator_row(runs)?;
            let m = runs - 1;
            let mut rows = Vec::with_capacity(runs);
            for r in 0..m {
                rows.push((0..m).map(|c| gen[(c + m - r) % m]).collect::<Vec<bool>>());
            }
            rows.push(vec![false; m]); // final all-minus row
            rows
        };
        let matrix = full
            .into_iter()
            .map(|row| row.into_iter().take(factors).collect())
            .collect();
        Some(PlackettBurman { matrix })
    }

    /// The number of runs.
    pub fn runs(&self) -> usize {
        self.matrix.len()
    }

    /// The number of factors.
    pub fn factors(&self) -> usize {
        self.matrix.first().map_or(0, Vec::len)
    }

    /// The signed levels (`-1.0` / `+1.0`) of each run.
    pub fn signed_points(&self) -> Vec<Vec<f64>> {
        self.matrix
            .iter()
            .map(|row| row.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect())
            .collect()
    }

    /// The design in unit coordinates (`-` → 0, `+` → 1).
    pub fn unit_points(&self) -> Design {
        self.matrix
            .iter()
            .map(|row| row.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect())
            .collect()
    }

    /// The foldover design: this design followed by its mirror image.
    ///
    /// Foldover de-aliases main effects from two-factor interactions
    /// (resolution IV), as used by Yi et al.
    pub fn foldover(&self) -> PlackettBurman {
        let mut matrix = self.matrix.clone();
        matrix.extend(
            self.matrix
                .iter()
                .map(|row| row.iter().map(|&b| !b).collect::<Vec<bool>>()),
        );
        PlackettBurman { matrix }
    }
}

/// Sylvester-construction Hadamard matrix converted to ±: row 0 and
/// column 0 are all `+`; factor columns are columns `1..`.
fn hadamard_pm(n: usize) -> Vec<Vec<bool>> {
    debug_assert!(n.is_power_of_two());
    let mut h = vec![vec![true]];
    while h.len() < n {
        let m = h.len();
        let mut next = vec![vec![false; 2 * m]; 2 * m];
        for i in 0..m {
            for j in 0..m {
                next[i][j] = h[i][j];
                next[i][j + m] = h[i][j];
                next[i + m][j] = h[i][j];
                next[i + m][j + m] = !h[i][j];
            }
        }
        h = next;
    }
    // Drop the constant first column; keep the rest as factor columns.
    h.into_iter()
        .map(|row| row.into_iter().skip(1).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All PB designs must have orthogonal, balanced columns.
    fn assert_orthogonal(pb: &PlackettBurman) {
        let pts = pb.signed_points();
        let runs = pts.len() as f64;
        for a in 0..pb.factors() {
            let sum: f64 = pts.iter().map(|r| r[a]).sum();
            assert!(
                sum.abs() < 1e-9,
                "column {a} unbalanced (sum {sum}) in {} runs",
                pb.runs()
            );
            for b in (a + 1)..pb.factors() {
                let dot: f64 = pts.iter().map(|r| r[a] * r[b]).sum();
                assert!(
                    dot.abs() < 1e-9,
                    "columns {a},{b} not orthogonal (dot {dot}), runs={}",
                    runs
                );
            }
        }
    }

    #[test]
    fn pb12_is_orthogonal_and_balanced() {
        assert_orthogonal(&PlackettBurman::new(12, 11).unwrap());
    }

    #[test]
    fn pb20_is_orthogonal_and_balanced() {
        assert_orthogonal(&PlackettBurman::new(20, 19).unwrap());
    }

    #[test]
    fn pb24_is_orthogonal_and_balanced() {
        assert_orthogonal(&PlackettBurman::new(24, 23).unwrap());
    }

    #[test]
    fn hadamard_sizes_are_orthogonal() {
        for n in [4usize, 8, 16, 32] {
            assert_orthogonal(&PlackettBurman::new(n, n - 1).unwrap());
        }
    }

    #[test]
    fn nine_factor_design_for_the_paper_space() {
        let pb = PlackettBurman::new(12, 9).unwrap();
        assert_eq!(pb.factors(), 9);
        assert_orthogonal(&pb);
    }

    #[test]
    fn foldover_doubles_runs_and_mirrors() {
        let pb = PlackettBurman::new(12, 9).unwrap();
        let fo = pb.foldover();
        assert_eq!(fo.runs(), 24);
        let pts = fo.signed_points();
        for i in 0..12 {
            for (k, &v) in pts[i].iter().enumerate().take(9) {
                assert_eq!(v, -pts[i + 12][k], "run {i} factor {k} not mirrored");
            }
        }
    }

    #[test]
    fn unsupported_sizes_return_none() {
        assert!(PlackettBurman::new(13, 5).is_none());
        assert!(PlackettBurman::new(12, 12).is_none());
        assert!(PlackettBurman::new(12, 0).is_none());
    }

    #[test]
    fn unit_points_are_zero_one() {
        let pb = PlackettBurman::new(12, 9).unwrap();
        for row in pb.unit_points() {
            for v in row {
                assert!(v == 0.0 || v == 1.0);
            }
        }
    }
}
