//! Plain uniform random designs.
//!
//! Used for the independently generated *test* sets the paper validates
//! against (§3, Table 2), and as the baseline in the sampling ablation
//! (random vs latin hypercube).

use ppm_rng::Rng;

use crate::space::ParamSpace;
use crate::Design;

/// Generates `size` points uniformly at random in the unit hypercube,
/// snapped to each parameter's level grid.
///
/// Snapping uses a nominal sample size of `size` for parameters whose
/// level count is sample-size dependent.
///
/// # Panics
///
/// Panics if `size == 0`.
///
/// # Examples
///
/// ```
/// use ppm_rng::Rng;
/// use ppm_sampling::random::random_design;
/// use ppm_sampling::space::{ParamDef, ParamSpace};
///
/// let space = ParamSpace::new(vec![ParamDef::continuous("a", 0.0, 1.0)]);
/// let mut rng = Rng::seed_from_u64(0);
/// let pts = random_design(&space, 50, &mut rng);
/// assert_eq!(pts.len(), 50);
/// ```
pub fn random_design(space: &ParamSpace, size: usize, rng: &mut Rng) -> Design {
    assert!(size > 0, "empty design requested");
    (0..size)
        .map(|_| {
            let raw: Vec<f64> = (0..space.dim()).map(|_| rng.unit_f64()).collect();
            space.snap(&raw, size.max(2))
        })
        .collect()
}

/// Generates `size` unsnapped uniform random points (truly continuous).
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn random_design_continuous(dim: usize, size: usize, rng: &mut Rng) -> Design {
    assert!(size > 0, "empty design requested");
    (0..size)
        .map(|_| (0..dim).map(|_| rng.unit_f64()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamDef, Transform};

    #[test]
    fn random_design_respects_levels() {
        let space = ParamSpace::new(vec![ParamDef::leveled("b", 8.0, 64.0, 4, Transform::Log)]);
        let mut rng = Rng::seed_from_u64(2);
        let pts = random_design(&space, 100, &mut rng);
        for p in &pts {
            let scaled = p[0] * 3.0;
            assert!(
                (scaled - scaled.round()).abs() < 1e-9,
                "unsnapped point {p:?}"
            );
        }
    }

    #[test]
    fn continuous_design_fills_cube() {
        let mut rng = Rng::seed_from_u64(4);
        let pts = random_design_continuous(3, 200, &mut rng);
        assert_eq!(pts.len(), 200);
        let mean: f64 = pts.iter().map(|p| p[0]).sum::<f64>() / 200.0;
        assert!((mean - 0.5).abs() < 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = random_design_continuous(2, 10, &mut Rng::seed_from_u64(3));
        let b = random_design_continuous(2, 10, &mut Rng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
