//! Parameter-space descriptions: ranges, levels and transforms.

use std::fmt;

/// The coordinate transform along which a parameter's range is traversed.
///
/// A `Log` transform spaces levels geometrically (used for cache sizes in
/// the paper's Table 1), a `Linear` transform spaces them arithmetically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Transform {
    /// Arithmetic spacing between the endpoints.
    #[default]
    Linear,
    /// Geometric spacing between the endpoints (both must be positive).
    Log,
}

impl Transform {
    /// Maps a unit coordinate `t ∈ [0, 1]` to an actual value between
    /// `lo` and `hi` along this transform.
    pub fn warp(self, t: f64, lo: f64, hi: f64) -> f64 {
        match self {
            Transform::Linear => lo + t * (hi - lo),
            Transform::Log => {
                debug_assert!(lo > 0.0 && hi > 0.0, "log transform needs positive bounds");
                (lo.ln() + t * (hi.ln() - lo.ln())).exp()
            }
        }
    }

    /// Maps an actual value back to the unit coordinate (inverse of
    /// [`Transform::warp`]).
    pub fn unwarp(self, v: f64, lo: f64, hi: f64) -> f64 {
        match self {
            Transform::Linear => {
                if hi == lo {
                    0.5
                } else {
                    (v - lo) / (hi - lo)
                }
            }
            Transform::Log => {
                let (l, h) = (lo.ln(), hi.ln());
                if h == l {
                    0.5
                } else {
                    (v.ln() - l) / (h - l)
                }
            }
        }
    }
}

/// How many discrete settings a parameter takes in a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Levels {
    /// As many levels as there are points in the sample (the paper's "S"
    /// entries in Table 1) — effectively continuous.
    #[default]
    SampleSize,
    /// A fixed number of levels (e.g. 6 power-of-two L2 cache sizes).
    Fixed(usize),
}

/// One dimension of a design space.
///
/// `lo` and `hi` are the paper's "Low Value" and "High Value" — the
/// endpoints of the range in *performance* order, so `lo` may be
/// numerically larger than `hi` (e.g. pipeline depth 24 → 7). Unit
/// coordinate 0 always corresponds to `lo`.
///
/// # Examples
///
/// ```
/// use ppm_sampling::space::{ParamDef, Transform};
///
/// let p = ParamDef::leveled("L2_size", 256.0, 8192.0, 6, Transform::Log);
/// let vals = p.level_values(200);
/// assert_eq!(vals.len(), 6);
/// assert!((vals[1] - 512.0).abs() < 1e-6); // powers of two
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDef {
    name: String,
    lo: f64,
    hi: f64,
    levels: Levels,
    transform: Transform,
}

impl ParamDef {
    /// Creates a parameter with the given levels and transform.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite, if `lo == hi`, if a log
    /// transform is combined with non-positive bounds, or if a fixed
    /// level count is less than 2.
    pub fn new(
        name: impl Into<String>,
        lo: f64,
        hi: f64,
        levels: Levels,
        transform: Transform,
    ) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo != hi, "degenerate range [{lo}, {hi}]");
        if transform == Transform::Log {
            assert!(lo > 0.0 && hi > 0.0, "log transform needs positive bounds");
        }
        if let Levels::Fixed(k) = levels {
            assert!(k >= 2, "a parameter needs at least 2 levels, got {k}");
        }
        ParamDef {
            name: name.into(),
            lo,
            hi,
            levels,
            transform,
        }
    }

    /// A continuous (sample-size-leveled) linear parameter.
    pub fn continuous(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        ParamDef::new(name, lo, hi, Levels::SampleSize, Transform::Linear)
    }

    /// A parameter with a fixed number of levels along a transform.
    pub fn leveled(
        name: impl Into<String>,
        lo: f64,
        hi: f64,
        levels: usize,
        transform: Transform,
    ) -> Self {
        ParamDef::new(name, lo, hi, Levels::Fixed(levels), transform)
    }

    /// The parameter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The low ("worst") endpoint.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// The high ("best") endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// The transform along which levels are spaced.
    pub fn transform(&self) -> Transform {
        self.transform
    }

    /// The level specification.
    pub fn levels(&self) -> Levels {
        self.levels
    }

    /// The concrete number of levels for a given sample size.
    pub fn level_count(&self, sample_size: usize) -> usize {
        match self.levels {
            Levels::SampleSize => sample_size.max(2),
            Levels::Fixed(k) => k,
        }
    }

    /// The unit coordinates of the levels: an even grid including both
    /// endpoints.
    pub fn unit_grid(&self, sample_size: usize) -> Vec<f64> {
        let k = self.level_count(sample_size);
        (0..k).map(|i| i as f64 / (k - 1) as f64).collect()
    }

    /// The actual (engineering) values of the levels.
    pub fn level_values(&self, sample_size: usize) -> Vec<f64> {
        self.unit_grid(sample_size)
            .into_iter()
            .map(|t| self.transform.warp(t, self.lo, self.hi))
            .collect()
    }

    /// Maps a unit coordinate to the actual value (not snapped to levels).
    pub fn to_actual(&self, t: f64) -> f64 {
        self.transform.warp(t.clamp(0.0, 1.0), self.lo, self.hi)
    }

    /// Maps an actual value back to a unit coordinate.
    pub fn to_unit(&self, v: f64) -> f64 {
        self.transform.unwarp(v, self.lo, self.hi).clamp(0.0, 1.0)
    }

    /// Snaps a unit coordinate to the nearest level's unit coordinate.
    pub fn snap(&self, t: f64, sample_size: usize) -> f64 {
        let k = self.level_count(sample_size);
        let idx = (t.clamp(0.0, 1.0) * (k - 1) as f64).round() as usize;
        idx as f64 / (k - 1) as f64
    }
}

impl fmt::Display for ParamDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} .. {}] ({:?}, {:?})",
            self.name, self.lo, self.hi, self.levels, self.transform
        )
    }
}

/// An ordered collection of parameters defining a design space.
///
/// # Examples
///
/// ```
/// use ppm_sampling::space::{ParamDef, ParamSpace};
///
/// let space = ParamSpace::new(vec![
///     ParamDef::continuous("a", 0.0, 10.0),
///     ParamDef::continuous("b", -1.0, 1.0),
/// ]);
/// assert_eq!(space.dim(), 2);
/// let actual = space.to_actual(&[0.5, 0.0]);
/// assert_eq!(actual, vec![5.0, -1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpace {
    params: Vec<ParamDef>,
}

impl ParamSpace {
    /// Creates a space from an ordered list of parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty or two parameters share a name.
    pub fn new(params: Vec<ParamDef>) -> Self {
        assert!(!params.is_empty(), "a design space needs parameters");
        for i in 0..params.len() {
            for j in (i + 1)..params.len() {
                assert_ne!(
                    params[i].name(),
                    params[j].name(),
                    "duplicate parameter name {:?}",
                    params[i].name()
                );
            }
        }
        ParamSpace { params }
    }

    /// The number of dimensions.
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// The parameters, in order.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Looks up a parameter index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name() == name)
    }

    /// Converts a unit point to actual values.
    ///
    /// # Panics
    ///
    /// Panics if `unit.len() != self.dim()`.
    pub fn to_actual(&self, unit: &[f64]) -> Vec<f64> {
        assert_eq!(unit.len(), self.dim(), "dimension mismatch");
        unit.iter()
            .zip(&self.params)
            .map(|(&t, p)| p.to_actual(t))
            .collect()
    }

    /// Converts actual values to a unit point.
    ///
    /// # Panics
    ///
    /// Panics if `actual.len() != self.dim()`.
    pub fn to_unit(&self, actual: &[f64]) -> Vec<f64> {
        assert_eq!(actual.len(), self.dim(), "dimension mismatch");
        actual
            .iter()
            .zip(&self.params)
            .map(|(&v, p)| p.to_unit(v))
            .collect()
    }

    /// Snaps every coordinate of a unit point to its nearest level.
    pub fn snap(&self, unit: &[f64], sample_size: usize) -> Vec<f64> {
        assert_eq!(unit.len(), self.dim(), "dimension mismatch");
        unit.iter()
            .zip(&self.params)
            .map(|(&t, p)| p.snap(t, sample_size))
            .collect()
    }

    /// Returns a sub-space restricted to narrower unit bounds per
    /// dimension, expressed in this space's unit coordinates.
    ///
    /// Used to express the paper's Table 2 (the test-point region is a
    /// shrunken version of the Table 1 training region).
    ///
    /// # Panics
    ///
    /// Panics if `bounds.len() != self.dim()` or any interval is empty or
    /// outside `[0, 1]`.
    pub fn restricted(&self, bounds: &[(f64, f64)]) -> ParamSpace {
        assert_eq!(bounds.len(), self.dim(), "dimension mismatch");
        let params = self
            .params
            .iter()
            .zip(bounds)
            .map(|(p, &(a, b))| {
                assert!((0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b) && a < b);
                ParamDef::new(
                    p.name(),
                    p.to_actual(a),
                    p.to_actual(b),
                    p.levels(),
                    p.transform(),
                )
            })
            .collect();
        ParamSpace::new(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_rng::Rng;

    #[test]
    fn linear_warp_endpoints() {
        let t = Transform::Linear;
        assert_eq!(t.warp(0.0, 24.0, 7.0), 24.0);
        assert_eq!(t.warp(1.0, 24.0, 7.0), 7.0);
        assert_eq!(t.warp(0.5, 0.0, 10.0), 5.0);
    }

    #[test]
    fn log_warp_is_geometric() {
        let t = Transform::Log;
        let mid = t.warp(0.5, 256.0, 8192.0 * 1024.0 / 1024.0);
        // sqrt(256 * 8192) = sqrt(2_097_152) = 1448.15...
        assert!((mid - (256.0f64 * 8192.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn warp_unwarp_roundtrip() {
        for tr in [Transform::Linear, Transform::Log] {
            for i in 0..=10 {
                let t = i as f64 / 10.0;
                let v = tr.warp(t, 8.0, 64.0);
                assert!((tr.unwarp(v, 8.0, 64.0) - t).abs() < 1e-12, "{tr:?} t={t}");
            }
        }
    }

    #[test]
    fn leveled_param_produces_grid() {
        let p = ParamDef::leveled("l2", 256.0, 8192.0, 6, Transform::Log);
        let vals = p.level_values(100);
        let expected = [256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0];
        for (v, e) in vals.iter().zip(expected) {
            assert!((v - e).abs() < 1e-6, "{v} vs {e}");
        }
    }

    #[test]
    fn reversed_range_maps_unit_zero_to_lo() {
        let p = ParamDef::continuous("pipe_depth", 24.0, 7.0);
        assert_eq!(p.to_actual(0.0), 24.0);
        assert_eq!(p.to_actual(1.0), 7.0);
        assert!((p.to_unit(7.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn snap_hits_nearest_level() {
        let p = ParamDef::leveled("x", 0.0, 10.0, 5, Transform::Linear);
        // Unit grid: 0, 0.25, 0.5, 0.75, 1.
        assert_eq!(p.snap(0.25, 100), 0.25);
        assert_eq!(p.snap(0.3, 100), 0.25);
        assert_eq!(p.snap(0.4, 100), 0.5);
        assert_eq!(p.snap(1.2, 100), 1.0);
    }

    #[test]
    fn space_roundtrip() {
        let space = ParamSpace::new(vec![
            ParamDef::continuous("a", 24.0, 128.0),
            ParamDef::leveled("b", 8.0, 64.0, 4, Transform::Log),
        ]);
        let unit = vec![0.3, 0.7];
        let back = space.to_unit(&space.to_actual(&unit));
        for (u, b) in unit.iter().zip(&back) {
            assert!((u - b).abs() < 1e-12);
        }
    }

    #[test]
    fn restricted_space_shrinks_ranges() {
        let space = ParamSpace::new(vec![ParamDef::continuous("a", 0.0, 100.0)]);
        let sub = space.restricted(&[(0.1, 0.9)]);
        assert_eq!(sub.params()[0].lo(), 10.0);
        assert_eq!(sub.params()[0].hi(), 90.0);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_panic() {
        ParamSpace::new(vec![
            ParamDef::continuous("a", 0.0, 1.0),
            ParamDef::continuous("a", 0.0, 2.0),
        ]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_range_panics() {
        ParamDef::continuous("a", 1.0, 1.0);
    }

    #[test]
    fn random_to_actual_within_range() {
        let mut rng = Rng::seed_from_u64(31);
        let p = ParamDef::leveled("x", 8.0, 64.0, 4, Transform::Log);
        for i in 0..=128 {
            let t = if i <= 1 { i as f64 } else { rng.unit_f64() };
            let v = p.to_actual(t);
            assert!((8.0 - 1e-9..=64.0 + 1e-9).contains(&v), "t {t} gave {v}");
        }
    }

    #[test]
    fn random_snap_idempotent() {
        let mut rng = Rng::seed_from_u64(32);
        for _ in 0..128 {
            let t = rng.unit_f64();
            let k = 2 + rng.below(18) as usize;
            let p = ParamDef::leveled("x", 0.0, 1.0, k, Transform::Linear);
            let s = p.snap(t, 50);
            assert_eq!(p.snap(s, 50), s, "t {t} k {k}");
        }
    }
}
