//! Chaos mode: seeded fault injection for the serving plane.
//!
//! Two kinds of trouble, both derived deterministically from one seed:
//!
//! * **Evaluation faults** — a [`FaultPlan`] (reused from
//!   `ppm-core::fault`, the same machinery the model *builder* is
//!   hardened against) keyed off the request sequence number: worker
//!   panics, NaN/∞ predictions, and slow evaluations. The server routes
//!   these through exactly the paths a genuinely broken model would
//!   take, so chaos mode tests the real defenses, not a parallel code
//!   path.
//! * **Misbehaving clients** — a background thread that connects and
//!   hangs up, sends garbage, and slowlorises partial request heads at
//!   the service's own address, exercising the socket budget and the
//!   `serve.client_errors` path under load.
//!
//! Chaos is opt-in (`ppm serve --chaos <seed>`) and never enabled by
//! any default configuration.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ppm_core::fault::FaultPlan;
use ppm_rng::Rng;

/// Rates tuned so a few hundred requests reliably see every fault kind
/// without drowning the healthy path: ~3% panics, ~3% NaNs, ~5% slow.
pub fn fault_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::none()
        .with_seed(seed)
        .with_panic_rate(0.03)
        .with_nan_rate(0.03)
        .with_slow_rate(0.05);
    plan.slow_delay = Duration::from_millis(40);
    plan
}

/// A background thread throwing misbehaving clients at the service.
/// Stops when the shared stop flag is set; joined on drop.
pub struct ChaosClients {
    handle: Option<JoinHandle<()>>,
}

impl ChaosClients {
    /// Starts the mischief thread against `addr`. Failures to spawn are
    /// swallowed — chaos is best-effort by definition.
    pub fn start(addr: SocketAddr, seed: u64, stop: Arc<AtomicBool>) -> Self {
        let handle = std::thread::Builder::new()
            .name("ppm-chaos".to_string())
            .spawn(move || mischief(addr, seed, &stop))
            .ok();
        ChaosClients { handle }
    }
}

impl Drop for ChaosClients {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

// atomic-policy(stop): Release, Acquire — the server publishes its
// shutdown with Release; the mischief loop's Acquire load pairs with it
// so chaos stops promptly once the service is gone.
fn mischief(addr: SocketAddr, seed: u64, stop: &AtomicBool) {
    let mut rng = Rng::seed_from_u64(ppm_rng::derive_seed(seed, 0x0c4a05));
    while !stop.load(Ordering::Acquire) {
        let connect = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        if let Ok(mut stream) = connect {
            let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
            match rng.below(3) {
                // Connect and hang up without sending anything.
                0 => {}
                // Garbage bytes with no request terminator.
                1 => {
                    let mut junk = [0u8; 32];
                    for b in junk.iter_mut() {
                        *b = (rng.next_u64() & 0xff) as u8;
                    }
                    let _ = stream.write_all(&junk);
                }
                // Slowloris: a partial request head, then a stall that
                // holds the worker until its socket budget expires or
                // we hang up — whichever the server survives first.
                _ => {
                    let _ = stream.write_all(b"GET /predict?rob");
                    std::thread::sleep(Duration::from_millis(300));
                }
            }
            drop(stream);
        }
        // Pace the mischief so real load still gets through.
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_is_seeded_and_has_no_transients() {
        let plan = fault_plan(7);
        assert_eq!(plan.seed, 7);
        assert!(plan.panic_rate > 0.0 && plan.nan_rate > 0.0 && plan.slow_rate > 0.0);
        assert_eq!(plan.inf_rate, 0.0, "∞ is covered by the NaN path");
        assert_eq!(plan.transient_attempts, 0);
        // Two seeds schedule different fault sets over the same indices.
        let a: Vec<_> = (0..200).map(|i| fault_plan(1).fault_at_index(i)).collect();
        let b: Vec<_> = (0..200).map(|i| fault_plan(2).fault_at_index(i)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn chaos_clients_stop_on_flag() {
        // Point the clients at an address nobody listens on: every
        // connect fails, and the loop must still exit promptly.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let stop = Arc::new(AtomicBool::new(false));
        let clients = ChaosClients::start(addr, 3, Arc::clone(&stop));
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, Ordering::Release);
        drop(clients); // joins; hangs the test if the flag is ignored
    }
}
