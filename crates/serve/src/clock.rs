//! The serving plane's only window onto real time.
//!
//! Deadlines and latency measurement are inherently observations of the
//! wall clock, and a service that cannot see time cannot shed late
//! work. The workspace's `wall-clock` lint rule therefore exempts
//! exactly this module (see `crates/lint/src/rules.rs`): every other
//! file in `ppm-serve` expresses time through [`Deadline`] and
//! [`Stopwatch`] so stray `Instant::now()` calls cannot creep into
//! logic that should be time-free. Nothing here ever feeds a
//! deterministic artifact — ledger bodies, models, and checkpoints are
//! produced by the build pipeline, not the serving plane.

use std::time::{Duration, Instant};

/// A point in the future by which a request must be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        // The single sanctioned clock read for deadline arming; see the
        // module docs for why this module is exempt from the wall-clock
        // rule.
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// True once the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// Unix wall-clock milliseconds — the provenance stamp a `ppm-bench v1`
/// timing sidecar carries. Zero if the system clock is before the
/// epoch.
pub fn unix_now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Unix wall-clock seconds — the slot key for the SLO tracker's
/// one-second accounting ring (`trace::SloTracker`). Trace and SLO code
/// never reads the clock itself: this module is the wall-clock lint's
/// single sanctioned exemption in ppm-serve, and every trace timestamp
/// flows outward from here.
pub fn unix_now_sec() -> u64 {
    unix_now_ms() / 1000
}

/// Measures elapsed real time from its creation — request latency,
/// queueing delay.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Elapsed time since the start.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed whole milliseconds since the start.
    pub fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Elapsed whole microseconds since the start.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// A deadline `budget` after the stopwatch *started* (not after
    /// now): the request's clock starts at accept, so time spent queued
    /// counts against its budget.
    pub fn deadline_after(&self, budget: Duration) -> Deadline {
        Deadline {
            at: self.started + budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlines_expire_and_report_remaining() {
        let d = Deadline::after(Duration::from_millis(50));
        assert!(!d.expired());
        assert!(d.remaining() <= Duration::from_millis(50));
        let past = Deadline::after(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(past.expired());
        assert_eq!(past.remaining(), Duration::ZERO);
    }

    #[test]
    fn stopwatch_counts_up_and_anchors_deadlines_at_start() {
        let w = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(w.elapsed() >= Duration::from_millis(5));
        assert!(w.elapsed_ms() <= 10_000, "sane magnitude");
        // A deadline anchored at start is already mostly consumed.
        let d = w.deadline_after(Duration::from_millis(6));
        std::thread::sleep(Duration::from_millis(2));
        assert!(d.expired());
    }
}
