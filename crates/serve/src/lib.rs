//! ppm-serve: the fault-hardened CPI-prediction service.
//!
//! The surrogate model exists to be queried, and this crate is the
//! always-on query surface: `ppm serve <addr>` answers
//! `GET /predict?rob=128&deadline_ms=50` with a CPI prediction from the
//! RBF surrogate — or, when the service is overloaded or the model is
//! failing, from the first-order analytical estimator, flagged
//! `"degraded": true`. The design is robustness-first:
//!
//! * **Deadlines** — every request carries one (default or
//!   `?deadline_ms=`, capped), armed at *accept* so queueing counts
//!   against it; late answers become explicit 503s, never stale data.
//! * **Load shedding** — a bounded queue in front of a sharded worker
//!   pool ([`ppm_exec::ServicePool`]); when it fills, requests are
//!   refused immediately (`serve.shed`) instead of queueing unboundedly.
//! * **Graceful degradation** — queue pressure or a streak of model
//!   failures switches prediction to the analytical estimator
//!   ([`ppm_firstorder`]), which sheds *precision* instead of
//!   availability; recovery is automatic via periodic probes.
//! * **Validated hot reload** — models live in a content-addressed
//!   registry ([`store`]); `POST /reloadz` swaps in the `CURRENT`
//!   version only after it passes checksum, hash, and probe validation,
//!   so a corrupt candidate rolls back by never being swapped in.
//! * **Chaos mode** — `--chaos <seed>` injects worker panics, NaN
//!   predictions, slow evaluations, and misbehaving clients
//!   (deterministically, via `ppm_core::fault`), and `ppm loadtest`
//!   ([`run_loadtest`]) measures what the service does under fire.

mod chaos;
mod clock;
mod loadtest;
mod server;
mod store;
mod tail;
pub mod trace;

pub use clock::{unix_now_ms, unix_now_sec, Deadline, Stopwatch};
pub use loadtest::{
    run_ab, run_loadtest, AbReport, LoadtestConfig, LoadtestReport, TraceCheckReport,
};
pub use server::{ServeConfig, ServeServer};
pub use store::{publish, ModelStore, ReloadOutcome, ServingModel, CURRENT_FILE};
pub use tail::{run_tail, TailConfig};
pub use trace::{
    SloTracker, SloWindow, SpanRec, TraceConfig, TraceContext, TraceFilter, TraceOutcome,
    TraceRecord, TraceRing, TRACEZ_SCHEMA,
};

use std::error::Error;
use std::fmt;

/// Why the serving plane could not do what was asked of it.
#[derive(Debug)]
pub enum ServeError {
    /// The listen address could not be bound (or the accept thread
    /// could not be spawned).
    Bind {
        /// The address that was requested.
        addr: String,
        /// The operating-system failure.
        detail: String,
    },
    /// The model registry refused an open, publish, or reload — the
    /// message names the failed validation step.
    Store(String),
    /// The worker pool was misconfigured (zero workers or queue slots).
    Pool(String),
    /// A client-side operation (loadtest, control request) failed.
    Client(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, detail } => {
                write!(f, "cannot serve on {addr}: {detail}")
            }
            ServeError::Store(detail) => write!(f, "model registry: {detail}"),
            ServeError::Pool(detail) => write!(f, "worker pool: {detail}"),
            ServeError::Client(detail) => write!(f, "{detail}"),
        }
    }
}

impl Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let e = ServeError::Bind {
            addr: "127.0.0.1:80".to_string(),
            detail: "permission denied".to_string(),
        };
        assert!(e.to_string().contains("127.0.0.1:80"));
        assert!(ServeError::Store("no CURRENT".to_string())
            .to_string()
            .contains("registry"));
    }

    #[test]
    fn bind_failure_is_typed() {
        // Occupy a port, then ask the server for the same one.
        let holder = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = holder.local_addr().unwrap().to_string();
        let result = ServeServer::start(ServeConfig {
            addr: addr.clone(),
            registry: std::env::temp_dir().join("ppm-serve-bind-none"),
            fallback_benchmark: Some(ppm_workload::Benchmark::Ammp),
            ..ServeConfig::default()
        });
        match result {
            Err(ServeError::Bind { addr: a, .. }) => assert_eq!(a, addr),
            Err(other) => panic!("expected Bind, got {other}"),
            Ok(_) => panic!("bound an occupied port"),
        }
    }
}
