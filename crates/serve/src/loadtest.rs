//! The load generator: `ppm loadtest` issues open- or closed-loop
//! request streams against a running service and reports latency
//! quantiles, so shed/degrade/SLO claims are *measured*, not asserted.
//!
//! Closed loop (`rate == 0`): each of `concurrency` workers fires its
//! next request the moment the previous one answers — the classic
//! saturation probe. Open loop (`rate > 0`): request *k* of the whole
//! test is launched at `start + k/rate`, whether or not earlier ones
//! have answered, which is what real arrival processes do to a service
//! and what makes queueing delay visible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ppm_live::{http_get, http_request_full};
use ppm_obs::{BenchRecord, Json};
use ppm_telemetry::Registry;

use crate::clock::{unix_now_ms, Stopwatch};
use crate::ServeError;

/// ROB sizes cycled across requests so the service sees varied (but
/// always valid) design points instead of one cache-hot configuration.
const ROB_SIZES: [u32; 8] = [32, 48, 64, 96, 128, 160, 192, 256];

/// Everything `ppm loadtest` needs. The CLI maps flags onto this
/// one-to-one.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// The service address (`host:port`).
    pub addr: String,
    /// Total requests across all workers.
    pub requests: usize,
    /// Concurrent workers.
    pub concurrency: usize,
    /// Open-loop arrival rate in requests/second across the whole test;
    /// zero means closed loop.
    pub rate: f64,
    /// Per-request `?deadline_ms=` to attach, if any.
    pub deadline_ms: Option<u64>,
    /// Socket budget per request (connect + read).
    pub timeout: Duration,
    /// Send a client-chosen `X-Ppm-Trace` ID with every request and
    /// cross-check client outcome counts against the server's
    /// `/statusz` counters and `/tracez` retained records afterwards.
    /// Skipped gracefully when the server has tracing disabled or its
    /// control routes are unreachable.
    pub trace_check: bool,
    /// Base of the client trace-ID prefix (`{prefix}-{start}-{k}`).
    pub trace_prefix: String,
}

impl Default for LoadtestConfig {
    fn default() -> Self {
        LoadtestConfig {
            addr: "127.0.0.1:0".to_string(),
            requests: 200,
            concurrency: 4,
            rate: 0.0,
            deadline_ms: None,
            timeout: Duration::from_secs(5),
            trace_check: true,
            trace_prefix: "lt".to_string(),
        }
    }
}

/// What a loadtest measured. Every accepted request lands in exactly
/// one of `ok`/`shed`/`deadline_exceeded`/`errors`; `degraded` counts
/// the subset of `ok` answered by the analytical estimator.
///
/// Latency is tallied **per outcome class**: `p50_ms`/`p95_ms`/
/// `p99_ms`/`mean_ms` cover successful (200) answers only — the
/// numbers an SLO is about — while refusals (503s, which a saturated
/// service returns in microseconds) report separately as
/// `refusal_*`. Folding both into one histogram would let a storm of
/// fast 503s drag the "latency" quantiles down precisely when the
/// service is at its worst. Transport failures are not timed at all:
/// their latency measures the client's timeout budget, not the
/// service.
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Requests issued.
    pub sent: u64,
    /// 200 responses with a parseable `ppm-serve v1` body.
    pub ok: u64,
    /// The subset of `ok` flagged `"degraded": true`.
    pub degraded: u64,
    /// 503s from queue-full load shedding.
    pub shed: u64,
    /// 503s from deadline enforcement.
    pub deadline_exceeded: u64,
    /// Transport failures, non-JSON bodies, and unexpected statuses.
    pub errors: u64,
    /// Median successful-request latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile successful-request latency in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile successful-request latency in milliseconds.
    pub p99_ms: f64,
    /// Mean successful-request latency in milliseconds.
    pub mean_ms: f64,
    /// Median refusal (503) latency in milliseconds.
    pub refusal_p50_ms: f64,
    /// 99th-percentile refusal (503) latency in milliseconds.
    pub refusal_p99_ms: f64,
    /// Mean refusal (503) latency in milliseconds.
    pub refusal_mean_ms: f64,
    /// Whole-test wall time in milliseconds.
    pub wall_ms: f64,
    /// Achieved throughput in requests/second.
    pub rps: f64,
    /// End-to-end accounting cross-check, when one was run.
    pub trace_check: Option<TraceCheckReport>,
}

/// What the end-to-end accounting cross-check found: did the server's
/// own books (counter deltas on `/statusz`, retained records on
/// `/tracez`) agree with what this client observed?
#[derive(Debug, Clone)]
pub struct TraceCheckReport {
    /// The trace-ID prefix this run stamped on its requests.
    pub prefix: String,
    /// False when the check could not run (tracing disabled on the
    /// server, or its control routes were unreachable) — `mismatches`
    /// then holds the reason, not discrepancies.
    pub checked: bool,
    /// Retained `/tracez` records carrying this run's prefix.
    pub matched_traces: u64,
    /// Human-readable discrepancies; empty means the books balance.
    pub mismatches: Vec<String>,
}

impl TraceCheckReport {
    /// True when the check ran and found no discrepancies.
    pub fn passed(&self) -> bool {
        self.checked && self.mismatches.is_empty()
    }

    fn skipped(prefix: String, reason: String) -> Self {
        TraceCheckReport {
            prefix,
            checked: false,
            matched_traces: 0,
            mismatches: vec![reason],
        }
    }

    /// The check as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("prefix".to_string(), Json::Str(self.prefix.clone())),
            ("checked".to_string(), Json::Bool(self.checked)),
            (
                "matched_traces".to_string(),
                Json::from(self.matched_traces),
            ),
            (
                "mismatches".to_string(),
                Json::Arr(
                    self.mismatches
                        .iter()
                        .map(|m| Json::Str(m.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl LoadtestReport {
    /// The report as a JSON document (`ppm-loadtest v1`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "schema".to_string(),
                Json::Str("ppm-loadtest v1".to_string()),
            ),
            ("sent".to_string(), Json::from(self.sent)),
            ("ok".to_string(), Json::from(self.ok)),
            ("degraded".to_string(), Json::from(self.degraded)),
            ("shed".to_string(), Json::from(self.shed)),
            (
                "deadline_exceeded".to_string(),
                Json::from(self.deadline_exceeded),
            ),
            ("errors".to_string(), Json::from(self.errors)),
            ("p50_ms".to_string(), Json::Float(self.p50_ms)),
            ("p95_ms".to_string(), Json::Float(self.p95_ms)),
            ("p99_ms".to_string(), Json::Float(self.p99_ms)),
            ("mean_ms".to_string(), Json::Float(self.mean_ms)),
            (
                "refusal_p50_ms".to_string(),
                Json::Float(self.refusal_p50_ms),
            ),
            (
                "refusal_p99_ms".to_string(),
                Json::Float(self.refusal_p99_ms),
            ),
            (
                "refusal_mean_ms".to_string(),
                Json::Float(self.refusal_mean_ms),
            ),
            ("wall_ms".to_string(), Json::Float(self.wall_ms)),
            ("rps".to_string(), Json::Float(self.rps)),
            (
                "trace_check".to_string(),
                match &self.trace_check {
                    Some(check) => check.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// A `ppm-bench v1` record carrying the p99 latency of successful
    /// answers — the SLO number the regression sentry gates on.
    pub fn bench_record(&self) -> BenchRecord {
        BenchRecord {
            bench: "serve_latency_p99".to_string(),
            unit: "ms".to_string(),
            wall_ms: self.p99_ms,
            source_run: "loadtest".to_string(),
            created_unix_ms: unix_now_ms(),
        }
    }
}

/// Shared tallies the worker threads bump.
#[derive(Default)]
struct Tallies {
    ok: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    errors: AtomicU64,
}

/// Runs the loadtest to completion and reports.
///
/// # Errors
///
/// [`ServeError::Client`] when the configuration is unusable (zero
/// requests or workers) or when *every* request failed at the transport
/// layer — the address is almost certainly wrong, and a report full of
/// zeros would bury that.
pub fn run_loadtest(config: &LoadtestConfig) -> Result<LoadtestReport, ServeError> {
    if config.requests == 0 || config.concurrency == 0 {
        return Err(ServeError::Client(
            "loadtest wants at least one request and one worker".to_string(),
        ));
    }
    let tallies = Tallies::default();
    // A scoped registry: loadtest latency must not pollute the global
    // metrics of whatever process embeds this (tests, the CLI). One
    // histogram per outcome class — see the report docs for why they
    // must not share one.
    let registry = Registry::new();
    let ok_latency_us = registry.histogram("loadtest.latency.ok.us");
    let refusal_latency_us = registry.histogram("loadtest.latency.refused.us");
    // The accounting cross-check brackets the run with /statusz
    // snapshots; the "before" counters also make the trace-ID prefix
    // unique across consecutive runs against the same server.
    let before = if config.trace_check {
        // A failed snapshot (e.g. the shed-all drill refuses control
        // routes too) downgrades the check to "skipped", never the
        // whole loadtest.
        Some(statusz_counters(config))
    } else {
        None
    };
    let prefix = match &before {
        Some(Ok(b)) => Some(format!(
            "{}-{}",
            config.trace_prefix,
            b.get("requests").copied().unwrap_or(0)
        )),
        _ => None,
    };
    let wall = Stopwatch::start();
    std::thread::scope(|scope| {
        for worker in 0..config.concurrency {
            let tallies = &tallies;
            let ok_latency_us = &ok_latency_us;
            let refusal_latency_us = &refusal_latency_us;
            let prefix = prefix.as_deref();
            scope.spawn(move || {
                let mut k = worker;
                while k < config.requests {
                    if config.rate > 0.0 {
                        // Open loop: request k launches at start + k/rate,
                        // regardless of how earlier requests are doing.
                        let due =
                            wall.deadline_after(Duration::from_secs_f64(k as f64 / config.rate));
                        let lag = due.remaining();
                        if !lag.is_zero() {
                            std::thread::sleep(lag);
                        }
                    }
                    // analyze:allow(panic-reachability) k % len is in bounds
                    let rob = ROB_SIZES[k % ROB_SIZES.len()];
                    let path = match config.deadline_ms {
                        Some(ms) => format!("/predict?rob={rob}&deadline_ms={ms}"),
                        None => format!("/predict?rob={rob}"),
                    };
                    let request = Stopwatch::start();
                    let outcome = match prefix {
                        Some(prefix) => http_request_full(
                            &config.addr,
                            "GET",
                            &path,
                            &[("X-Ppm-Trace", &format!("{prefix}-{k}"))],
                            config.timeout,
                        )
                        .map(|r| (r.status, r.body)),
                        None => http_get(&config.addr, &path, config.timeout),
                    };
                    let elapsed_us = request.elapsed_us();
                    match classify(tallies, &outcome) {
                        Outcome::Ok => ok_latency_us.record(elapsed_us),
                        Outcome::Refusal => refusal_latency_us.record(elapsed_us),
                        Outcome::Error => {}
                    }
                    k += config.concurrency;
                }
            });
        }
    });
    let wall_ms = wall.elapsed_us() as f64 / 1000.0;
    let sent = config.requests as u64;
    let errors = tallies.errors.load(Ordering::Relaxed);
    if errors == sent {
        return Err(ServeError::Client(format!(
            "all {sent} requests to {} failed; is the service up?",
            config.addr
        )));
    }
    let q = |p: f64| ok_latency_us.quantile(p).unwrap_or(0) as f64 / 1000.0;
    let rq = |p: f64| refusal_latency_us.quantile(p).unwrap_or(0) as f64 / 1000.0;
    let trace_check = match before {
        None => None,
        Some(Err(reason)) => Some(TraceCheckReport::skipped(
            prefix.unwrap_or_default(),
            reason,
        )),
        Some(Ok(before)) => Some(cross_check(
            config,
            &tallies,
            &before,
            prefix.unwrap_or_default(),
        )),
    };
    Ok(LoadtestReport {
        sent,
        ok: tallies.ok.load(Ordering::Relaxed),
        degraded: tallies.degraded.load(Ordering::Relaxed),
        shed: tallies.shed.load(Ordering::Relaxed),
        deadline_exceeded: tallies.deadline_exceeded.load(Ordering::Relaxed),
        errors,
        p50_ms: q(0.50),
        p95_ms: q(0.95),
        p99_ms: q(0.99),
        mean_ms: ok_latency_us.mean().unwrap_or(0.0) / 1000.0,
        refusal_p50_ms: rq(0.50),
        refusal_p99_ms: rq(0.99),
        refusal_mean_ms: refusal_latency_us.mean().unwrap_or(0.0) / 1000.0,
        wall_ms,
        rps: if wall_ms > 0.0 {
            sent as f64 / (wall_ms / 1000.0)
        } else {
            0.0
        },
        trace_check,
    })
}

/// Fetches `/statusz` and flattens the counters the accounting check
/// compares: top-level request-outcome totals plus `trace.enabled`.
fn statusz_counters(
    config: &LoadtestConfig,
) -> Result<std::collections::BTreeMap<&'static str, u64>, String> {
    let (status, body) = http_get(&config.addr, "/statusz", config.timeout)
        .map_err(|e| format!("/statusz unreachable: {e}"))?;
    if status != 200 {
        return Err(format!("/statusz answered {status}"));
    }
    let doc = Json::parse(&body).map_err(|e| format!("/statusz is not JSON: {e}"))?;
    let field = |key: &str| {
        doc.get(key)
            .and_then(Json::as_i64)
            .map(|v| v.max(0) as u64)
            .unwrap_or(0)
    };
    let mut out = std::collections::BTreeMap::new();
    out.insert("requests", field("requests"));
    out.insert("ok", field("ok"));
    out.insert("shed", field("shed"));
    out.insert("degraded", field("degraded"));
    out.insert("deadline_exceeded", field("deadline_exceeded"));
    out.insert(
        "trace_enabled",
        u64::from(
            doc.get("trace")
                .and_then(|t| t.get("enabled"))
                .and_then(Json::as_bool)
                .unwrap_or(false),
        ),
    );
    Ok(out)
}

/// Balances the books after a run: server-side counter deltas must
/// equal this client's tallies, and `/tracez` must have retained a
/// record for every deadline refusal this client was handed (those are
/// never sampled out and carry the client's own trace IDs).
fn cross_check(
    config: &LoadtestConfig,
    tallies: &Tallies,
    before: &std::collections::BTreeMap<&'static str, u64>,
    prefix: String,
) -> TraceCheckReport {
    // The server offers a request's trace record (and bumps SLO slots)
    // *after* writing the response, so the instant the client sees its
    // last answer the server-side books may still be settling. Give
    // them a beat.
    std::thread::sleep(Duration::from_millis(50));
    let after = match statusz_counters(config) {
        Ok(after) => after,
        Err(reason) => {
            return TraceCheckReport::skipped(prefix, format!("post-run {reason}"));
        }
    };
    let mut mismatches = Vec::new();
    let errors = tallies.errors.load(Ordering::Relaxed);
    if errors > 0 {
        // A transport error leaves the client blind to what the server
        // recorded (it may have answered after our timeout), so exact
        // accounting is impossible — don't pretend otherwise.
        return TraceCheckReport::skipped(
            prefix,
            format!("{errors} transport errors make exact accounting impossible"),
        );
    }
    let delta = |key: &str| {
        after
            .get(key)
            .copied()
            .unwrap_or(0)
            .saturating_sub(before.get(key).copied().unwrap_or(0))
    };
    for (key, client) in [
        ("ok", tallies.ok.load(Ordering::Relaxed)),
        ("shed", tallies.shed.load(Ordering::Relaxed)),
        ("degraded", tallies.degraded.load(Ordering::Relaxed)),
        (
            "deadline_exceeded",
            tallies.deadline_exceeded.load(Ordering::Relaxed),
        ),
    ] {
        let server = delta(key);
        if server != client {
            mismatches.push(format!(
                "{key}: client saw {client}, server counted {server}"
            ));
        }
    }
    if before.get("trace_enabled").copied().unwrap_or(0) == 0 {
        return TraceCheckReport {
            prefix,
            checked: true,
            matched_traces: 0,
            mismatches,
        };
    }
    // Tracing is on: every deadline refusal the client saw must be
    // retrievable by the client's own trace ID.
    let path = format!("/tracez?id_prefix={prefix}&limit={}", config.requests);
    let mut matched_traces = 0;
    match http_get(&config.addr, &path, config.timeout) {
        Ok((200, body)) => match Json::parse(&body) {
            Ok(doc) => {
                let records = doc
                    .get("records")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .to_vec();
                matched_traces = records.len() as u64;
                let deadline_traces = records
                    .iter()
                    .filter(|r| r.get("outcome").and_then(Json::as_str) == Some("deadline_expired"))
                    .count() as u64;
                let client_deadline = tallies.deadline_exceeded.load(Ordering::Relaxed);
                if deadline_traces != client_deadline {
                    mismatches.push(format!(
                        "deadline traces: client saw {client_deadline} refusals, \
                         /tracez retained {deadline_traces} with prefix {prefix}"
                    ));
                }
            }
            Err(e) => mismatches.push(format!("/tracez is not JSON: {e}")),
        },
        Ok((status, _)) => mismatches.push(format!("/tracez answered {status}")),
        Err(e) => mismatches.push(format!("/tracez unreachable: {e}")),
    }
    TraceCheckReport {
        prefix,
        checked: true,
        matched_traces,
        mismatches,
    }
}

/// What an A/B overhead measurement produced: the same loadtest shape
/// against a traced and an untraced server, and the relative p99 cost.
#[derive(Debug, Clone)]
pub struct AbReport {
    /// The run against the traced server (`config.addr`).
    pub traced: LoadtestReport,
    /// The run against the baseline (`--no-trace`) server.
    pub baseline: LoadtestReport,
    /// `(traced p99 − baseline p99) / baseline p99`, in percent.
    /// Negative when the traced run was (noise) faster.
    pub overhead_pct: f64,
}

impl AbReport {
    /// A `ppm-bench v1` record carrying the measured p99 overhead.
    pub fn bench_record(&self) -> BenchRecord {
        BenchRecord {
            bench: "serve_trace_overhead_p99".to_string(),
            unit: "pct".to_string(),
            wall_ms: self.overhead_pct,
            source_run: "loadtest-ab".to_string(),
            created_unix_ms: unix_now_ms(),
        }
    }

    /// The A/B comparison as a JSON document (`ppm-loadtest-ab v1`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "schema".to_string(),
                Json::Str("ppm-loadtest-ab v1".to_string()),
            ),
            ("traced_p99_ms".to_string(), Json::Float(self.traced.p99_ms)),
            (
                "baseline_p99_ms".to_string(),
                Json::Float(self.baseline.p99_ms),
            ),
            ("overhead_pct".to_string(), Json::Float(self.overhead_pct)),
            ("traced".to_string(), self.traced.to_json()),
            ("baseline".to_string(), self.baseline.to_json()),
        ])
    }
}

/// Measures tracing overhead: runs `config` against its (traced)
/// address, then the identical shape against `baseline_addr` (expected
/// to be the same model served with `--no-trace`), and compares p99s.
///
/// # Errors
///
/// Whatever [`run_loadtest`] reports for either leg.
pub fn run_ab(config: &LoadtestConfig, baseline_addr: &str) -> Result<AbReport, ServeError> {
    let traced = run_loadtest(config)?;
    let mut baseline_config = config.clone();
    baseline_config.addr = baseline_addr.to_string();
    // The baseline leg has tracing off by definition; checking would
    // only report "skipped" noise.
    baseline_config.trace_check = false;
    let baseline = run_loadtest(&baseline_config)?;
    let overhead_pct = if baseline.p99_ms > 0.0 {
        (traced.p99_ms - baseline.p99_ms) / baseline.p99_ms * 100.0
    } else {
        0.0
    };
    Ok(AbReport {
        traced,
        baseline,
        overhead_pct,
    })
}

/// Which latency histogram a response belongs to.
enum Outcome {
    /// A successful (200) prediction.
    Ok,
    /// An explicit 503 refusal (shed or deadline-exceeded).
    Refusal,
    /// A transport failure or malformed answer; not timed.
    Error,
}

/// Buckets one response. 503 bodies distinguish shedding from deadline
/// enforcement by their `error` text — both are explicit refusals, but
/// they indict different defenses.
fn classify(tallies: &Tallies, outcome: &Result<(u16, String), ppm_live::LiveError>) -> Outcome {
    match outcome {
        Ok((200, body)) => match Json::parse(body) {
            Ok(doc) if doc.get("prediction").and_then(Json::as_f64).is_some() => {
                tallies.ok.fetch_add(1, Ordering::Relaxed);
                if doc.get("degraded").and_then(Json::as_bool) == Some(true) {
                    tallies.degraded.fetch_add(1, Ordering::Relaxed);
                }
                Outcome::Ok
            }
            _ => {
                tallies.errors.fetch_add(1, Ordering::Relaxed);
                Outcome::Error
            }
        },
        Ok((503, body)) => {
            if body.contains("deadline") {
                tallies.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            } else {
                tallies.shed.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Refusal
        }
        _ => {
            tallies.errors.fetch_add(1, Ordering::Relaxed);
            Outcome::Error
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServeConfig, ServeServer};
    use ppm_workload::Benchmark;

    fn analytical_server(tag: &str) -> ServeServer {
        let registry = std::env::temp_dir()
            .join(format!("ppm-loadtest-{tag}-{}", std::process::id()))
            .join("registry");
        ServeServer::start(ServeConfig {
            registry,
            fallback_benchmark: Some(Benchmark::Ammp),
            ..ServeConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn closed_loop_measures_a_live_service() {
        let server = analytical_server("closed");
        let report = run_loadtest(&LoadtestConfig {
            addr: server.addr().to_string(),
            requests: 24,
            concurrency: 3,
            ..LoadtestConfig::default()
        })
        .unwrap();
        assert_eq!(report.sent, 24);
        assert_eq!(
            report.ok + report.shed + report.deadline_exceeded + report.errors,
            24,
            "every request is classified exactly once"
        );
        assert!(report.ok > 0, "{report:?}");
        // Analytical-only service: every OK answer is degraded.
        assert_eq!(report.degraded, report.ok);
        assert!(report.p99_ms >= report.p50_ms);
        assert!(report.rps > 0.0);
        let bench = report.bench_record();
        assert_eq!(bench.bench, "serve_latency_p99");
        assert_eq!(bench.wall_ms, report.p99_ms);
        // The accounting cross-check ran against the (traced) server
        // and the books balanced.
        let check = report.trace_check.as_ref().expect("check ran");
        assert!(check.passed(), "{check:?}");
        let doc = report.to_json();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("ppm-loadtest v1")
        );
        assert!(doc.get("trace_check").is_some());
    }

    #[test]
    fn open_loop_paces_arrivals() {
        let server = analytical_server("open");
        let wall = Stopwatch::start();
        let report = run_loadtest(&LoadtestConfig {
            addr: server.addr().to_string(),
            requests: 10,
            concurrency: 2,
            rate: 100.0,
            ..LoadtestConfig::default()
        })
        .unwrap();
        // 10 requests at 100/s: the last launches at t=90ms, so the
        // test cannot finish faster than its arrival schedule.
        assert!(
            wall.elapsed() >= Duration::from_millis(80),
            "open loop finished in {}ms",
            wall.elapsed_ms()
        );
        assert_eq!(report.sent, 10);
    }

    #[test]
    fn shed_all_server_times_refusals_separately_from_ok() {
        let registry = std::env::temp_dir()
            .join(format!("ppm-loadtest-shedall-{}", std::process::id()))
            .join("registry");
        let server = ServeServer::start(ServeConfig {
            registry,
            fallback_benchmark: Some(Benchmark::Ammp),
            queue_per_worker: 0,
            ..ServeConfig::default()
        })
        .unwrap();
        let report = run_loadtest(&LoadtestConfig {
            addr: server.addr().to_string(),
            requests: 16,
            concurrency: 2,
            ..LoadtestConfig::default()
        })
        .unwrap();
        assert_eq!(report.ok, 0, "{report:?}");
        assert_eq!(report.shed, 16, "{report:?}");
        // Control routes are shed too, so the accounting check must
        // downgrade itself to "skipped" rather than failing the run.
        let check = report.trace_check.as_ref().expect("check attempted");
        assert!(!check.checked, "{check:?}");
        // No successful sample: the OK quantiles have no evidence and
        // must stay empty instead of being filled by fast 503s.
        assert_eq!(report.p99_ms, 0.0, "{report:?}");
        assert!(report.refusal_p99_ms > 0.0, "{report:?}");
        assert!(report.refusal_p99_ms >= report.refusal_p50_ms);
    }

    #[test]
    fn unreachable_service_is_an_error_not_a_zero_report() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let err = run_loadtest(&LoadtestConfig {
            addr,
            requests: 3,
            concurrency: 1,
            timeout: Duration::from_millis(200),
            ..LoadtestConfig::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("failed"), "{err}");
    }

    #[test]
    fn zero_requests_or_workers_is_rejected() {
        let bad = LoadtestConfig {
            requests: 0,
            ..LoadtestConfig::default()
        };
        assert!(run_loadtest(&bad).is_err());
        let bad = LoadtestConfig {
            concurrency: 0,
            ..LoadtestConfig::default()
        };
        assert!(run_loadtest(&bad).is_err());
    }
}
