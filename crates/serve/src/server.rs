//! The prediction service: a deadline-enforced HTTP endpoint over a
//! sharded worker pool, with load shedding, graceful degradation, and
//! validated hot reload.
//!
//! # Request life cycle
//!
//! Every accepted connection is stamped with a [`Stopwatch`] *at
//! accept*, so time spent waiting in the worker queue counts against
//! the request's deadline. The accept thread offers the connection to a
//! [`ServicePool`]; when every shard queue is full the request is
//! **shed** — an immediate best-effort 503 instead of unbounded queueing
//! (`serve.shed`). A worker that picks the request up first checks the
//! deadline (expired-in-queue is a 503, not a stale answer), evaluates,
//! and checks again before replying.
//!
//! # The shed / degrade state machine
//!
//! Shedding and degradation are different defenses and trip
//! independently:
//!
//! * **Shed** protects *latency*: the queue is full, so the request is
//!   refused outright. No prediction is attempted.
//! * **Degrade** protects *availability of answers*: the request is
//!   served, but by the first-order analytical estimator instead of the
//!   RBF surrogate, and the response says so (`"degraded": true`).
//!
//! Degradation triggers on any of: no model loaded (analytical-only
//! startup), queue depth at or past `degrade_depth` (pressure), or a
//! *sticky* failure state entered after `fail_streak` consecutive model
//! evaluation failures (panic or non-finite prediction). Sticky
//! degradation probes the real model every `probe_every`-th prediction
//! and clears itself on the first success — recovery is automatic, no
//! operator action required.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ppm_core::fault::{FaultPlan, InjectedFault};
use ppm_core::space::DesignSpace;
use ppm_exec::{ServicePool, SubmitError};
use ppm_live::http::{
    read_request_head, split_query, write_response, write_response_with_headers, MAX_HEAD,
};
use ppm_sim::SimConfig;
use ppm_telemetry::{json_string, Counter, Histogram, Level, Record};
use ppm_workload::Benchmark;

use crate::chaos::ChaosClients;
use crate::clock::{unix_now_ms, unix_now_sec, Stopwatch};
use crate::store::{ModelStore, ServingModel};
use crate::trace::{
    render_tracez_disabled, SloTracker, SpanRec, TraceConfig, TraceContext, TraceFilter,
    TraceOutcome, TraceRecord, TraceRing,
};
use crate::ServeError;

/// Per-connection socket budget (same rationale as the live plane): a
/// client that cannot send a head or drain a response in this window is
/// dropped.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

const JSON: &str = "application/json";
const TEXT: &str = "text/plain";

/// Everything `ppm serve` needs to start. Field defaults are tuned for
/// an interactive service on a developer machine; the CLI maps flags
/// onto them one-to-one.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads evaluating predictions.
    pub workers: usize,
    /// Bounded queue slots per worker; total queue capacity is
    /// `workers * queue_per_worker`, beyond which requests are shed.
    /// Zero is the explicit shed-all drill mode: the service accepts
    /// and refuses *every* request with a 503, which is how the
    /// loadtest's SLO gate is proven to fail (not pass vacuously)
    /// against a service that answers nothing.
    pub queue_per_worker: usize,
    /// Deadline applied when the request does not name one.
    pub default_deadline: Duration,
    /// Upper cap on client-requested deadlines (`?deadline_ms=`).
    pub max_deadline: Duration,
    /// Queue depth at which predictions degrade to the analytical
    /// estimator. Zero means *every* prediction is degraded — useful
    /// for drills and smoke tests.
    pub degrade_depth: usize,
    /// Consecutive model failures before degradation turns sticky.
    pub fail_streak: u32,
    /// While sticky, every n-th prediction probes the real model.
    pub probe_every: u64,
    /// The model registry directory (see [`crate::store`]).
    pub registry: PathBuf,
    /// Serve analytically when the registry has no loadable model.
    pub fallback_benchmark: Option<Benchmark>,
    /// Chaos-mode seed: injects worker faults and misbehaving clients.
    pub chaos: Option<u64>,
    /// Per-request tracing (`--no-trace` turns it off): span timelines
    /// in a tail-sampled ring, served at `GET /tracez`.
    pub trace: bool,
    /// Total trace-ring capacity across shards (`--trace-ring`).
    pub trace_ring: usize,
    /// Tail-sampling lottery for plain-OK traffic: keep 1 in this many.
    pub trace_sample: u64,
    /// Always keep the slowest N requests by total latency.
    pub trace_slow_keep: usize,
    /// Availability objective for the SLO tracker (`--slo-availability`),
    /// also the compliance fraction for the latency objective.
    pub slo_availability: f64,
    /// Latency objective (`--slo-latency-ms`): answered requests slower
    /// than this spend latency error budget.
    pub slo_latency: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_per_worker: 8,
            default_deadline: Duration::from_millis(250),
            max_deadline: Duration::from_secs(5),
            degrade_depth: 16,
            fail_streak: 3,
            probe_every: 16,
            registry: PathBuf::from("registry"),
            fallback_benchmark: None,
            chaos: None,
            trace: true,
            trace_ring: 4096,
            trace_sample: 64,
            trace_slow_keep: 32,
            slo_availability: 0.999,
            slo_latency: Duration::from_millis(100),
        }
    }
}

/// One accepted connection, stamped at accept so queueing time counts
/// against its deadline, and numbered at accept so shed requests have
/// a trace identity too.
struct Conn {
    stream: TcpStream,
    accepted: Stopwatch,
    seq: u64,
}

/// Pre-resolved counter handles: the hot path must not take the
/// registry lock per request.
struct Counters {
    requests: Arc<Counter>,
    ok: Arc<Counter>,
    shed: Arc<Counter>,
    degraded: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    client_errors: Arc<Counter>,
    reloads: Arc<Counter>,
    reload_failures: Arc<Counter>,
    model_failures: Arc<Counter>,
    latency_us: Arc<Histogram>,
    // Labeled refusal/degradation series (the `base|key=value` registry
    // convention renders as `ppm_serve_shed{reason="..."}` on /metrics).
    // Aggregates above keep their historical meaning; these split them
    // by cause so saturation is distinguishable from deadline expiry
    // without reading logs.
    shed_queue_full: Arc<Counter>,
    shed_deadline: Arc<Counter>,
    degraded_no_model: Arc<Counter>,
    degraded_depth: Arc<Counter>,
    degraded_fail_streak: Arc<Counter>,
    degraded_eval_failure: Arc<Counter>,
}

impl Counters {
    fn resolve() -> Self {
        Counters {
            requests: ppm_telemetry::counter("serve.requests"),
            ok: ppm_telemetry::counter("serve.ok"),
            shed: ppm_telemetry::counter("serve.shed"),
            degraded: ppm_telemetry::counter("serve.degraded"),
            deadline_exceeded: ppm_telemetry::counter("serve.deadline_exceeded"),
            client_errors: ppm_telemetry::counter("serve.client_errors"),
            reloads: ppm_telemetry::counter("serve.reloads"),
            reload_failures: ppm_telemetry::counter("serve.reload_failures"),
            model_failures: ppm_telemetry::counter("serve.model_failures"),
            latency_us: ppm_telemetry::histogram("serve.latency.us"),
            shed_queue_full: ppm_telemetry::counter("serve.shed|reason=queue_full"),
            shed_deadline: ppm_telemetry::counter("serve.shed|reason=deadline"),
            degraded_no_model: ppm_telemetry::counter("serve.degraded|reason=no_model"),
            degraded_depth: ppm_telemetry::counter("serve.degraded|reason=degrade_depth"),
            degraded_fail_streak: ppm_telemetry::counter("serve.degraded|reason=fail_streak"),
            degraded_eval_failure: ppm_telemetry::counter("serve.degraded|reason=eval_failure"),
        }
    }
}

/// Shared service state: the store, the degrade state machine, and the
/// knobs the request path consults.
struct ServeState {
    store: ModelStore,
    addr: SocketAddr,
    // atomic-policy(stop): Release, Acquire — shutdown (quitz, drop,
    // chaos teardown) publishes the flag with Release; the accept
    // loop's Acquire load pairs with it so everything written before
    // the stop request is visible when the loop winds down.
    stop: Arc<AtomicBool>,
    space: DesignSpace,
    default_deadline: Duration,
    max_deadline: Duration,
    degrade_depth: usize,
    fail_streak: u32,
    probe_every: u64,
    workers: usize,
    queue_capacity: usize,
    fault: Option<FaultPlan>,
    /// Requests accepted but not yet picked up by a worker — the
    /// pressure signal behind both `/readyz` and depth degradation.
    // atomic-policy(queued): SeqCst — incremented before the submit and
    // decremented on both the worker and the shed path; one total order
    // keeps the gauge exact so /readyz never flaps on a stale read.
    queued: AtomicUsize,
    /// Monotonic request sequence; the chaos plan keys faults off it.
    seq: AtomicU64,
    /// Consecutive model-evaluation failures.
    // atomic-policy(streak): SeqCst, Relaxed — the failure counter's
    // increment must order with the sticky swap it may trigger; plain
    // resets stay Relaxed.
    streak: AtomicU32,
    /// Sticky degradation: set after `fail_streak` failures, cleared by
    /// a successful probe.
    // atomic-policy(sticky): AcqRel, Acquire, Release — the swap that
    // flips degradation acquires the failure state that justified it
    // and releases it to every later reader of the flag.
    sticky: AtomicBool,
    /// Counts predictions taken while sticky, to pace probes.
    probe_tick: AtomicU64,
    counters: Counters,
    /// The tail-sampled request-trace ring; `None` under `--no-trace`.
    trace: Option<TraceRing>,
    /// Multi-window SLO accounting (always on — it is a few atomics).
    slo: SloTracker,
}

/// A running prediction service. [`ServeServer::wait`] blocks until the
/// service stops (`POST /quitz` or [`ServeServer::shutdown`]); dropping
/// the handle shuts it down.
pub struct ServeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    chaos: Option<ChaosClients>,
}

impl ServeServer {
    /// Opens the registry, binds the address, and starts the accept
    /// thread and worker pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when no model loads and no fallback
    /// benchmark is configured; [`ServeError::Bind`] when the address
    /// cannot be bound; [`ServeError::Pool`] when the worker pool is
    /// misconfigured (zero workers with a non-zero queue; a zero queue
    /// is the shed-all drill mode, not an error).
    pub fn start(config: ServeConfig) -> Result<Self, ServeError> {
        let store = ModelStore::open(&config.registry, config.fallback_benchmark)?;
        let listener = TcpListener::bind(&config.addr).map_err(|e| ServeError::Bind {
            addr: config.addr.clone(),
            detail: e.to_string(),
        })?;
        let addr = listener.local_addr().map_err(|e| ServeError::Bind {
            addr: config.addr.clone(),
            detail: e.to_string(),
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(ServeState {
            store,
            addr,
            stop: Arc::clone(&stop),
            space: DesignSpace::paper_table1(),
            default_deadline: config.default_deadline,
            max_deadline: config.max_deadline,
            degrade_depth: config.degrade_depth,
            fail_streak: config.fail_streak.max(1),
            probe_every: config.probe_every.max(1),
            workers: config.workers,
            queue_capacity: config.workers * config.queue_per_worker,
            fault: config.chaos.map(crate::chaos::fault_plan),
            queued: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            streak: AtomicU32::new(0),
            sticky: AtomicBool::new(false),
            probe_tick: AtomicU64::new(0),
            counters: Counters::resolve(),
            trace: (config.trace && config.trace_ring > 0).then(|| {
                TraceRing::new(TraceConfig {
                    capacity: config.trace_ring,
                    sample_one_in: config.trace_sample,
                    slow_keep: config.trace_slow_keep,
                })
            }),
            slo: SloTracker::new(
                config.slo_availability.clamp(0.0, 1.0 - 1e-9),
                u64::try_from(config.slo_latency.as_micros()).unwrap_or(u64::MAX),
            ),
        });
        // `queue_per_worker == 0` means shed-all: no pool at all, the
        // accept loop refuses everything. Going through ServicePool
        // would be rejected as a zero-slot queue, and rightly so — this
        // mode is a drill, not a degenerate pool.
        let pool = if config.queue_per_worker == 0 {
            None
        } else {
            let worker_state = Arc::clone(&state);
            Some(
                ServicePool::with_worker_ids(
                    "serve",
                    config.workers,
                    config.queue_per_worker,
                    move |worker, conn: Conn| {
                        worker_state.queued.fetch_sub(1, Ordering::SeqCst);
                        // Panic containment with a paper trail: the pool
                        // already catches handler panics, but a request
                        // lost to one would vanish from the trace ring.
                        // Pre-copy the identity, catch, record, and
                        // re-raise so `exec.serve.worker_panics` still
                        // counts it.
                        let (seq, accepted) = (conn.seq, conn.accepted);
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            handle_connection(&worker_state, conn, worker);
                        }));
                        if let Err(panic) = outcome {
                            if let Some(ring) = &worker_state.trace {
                                ring.offer(TraceRecord {
                                    id: TraceContext::new(seq, None).id,
                                    seq,
                                    route: "(worker panic)".to_string(),
                                    outcome: TraceOutcome::PanicContained,
                                    status: 0,
                                    detail: "request handler panicked".to_string(),
                                    worker: Some(worker),
                                    total_us: accepted.elapsed_us(),
                                    spans: vec![SpanRec {
                                        name: "accept",
                                        start_us: 0,
                                        dur_us: accepted.elapsed_us(),
                                    }],
                                    unix_ms: unix_now_ms(),
                                });
                            }
                            worker_state
                                .slo
                                .observe(unix_now_sec(), false, accepted.elapsed_us());
                            std::panic::resume_unwind(panic);
                        }
                    },
                )
                .map_err(|e| ServeError::Pool(e.to_string()))?,
            )
        };
        let accept_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("ppm-serve".to_string())
            .spawn(move || accept_loop(&listener, pool.as_ref(), &accept_state))
            .map_err(|e| ServeError::Bind {
                addr: config.addr.clone(),
                detail: format!("cannot spawn accept thread: {e}"),
            })?;
        let chaos = config
            .chaos
            .map(|seed| ChaosClients::start(addr, seed, Arc::clone(&stop)));
        Ok(ServeServer {
            addr,
            stop,
            handle: Some(handle),
            chaos,
        })
    }

    /// The actually bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the service stops — via `POST /quitz` or a signal
    /// from another thread holding [`ServeServer::shutdown`].
    pub fn wait(mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        self.stop.store(true, Ordering::Release);
        drop(self.chaos.take());
    }

    /// Stops accepting, drains queued requests, and joins every thread
    /// (workers, accept loop, chaos clients).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        drop(self.chaos.take());
    }
}

impl Drop for ServeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, pool: Option<&ServicePool<Conn>>, state: &Arc<ServeState>) {
    for conn in listener.incoming() {
        if state.stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match conn {
            Ok(stream) => stream,
            Err(e) => {
                client_error(state, "accept", &e.to_string());
                continue;
            }
        };
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        state.counters.requests.inc();
        state.queued.fetch_add(1, Ordering::SeqCst);
        let mut conn = Conn {
            stream,
            accepted: Stopwatch::start(),
            // Numbered at accept so every request — shed ones included —
            // has a deterministic trace identity, and so the chaos plan
            // keys faults off the true arrival order.
            seq: state.seq.fetch_add(1, Ordering::Relaxed),
        };
        let Some(pool) = pool else {
            // Shed-all drill mode: refuse without a pool to queue into.
            // Unlike saturation shedding, drain the request head first:
            // closing with unread bytes in the socket makes the kernel
            // send RST, which clients see as a transport error instead
            // of a 503. The slowloris argument for head-blind shedding
            // does not apply here — there is no queue to protect.
            state.queued.fetch_sub(1, Ordering::SeqCst);
            let mut scratch = [0u8; 1024];
            let _ = std::io::Read::read(&mut conn.stream, &mut scratch);
            shed(state, conn);
            continue;
        };
        match pool.try_submit(conn) {
            Ok(()) => {}
            Err(SubmitError::Saturated(conn)) => {
                state.queued.fetch_sub(1, Ordering::SeqCst);
                shed(state, conn);
            }
            Err(SubmitError::Closed(conn)) => {
                state.queued.fetch_sub(1, Ordering::SeqCst);
                shed(state, conn);
                break;
            }
        }
    }
    // Dropping the pool here drains already-queued connections and
    // joins the workers, so accepted requests still get answers.
}

/// Sheds an accepted connection: an immediate 503 without reading the
/// request head. Control routes shed too under saturation — a deliberate
/// tradeoff: reading heads on the accept thread would let one slowloris
/// stall every queue decision. Because the head stays unread, a shed
/// request's trace record carries the seq-derived ID, never a
/// client-supplied one — clients correlate sheds by count, not by ID.
fn shed(state: &ServeState, conn: Conn) {
    state.counters.shed.inc();
    state.counters.shed_queue_full.inc();
    let Conn {
        mut stream,
        accepted,
        seq,
    } = conn;
    let ctx = TraceContext::new(seq, None);
    let body = format!(
        "{{\"error\":\"shed: request queue full\",\"queued\":{},\"trace_id\":{}}}\n",
        state.queued.load(Ordering::SeqCst),
        json_string(&ctx.id)
    );
    let write_start = accepted.elapsed_us();
    let write_ok = write_response_with_headers(
        &mut stream,
        503,
        JSON,
        &[("X-Ppm-Trace", ctx.id.as_str())],
        &body,
    )
    .is_ok();
    let total_us = accepted.elapsed_us();
    if let Some(ring) = &state.trace {
        ring.offer(TraceRecord {
            id: ctx.id,
            seq,
            route: "(shed)".to_string(),
            outcome: TraceOutcome::Shed,
            status: if write_ok { 503 } else { 0 },
            detail: "request queue full".to_string(),
            worker: None,
            total_us,
            spans: vec![
                SpanRec {
                    name: "accept",
                    start_us: 0,
                    dur_us: 0,
                },
                SpanRec {
                    name: "write",
                    start_us: write_start,
                    dur_us: total_us.saturating_sub(write_start),
                },
            ],
            unix_ms: unix_now_ms(),
        });
    }
    state.slo.observe(unix_now_sec(), false, total_us);
}

/// Records a client-side failure: counter plus a `Warn` event. Client
/// misbehaviour must cost at most its own request.
fn client_error(state: &ServeState, op: &str, detail: &str) {
    state.counters.client_errors.inc();
    ppm_telemetry::event!(
        Level::Warn,
        "serve.client_error",
        "op" => op,
        "detail" => detail,
    );
}

/// Records a finished request into the trace ring and — for the
/// prediction surface — the SLO tracker.
#[allow(clippy::too_many_arguments)]
fn finish_request(
    state: &ServeState,
    ctx: TraceContext,
    route: &str,
    outcome: TraceOutcome,
    status: u16,
    detail: String,
    worker: usize,
    spans: Vec<SpanRec>,
    total_us: u64,
) {
    if route == "/predict" {
        // Availability budget: a 200 (full-fidelity or degraded) is an
        // answer; sheds, deadline misses, and 5xx spend budget. Client
        // errors (4xx) spend nothing — the request was never servable.
        if status == 200 || status >= 500 {
            state.slo.observe(unix_now_sec(), status == 200, total_us);
        }
        if status == 200 {
            // Exemplar hook: the latency histogram remembers the trace
            // ID of the worst request this scrape window.
            state.counters.latency_us.record_tagged(total_us, &ctx.id);
        }
    }
    if let Some(ring) = &state.trace {
        ring.offer(TraceRecord {
            id: ctx.id,
            seq: ctx.seq,
            route: route.to_string(),
            outcome,
            status,
            detail,
            worker: Some(worker),
            total_us,
            spans,
            unix_ms: unix_now_ms(),
        });
    }
}

fn handle_connection(state: &Arc<ServeState>, conn: Conn, worker: usize) {
    let Conn {
        mut stream,
        accepted,
        seq,
    } = conn;
    let picked_up_us = accepted.elapsed_us();
    let head = match read_request_head(&mut stream, MAX_HEAD) {
        Ok(head) => head,
        Err(detail) => {
            client_error(state, "read", &detail);
            let _ = write_response(&mut stream, 400, TEXT, "bad request\n");
            finish_request(
                state,
                TraceContext::new(seq, None),
                "(unreadable)",
                TraceOutcome::Ok,
                400,
                detail,
                worker,
                vec![SpanRec {
                    name: "queue_wait",
                    start_us: 0,
                    dur_us: picked_up_us,
                }],
                accepted.elapsed_us(),
            );
            return;
        }
    };
    let ctx = TraceContext::new(seq, head.header("x-ppm-trace"));
    let mut parts = head.line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let (route, pairs) = split_query(target);
    let eval_start_us = accepted.elapsed_us();
    let (status, content_type, body, outcome, detail) = match (method, route) {
        ("GET", "/predict") => predict(state, &accepted, &pairs, seq, &ctx.id),
        ("GET", "/healthz") => plain(200, TEXT, "ok\n".to_string()),
        ("GET", "/readyz") => {
            let (status, ct, body) = readyz(state);
            plain(status, ct, body)
        }
        ("GET", "/metrics") => {
            state.slo.publish_gauges(unix_now_sec());
            let text = ppm_live::render_prometheus(&ppm_telemetry::snapshot());
            // The scrape closes this exemplar window: the next one
            // tracks the worst request *since this scrape*.
            let _ = state.counters.latency_us.take_exemplar();
            plain(200, "text/plain; version=0.0.4", text)
        }
        ("GET", "/statusz") => plain(200, JSON, statusz(state)),
        ("GET", "/tracez") => tracez(state, &pairs),
        ("GET", "/") => plain(
            200,
            TEXT,
            "ppm serve: GET /predict /healthz /readyz /metrics /statusz /tracez; \
             POST /reloadz /quitz\n"
                .to_string(),
        ),
        ("POST", "/reloadz") => {
            let (status, ct, body) = reloadz(state);
            plain(status, ct, body)
        }
        ("POST", "/quitz") => {
            let write_start = accepted.elapsed_us();
            let _ = write_response_with_headers(
                &mut stream,
                200,
                TEXT,
                &[("X-Ppm-Trace", ctx.id.as_str())],
                "stopping\n",
            );
            drop(stream);
            finish_request(
                state,
                ctx,
                route,
                TraceOutcome::Ok,
                200,
                String::new(),
                worker,
                request_spans(picked_up_us, eval_start_us, write_start, write_start),
                accepted.elapsed_us(),
            );
            state.stop.store(true, Ordering::Release);
            // Wake the blocking accept so it observes the stop flag.
            let _ = TcpStream::connect_timeout(&state.addr, IO_TIMEOUT);
            return;
        }
        (_, "/predict" | "/healthz" | "/readyz" | "/metrics" | "/statusz" | "/tracez" | "/") => {
            plain(
                405,
                TEXT,
                format!("method {method} not allowed on {route}\n"),
            )
        }
        (_, "/reloadz" | "/quitz") => {
            plain(405, TEXT, format!("{route} is POST-only (got {method})\n"))
        }
        _ => plain(404, TEXT, format!("no route {route}\n")),
    };
    let write_start_us = accepted.elapsed_us();
    if let Err(detail) = write_response_with_headers(
        &mut stream,
        status,
        content_type,
        &[("X-Ppm-Trace", ctx.id.as_str())],
        &body,
    ) {
        client_error(state, "write", &detail);
    }
    let total_us = accepted.elapsed_us();
    finish_request(
        state,
        ctx,
        route,
        outcome,
        status,
        detail,
        worker,
        request_spans(picked_up_us, eval_start_us, write_start_us, total_us),
        total_us,
    );
}

/// The standard four-step request timeline, as offsets from accept.
fn request_spans(
    picked_up_us: u64,
    eval_start_us: u64,
    write_start_us: u64,
    total_us: u64,
) -> Vec<SpanRec> {
    vec![
        SpanRec {
            name: "accept",
            start_us: 0,
            dur_us: 0,
        },
        SpanRec {
            name: "queue_wait",
            start_us: 0,
            dur_us: picked_up_us,
        },
        SpanRec {
            name: "eval",
            start_us: eval_start_us,
            dur_us: write_start_us.saturating_sub(eval_start_us),
        },
        SpanRec {
            name: "write",
            start_us: write_start_us,
            dur_us: total_us.saturating_sub(write_start_us),
        },
    ]
}

/// Wraps a non-prediction response in the uniform (status, content
/// type, body, outcome, detail) shape the trace layer consumes.
fn plain(
    status: u16,
    content_type: &'static str,
    body: String,
) -> (u16, &'static str, String, TraceOutcome, String) {
    (status, content_type, body, TraceOutcome::Ok, String::new())
}

/// `GET /tracez`: the tail-sampled request feed. Query surface:
/// `?outcome=shed|deadline_expired|degraded|panic_contained|ok`,
/// `min_ms=`/`min_us=`, `id_prefix=`, `since_seq=`, `limit=`, and
/// `format=chrome` for a Perfetto-loadable export of the (filtered)
/// records.
fn tracez(
    state: &ServeState,
    pairs: &[(&str, &str)],
) -> (u16, &'static str, String, TraceOutcome, String) {
    let Some(ring) = &state.trace else {
        return plain(200, JSON, render_tracez_disabled());
    };
    let mut filter = TraceFilter::default();
    let mut chrome = false;
    for (key, value) in pairs {
        match *key {
            "outcome" => match TraceOutcome::parse(value) {
                Some(o) => filter.outcome = Some(o),
                None => {
                    let (s, ct, b) = bad_request(&format!("unknown outcome {value:?}"));
                    return (s, ct, b, TraceOutcome::Ok, String::new());
                }
            },
            "min_ms" => match value.parse::<u64>() {
                Ok(ms) => filter.min_us = Some(ms.saturating_mul(1000)),
                Err(_) => {
                    let (s, ct, b) =
                        bad_request(&format!("min_ms wants an integer, got {value:?}"));
                    return (s, ct, b, TraceOutcome::Ok, String::new());
                }
            },
            "min_us" => match value.parse::<u64>() {
                Ok(us) => filter.min_us = Some(us),
                Err(_) => {
                    let (s, ct, b) =
                        bad_request(&format!("min_us wants an integer, got {value:?}"));
                    return (s, ct, b, TraceOutcome::Ok, String::new());
                }
            },
            "id_prefix" => filter.id_prefix = Some((*value).to_string()),
            "since_seq" => match value.parse::<u64>() {
                Ok(seq) => filter.since_seq = Some(seq),
                Err(_) => {
                    let (s, ct, b) =
                        bad_request(&format!("since_seq wants an integer, got {value:?}"));
                    return (s, ct, b, TraceOutcome::Ok, String::new());
                }
            },
            "limit" => match value.parse::<usize>() {
                Ok(n) => filter.limit = Some(n),
                Err(_) => {
                    let (s, ct, b) = bad_request(&format!("limit wants an integer, got {value:?}"));
                    return (s, ct, b, TraceOutcome::Ok, String::new());
                }
            },
            "format" => match *value {
                "chrome" => chrome = true,
                "json" => chrome = false,
                other => {
                    let (s, ct, b) =
                        bad_request(&format!("format wants json or chrome, got {other:?}"));
                    return (s, ct, b, TraceOutcome::Ok, String::new());
                }
            },
            other => {
                let (s, ct, b) = bad_request(&format!("unknown parameter {other:?}"));
                return (s, ct, b, TraceOutcome::Ok, String::new());
            }
        }
    }
    if chrome {
        plain(200, JSON, chrome_export(&ring.snapshot(&filter)))
    } else {
        plain(200, JSON, ring.render_tracez(&filter))
    }
}

/// Renders trace records through the `ppm-obs` Chrome-trace writer:
/// one lane (tid) per request, the request's trace ID as the top-level
/// slice, span steps nested under it — drop the JSON into Perfetto and
/// a single bad request becomes a picture.
fn chrome_export(records: &[TraceRecord]) -> String {
    let recorder = ppm_obs::FlightRecorder::new();
    let mut sink = recorder.sink();
    for (lane, rec) in records.iter().enumerate() {
        let tid = lane as u64;
        let label = format!("{} [{}]", rec.id, rec.outcome.as_str());
        sink.record(&Record::Span {
            name: label.clone(),
            us: rec.total_us.max(1),
            start_us: 0,
            tid,
            cpu_us: None,
            depth: 0,
            parent: None,
        });
        for span in &rec.spans {
            sink.record(&Record::Span {
                name: span.name.to_string(),
                us: span.dur_us.max(1),
                start_us: span.start_us,
                tid,
                cpu_us: None,
                depth: 1,
                parent: Some(label.clone()),
            });
        }
    }
    recorder.chrome_trace_json()
}

/// Why a model evaluation did not produce a usable prediction.
enum EvalFailure {
    Panicked,
    NonFinite(f64),
    WrongDim { model: usize, space: usize },
}

impl std::fmt::Display for EvalFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalFailure::Panicked => write!(f, "evaluation panicked"),
            EvalFailure::NonFinite(v) => write!(f, "prediction was {v}"),
            EvalFailure::WrongDim { model, space } => {
                write!(
                    f,
                    "model dimension {model} does not match the space ({space})"
                )
            }
        }
    }
}

/// Runs the real RBF prediction, routing any chaos fault scheduled for
/// this sequence number through the same failure paths a genuinely
/// broken model would take.
fn evaluate_real(
    state: &ServeState,
    model: &ServingModel,
    config: &SimConfig,
    seq: u64,
) -> Result<f64, EvalFailure> {
    let network = match model.network.as_ref() {
        Some(network) => network,
        None => return Err(EvalFailure::WrongDim { model: 0, space: 0 }),
    };
    let unit = unit_point(state, config);
    if network.dim() != unit.len() {
        return Err(EvalFailure::WrongDim {
            model: network.dim(),
            space: unit.len(),
        });
    }
    let fault = state
        .fault
        .as_ref()
        .and_then(|plan| plan.fault_at_index(seq));
    if fault == Some(InjectedFault::Slow) {
        // A slow evaluation, not a broken one: the post-evaluation
        // deadline check decides whether the answer is still useful.
        if let Some(plan) = &state.fault {
            std::thread::sleep(plan.slow_delay);
        }
    }
    let value = catch_unwind(AssertUnwindSafe(|| {
        if fault == Some(InjectedFault::Panic) {
            // Chaos mode deliberately exercises the worker's panic
            // containment. lint:allow(panic-path): injected fault
            panic!("chaos: injected evaluation panic");
        }
        match fault {
            Some(InjectedFault::Nan) => f64::NAN,
            Some(InjectedFault::Inf) => f64::INFINITY,
            _ => network.predict(&unit),
        }
    }))
    .map_err(|_| EvalFailure::Panicked)?;
    if !value.is_finite() {
        return Err(EvalFailure::NonFinite(value));
    }
    Ok(value)
}

/// The unit design point the RBF expects, in Table 1 parameter order.
fn unit_point(state: &ServeState, config: &SimConfig) -> Vec<f64> {
    let actual = vec![
        f64::from(config.pipe_depth),
        f64::from(config.rob_size),
        config.iq_frac,
        config.lsq_frac,
        f64::from(config.l2_size_kb),
        f64::from(config.l2_lat),
        f64::from(config.il1_size_kb),
        f64::from(config.dl1_size_kb),
        f64::from(config.dl1_lat),
    ];
    state.space.params().to_unit(&actual)
}

/// Builds a simulator configuration from query parameters, defaulting
/// every knob the request does not name.
fn config_from_pairs(pairs: &[(&str, &str)]) -> Result<SimConfig, String> {
    let default = SimConfig::default();
    let mut builder = SimConfig::builder()
        .pipe_depth(default.pipe_depth)
        .rob_size(default.rob_size)
        .iq_frac(default.iq_frac)
        .lsq_frac(default.lsq_frac)
        .l2_size_kb(default.l2_size_kb)
        .l2_lat(default.l2_lat)
        .il1_size_kb(default.il1_size_kb)
        .dl1_size_kb(default.dl1_size_kb)
        .dl1_lat(default.dl1_lat);
    fn int(key: &str, value: &str) -> Result<u32, String> {
        value
            .parse::<u32>()
            .map_err(|_| format!("{key} wants an integer, got {value:?}"))
    }
    fn frac(key: &str, value: &str) -> Result<f64, String> {
        value
            .parse::<f64>()
            .map_err(|_| format!("{key} wants a number, got {value:?}"))
    }
    for (key, value) in pairs {
        builder = match *key {
            "deadline_ms" => builder,
            "depth" => builder.pipe_depth(int(key, value)?),
            "rob" => builder.rob_size(int(key, value)?),
            "iq" => builder.iq_frac(frac(key, value)?),
            "lsq" => builder.lsq_frac(frac(key, value)?),
            "l2-kb" => builder.l2_size_kb(int(key, value)?),
            "l2-lat" => builder.l2_lat(int(key, value)?),
            "il1-kb" => builder.il1_size_kb(int(key, value)?),
            "dl1-kb" => builder.dl1_size_kb(int(key, value)?),
            "dl1-lat" => builder.dl1_lat(int(key, value)?),
            other => return Err(format!("unknown parameter {other:?}")),
        };
    }
    builder.build().map_err(|e| e.to_string())
}

fn bad_request(detail: &str) -> (u16, &'static str, String) {
    (
        400,
        JSON,
        format!("{{\"error\":{}}}\n", json_string(detail)),
    )
}

/// Why this prediction fell back to the analytical estimator — each
/// variant maps onto a labeled `serve.degraded|reason=...` series.
enum DegradeCause {
    NoModel,
    QueueDepth(usize),
    FailStreak,
    Eval(EvalFailure),
}

impl DegradeCause {
    fn describe(&self, state: &ServeState) -> String {
        match self {
            DegradeCause::NoModel => "no model loaded (analytical-only)".to_string(),
            DegradeCause::QueueDepth(queued) => format!(
                "queue depth {queued} at degrade threshold {}",
                state.degrade_depth
            ),
            DegradeCause::FailStreak => format!(
                "model failing (streak {}); probing every {} requests",
                state.streak.load(Ordering::Relaxed),
                state.probe_every
            ),
            DegradeCause::Eval(failure) => failure.to_string(),
        }
    }

    fn count(&self, state: &ServeState) {
        match self {
            DegradeCause::NoModel => state.counters.degraded_no_model.inc(),
            DegradeCause::QueueDepth(_) => state.counters.degraded_depth.inc(),
            DegradeCause::FailStreak => state.counters.degraded_fail_streak.inc(),
            DegradeCause::Eval(_) => state.counters.degraded_eval_failure.inc(),
        }
    }

    fn outcome(&self) -> TraceOutcome {
        match self {
            DegradeCause::Eval(EvalFailure::Panicked) => TraceOutcome::PanicContained,
            _ => TraceOutcome::Degraded,
        }
    }
}

fn deadline_exceeded(
    state: &ServeState,
    accepted: &Stopwatch,
    phase: &str,
    budget_ms: u128,
    trace_id: &str,
) -> (u16, &'static str, String, TraceOutcome, String) {
    state.counters.deadline_exceeded.inc();
    state.counters.shed_deadline.inc();
    let detail = format!("deadline exceeded {phase}");
    (
        503,
        JSON,
        format!(
            "{{\"error\":{},\"deadline_ms\":{budget_ms},\"elapsed_ms\":{},\"trace_id\":{}}}\n",
            json_string(&detail),
            accepted.elapsed_ms(),
            json_string(trace_id)
        ),
        TraceOutcome::DeadlineExpired,
        detail,
    )
}

fn predict(
    state: &ServeState,
    accepted: &Stopwatch,
    pairs: &[(&str, &str)],
    seq: u64,
    trace_id: &str,
) -> (u16, &'static str, String, TraceOutcome, String) {
    let mut budget = state.default_deadline;
    for (key, value) in pairs {
        if *key == "deadline_ms" {
            match value.parse::<u64>() {
                Ok(ms) if ms > 0 => {
                    budget = Duration::from_millis(ms).min(state.max_deadline);
                }
                _ => {
                    let (s, ct, b) = bad_request(&format!(
                        "deadline_ms wants a positive integer, got {value:?}"
                    ));
                    return (s, ct, b, TraceOutcome::Ok, String::new());
                }
            }
        }
    }
    let deadline = accepted.deadline_after(budget);
    let budget_ms = budget.as_millis();
    if deadline.expired() {
        return deadline_exceeded(state, accepted, "while queued", budget_ms, trace_id);
    }
    let config = match config_from_pairs(pairs) {
        Ok(config) => config,
        Err(detail) => {
            let (s, ct, b) = bad_request(&detail);
            return (s, ct, b, TraceOutcome::Ok, detail);
        }
    };
    let model = state.store.active();
    // The analytical answer is a closed-form formula — cheap enough to
    // compute unconditionally, so the degraded path has zero extra
    // latency exactly when the service is under the most pressure.
    let analytical = match model.fallback.try_predict(&config) {
        Ok(value) if value.is_finite() => value,
        Ok(value) => {
            let detail = format!("analytical estimate was {value}");
            return (
                500,
                JSON,
                format!("{{\"error\":{}}}\n", json_string(&detail)),
                TraceOutcome::Ok,
                detail,
            );
        }
        Err(e) => {
            let detail = e.to_string();
            let (s, ct, b) = bad_request(&detail);
            return (s, ct, b, TraceOutcome::Ok, detail);
        }
    };
    let queued = state.queued.load(Ordering::SeqCst);
    let mut cause: Option<DegradeCause> = None;
    if model.network.is_none() {
        cause = Some(DegradeCause::NoModel);
    } else if queued >= state.degrade_depth {
        cause = Some(DegradeCause::QueueDepth(queued));
    } else if state.sticky.load(Ordering::Acquire)
        && !state
            .probe_tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(state.probe_every)
    {
        cause = Some(DegradeCause::FailStreak);
    }
    let prediction = if cause.is_some() {
        analytical
    } else {
        match evaluate_real(state, &model, &config, seq) {
            Ok(value) => {
                state.streak.store(0, Ordering::Relaxed);
                if state.sticky.swap(false, Ordering::AcqRel) {
                    ppm_telemetry::event!(
                        Level::Info,
                        "serve.recovered",
                        "model_version" => model.version.clone(),
                    );
                }
                value
            }
            Err(failure) => {
                state.counters.model_failures.inc();
                let streak = state.streak.fetch_add(1, Ordering::SeqCst) + 1;
                if streak >= state.fail_streak && !state.sticky.swap(true, Ordering::AcqRel) {
                    ppm_telemetry::event!(
                        Level::Warn,
                        "serve.degraded_sticky",
                        "streak" => u64::from(streak),
                        "detail" => failure.to_string(),
                    );
                }
                cause = Some(DegradeCause::Eval(failure));
                analytical
            }
        }
    };
    if deadline.expired() {
        return deadline_exceeded(state, accepted, "during evaluation", budget_ms, trace_id);
    }
    let degraded = cause.is_some();
    let (outcome, degraded_reason) = match &cause {
        Some(cause) => {
            state.counters.degraded.inc();
            cause.count(state);
            (cause.outcome(), Some(cause.describe(state)))
        }
        None => (TraceOutcome::Ok, None),
    };
    state.counters.ok.inc();
    let reason_json = match &degraded_reason {
        Some(reason) => json_string(reason),
        None => "null".to_string(),
    };
    (
        200,
        JSON,
        format!(
            "{{\"schema\":\"ppm-serve v1\",\"benchmark\":{},\"metric\":{},\"prediction\":{prediction},\
             \"degraded\":{degraded},\"degraded_reason\":{reason_json},\"model_version\":{},\
             \"deadline_ms\":{budget_ms},\"elapsed_ms\":{},\"trace_id\":{}}}\n",
            json_string(&model.benchmark.to_string()),
            json_string(&model.metric),
            json_string(&model.version),
            accepted.elapsed_ms(),
            json_string(trace_id)
        ),
        outcome,
        degraded_reason.unwrap_or_default(),
    )
}

/// Readiness is stricter than liveness: the process can be alive
/// (`/healthz`) while unable to give full-fidelity answers.
fn readyz(state: &ServeState) -> (u16, &'static str, String) {
    let model = state.store.active();
    let queued = state.queued.load(Ordering::SeqCst);
    let sticky = state.sticky.load(Ordering::Acquire);
    let ready = model.network.is_some() && !sticky && queued < state.degrade_depth;
    let body = format!(
        "{{\"ready\":{ready},\"model_version\":{},\"sticky_degraded\":{sticky},\"queued\":{queued},\"degrade_depth\":{}}}\n",
        json_string(&model.version),
        state.degrade_depth
    );
    (if ready { 200 } else { 503 }, JSON, body)
}

fn statusz(state: &ServeState) -> String {
    let model = state.store.active();
    let trace_json = match &state.trace {
        Some(ring) => format!(
            "{{\"enabled\":true,\"retained\":{},\"capacity\":{}}}",
            ring.retained_len(),
            ring.capacity()
        ),
        None => "{\"enabled\":false,\"retained\":0,\"capacity\":0}".to_string(),
    };
    format!(
        "{{\"schema\":\"ppm-statusz v1\",\"model_version\":{},\"benchmark\":{},\"metric\":{},\
         \"workers\":{},\"queue_capacity\":{},\"queued\":{},\"degrade_depth\":{},\
         \"sticky_degraded\":{},\"fail_streak\":{},\"chaos\":{},\
         \"requests\":{},\"ok\":{},\"shed\":{},\"degraded\":{},\"deadline_exceeded\":{},\
         \"model_failures\":{},\"reloads\":{},\"reload_failures\":{},\
         \"shed_by_reason\":{{\"queue_full\":{},\"deadline\":{}}},\
         \"degraded_by_reason\":{{\"no_model\":{},\"degrade_depth\":{},\"fail_streak\":{},\"eval_failure\":{}}},\
         \"trace\":{},\"slo\":{}}}\n",
        json_string(&model.version),
        json_string(&model.benchmark.to_string()),
        json_string(&model.metric),
        state.workers,
        state.queue_capacity,
        state.queued.load(Ordering::SeqCst),
        state.degrade_depth,
        state.sticky.load(Ordering::Acquire),
        state.streak.load(Ordering::Relaxed),
        state.fault.is_some(),
        state.counters.requests.get(),
        state.counters.ok.get(),
        state.counters.shed.get(),
        state.counters.degraded.get(),
        state.counters.deadline_exceeded.get(),
        state.counters.model_failures.get(),
        state.counters.reloads.get(),
        state.counters.reload_failures.get(),
        state.counters.shed_queue_full.get(),
        state.counters.shed_deadline.get(),
        state.counters.degraded_no_model.get(),
        state.counters.degraded_depth.get(),
        state.counters.degraded_fail_streak.get(),
        state.counters.degraded_eval_failure.get(),
        trace_json,
        state.slo.to_json(unix_now_sec()),
    )
}

fn reloadz(state: &ServeState) -> (u16, &'static str, String) {
    match state.store.reload() {
        Ok(outcome) => {
            state.counters.reloads.inc();
            if outcome.changed {
                // A new model starts with a clean failure record.
                state.streak.store(0, Ordering::Relaxed);
                state.sticky.store(false, Ordering::Release);
            }
            (
                200,
                JSON,
                format!(
                    "{{\"version\":{},\"changed\":{}}}\n",
                    json_string(&outcome.version),
                    outcome.changed
                ),
            )
        }
        Err(e) => {
            state.counters.reload_failures.inc();
            ppm_telemetry::event!(
                Level::Error,
                "serve.reload_failed",
                "detail" => e.to_string(),
            );
            // 409: the request conflicted with the validation gate; the
            // previous model keeps serving (rollback by not swapping).
            (
                409,
                JSON,
                format!(
                    "{{\"error\":{},\"version\":{}}}\n",
                    json_string(&e.to_string()),
                    json_string(&state.store.active().version)
                ),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_live::{http_get, http_post};
    use ppm_obs::Json;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppm-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn analytical_config(tag: &str) -> ServeConfig {
        ServeConfig {
            registry: scratch(tag).join("registry"),
            fallback_benchmark: Some(Benchmark::Ammp),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serves_predictions_health_and_status_analytically() {
        let server = ServeServer::start(analytical_config("basic")).unwrap();
        let addr = server.addr().to_string();
        let (status, body) = http_get(&addr, "/predict?rob=96", IO_TIMEOUT).unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("ppm-serve v1")
        );
        assert_eq!(doc.get("degraded").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("model_version").and_then(Json::as_str),
            Some("analytical")
        );
        let p = doc.get("prediction").and_then(Json::as_f64).unwrap();
        assert!(p.is_finite() && p > 0.0);

        let (status, _) = http_get(&addr, "/healthz", IO_TIMEOUT).unwrap();
        assert_eq!(status, 200);
        // Not ready: no real model is loaded.
        let (status, body) = http_get(&addr, "/readyz", IO_TIMEOUT).unwrap();
        assert_eq!(status, 503, "{body}");
        let (status, body) = http_get(&addr, "/statusz", IO_TIMEOUT).unwrap();
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("ppm-statusz v1")
        );
        let (status, body) = http_get(&addr, "/metrics", IO_TIMEOUT).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("ppm_serve_requests"), "{body}");
    }

    #[test]
    fn rejects_bad_parameters_and_unknown_routes() {
        let server = ServeServer::start(analytical_config("params")).unwrap();
        let addr = server.addr().to_string();
        let (status, body) = http_get(&addr, "/predict?rob=banana", IO_TIMEOUT).unwrap();
        assert_eq!(status, 400, "{body}");
        let (status, body) = http_get(&addr, "/predict?warp=9", IO_TIMEOUT).unwrap();
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("warp"));
        let (status, _) = http_get(&addr, "/predict?deadline_ms=0", IO_TIMEOUT).unwrap();
        assert_eq!(status, 400);
        // Out-of-range configs are 400s from the builder's validation.
        let (status, body) = http_get(&addr, "/predict?rob=7", IO_TIMEOUT).unwrap();
        assert_eq!(status, 400, "{body}");
        let (status, _) = http_get(&addr, "/nope", IO_TIMEOUT).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_get(&addr, "/reloadz", IO_TIMEOUT).unwrap();
        assert_eq!(status, 405, "reloadz is POST-only");
    }

    #[test]
    fn quitz_stops_the_server_and_wait_returns() {
        let server = ServeServer::start(analytical_config("quitz")).unwrap();
        let addr = server.addr().to_string();
        let (status, _) = http_post(&addr, "/quitz", IO_TIMEOUT).unwrap();
        assert_eq!(status, 200);
        server.wait();
    }

    #[test]
    fn reload_of_an_empty_registry_is_a_conflict_not_a_crash() {
        let server = ServeServer::start(analytical_config("reload")).unwrap();
        let addr = server.addr().to_string();
        let before = ppm_telemetry::registry()
            .counter("serve.reload_failures")
            .get();
        let (status, body) = http_post(&addr, "/reloadz", IO_TIMEOUT).unwrap();
        assert_eq!(status, 409, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("version").and_then(Json::as_str),
            Some("analytical"),
            "rollback keeps the active version"
        );
        let after = ppm_telemetry::registry()
            .counter("serve.reload_failures")
            .get();
        assert!(after > before);
        // Predictions still work after the failed reload.
        let (status, _) = http_get(&addr, "/predict", IO_TIMEOUT).unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn degrade_depth_zero_degrades_every_prediction() {
        let config = ServeConfig {
            degrade_depth: 0,
            ..analytical_config("always-degraded")
        };
        let server = ServeServer::start(config).unwrap();
        let addr = server.addr().to_string();
        for _ in 0..3 {
            let (status, body) = http_get(&addr, "/predict", IO_TIMEOUT).unwrap();
            assert_eq!(status, 200);
            let doc = Json::parse(&body).unwrap();
            assert_eq!(doc.get("degraded").and_then(Json::as_bool), Some(true));
        }
    }
}
