//! The model registry: content-addressed model files, an atomically
//! swappable active model, and validated hot reload with rollback.
//!
//! # Registry layout
//!
//! ```text
//! <registry>/
//!   CURRENT            one line: the version that should be serving
//!   <version>.model    a `ppm-rbf-model v1` file; <version> is the
//!                      FNV-1a content hash of its bytes (ppm-obs)
//! ```
//!
//! [`publish`] is the only writer: it hashes the file, copies it in
//! under its hash, and atomically points `CURRENT` at it. Because the
//! name *is* the content hash, a half-written or tampered model file is
//! detectable on load, and two publishes of the same bytes are
//! idempotent.
//!
//! [`ModelStore::reload`] re-reads `CURRENT`, loads and *validates* the
//! candidate (format checksum, a finite probe prediction, a usable
//! analytical fallback), and only then swaps it in behind an `RwLock`.
//! A candidate that fails any step leaves the previous model serving —
//! rollback is the absence of a swap, so there is no window in which
//! requests can observe a broken model.

use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

use ppm_core::persist;
use ppm_firstorder::{FirstOrderModel, ProgramStats};
use ppm_rbf::RbfNetwork;
use ppm_sim::SimConfig;
use ppm_telemetry::Level;
use ppm_workload::{Benchmark, TraceGenerator};

use crate::ServeError;

/// The pointer file naming the version that should serve.
pub const CURRENT_FILE: &str = "CURRENT";

/// A validated, immutable model the workers serve from. Swapped
/// atomically as an `Arc`, so in-flight requests keep the model they
/// started with.
#[derive(Debug)]
pub struct ServingModel {
    /// The RBF surrogate; `None` when the store runs analytical-only
    /// (no loadable model in the registry, `--benchmark` fallback).
    pub network: Option<RbfNetwork>,
    /// Content-hash version (or `"analytical"` without a network).
    pub version: String,
    /// The benchmark the model was trained on.
    pub benchmark: Benchmark,
    /// The modeled metric, from the model's metadata (`cpi` unless the
    /// build said otherwise).
    pub metric: String,
    /// The first-order analytical estimator for the same workload — the
    /// degraded-mode prediction path.
    pub fallback: FirstOrderModel,
}

/// How a [`ModelStore::reload`] resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadOutcome {
    /// The now-active version.
    pub version: String,
    /// False when `CURRENT` already named the active version (no-op).
    pub changed: bool,
}

/// The registry-backed holder of the active [`ServingModel`].
#[derive(Debug)]
pub struct ModelStore {
    dir: PathBuf,
    active: RwLock<Arc<ServingModel>>,
}

/// Copies `model` into the registry under its content hash and points
/// `CURRENT` at it, creating the registry directory if needed. The file
/// must parse as a valid `ppm-rbf-model v1` — publishing garbage is
/// refused at the door rather than discovered by a reload. Returns the
/// version.
///
/// # Errors
///
/// [`ServeError::Store`] when the file is unreadable, unparseable, or
/// the registry cannot be written.
pub fn publish(registry: &Path, model: &Path) -> Result<String, ServeError> {
    let bytes = std::fs::read(model)
        .map_err(|e| ServeError::Store(format!("cannot read model {}: {e}", model.display())))?;
    let text = String::from_utf8_lossy(&bytes);
    persist::from_str(&text)
        .map_err(|e| ServeError::Store(format!("refusing to publish {}: {e}", model.display())))?;
    let version = ppm_obs::ledger::fnv1a64_hex(&bytes);
    std::fs::create_dir_all(registry).map_err(|e| {
        ServeError::Store(format!(
            "cannot create registry {}: {e}",
            registry.display()
        ))
    })?;
    let target = registry.join(format!("{version}.model"));
    ppm_obs::write_atomic(&target, &bytes)
        .map_err(|e| ServeError::Store(format!("cannot write {}: {e}", target.display())))?;
    let current = registry.join(CURRENT_FILE);
    ppm_obs::write_atomic(&current, format!("{version}\n").as_bytes())
        .map_err(|e| ServeError::Store(format!("cannot write {}: {e}", current.display())))?;
    Ok(version)
}

/// Loads and fully validates the version named by `CURRENT`:
/// checksum-verified parse, content hash matching the file name, a
/// finite probe prediction at the space midpoint, and a working
/// analytical fallback derived from the model's own metadata.
fn load_current(dir: &Path) -> Result<ServingModel, ServeError> {
    let current = dir.join(CURRENT_FILE);
    let version = std::fs::read_to_string(&current)
        .map_err(|e| ServeError::Store(format!("cannot read {}: {e}", current.display())))?
        .trim()
        .to_string();
    if version.is_empty() {
        return Err(ServeError::Store(format!("{} is empty", current.display())));
    }
    let path = dir.join(format!("{version}.model"));
    let bytes = std::fs::read(&path)
        .map_err(|e| ServeError::Store(format!("cannot read {}: {e}", path.display())))?;
    let actual = ppm_obs::ledger::fnv1a64_hex(&bytes);
    if actual != version {
        return Err(ServeError::Store(format!(
            "{}: content hash {actual} does not match its name (tampered or truncated)",
            path.display()
        )));
    }
    let saved = persist::from_str(&String::from_utf8_lossy(&bytes))
        .map_err(|e| ServeError::Store(format!("{}: {e}", path.display())))?;
    let benchmark = saved
        .meta_value("benchmark")
        .ok_or_else(|| {
            ServeError::Store(format!(
                "{}: no `benchmark` metadata (cannot build the degraded-mode fallback)",
                path.display()
            ))
        })?
        .parse::<Benchmark>()
        .map_err(|e| ServeError::Store(format!("{}: {e}", path.display())))?;
    let metric = saved.meta_value("metric").unwrap_or("cpi").to_string();
    let seed: u64 = saved
        .meta_value("seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let instructions: usize = saved
        .meta_value("instructions")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    // Probe: the model must answer finitely at the space midpoint, or
    // it has no business serving.
    let probe = saved.network.predict(&vec![0.5; saved.network.dim()]);
    if !probe.is_finite() {
        return Err(ServeError::Store(format!(
            "{}: probe prediction at the midpoint is {probe} (not finite)",
            path.display()
        )));
    }
    let fallback = build_fallback(benchmark, seed, instructions)?;
    Ok(ServingModel {
        network: Some(saved.network),
        version,
        benchmark,
        metric,
        fallback,
    })
}

/// Builds the analytical fallback: one cheap trace pass, validated with
/// a finite probe at the default configuration.
fn build_fallback(
    benchmark: Benchmark,
    seed: u64,
    instructions: usize,
) -> Result<FirstOrderModel, ServeError> {
    let stats = ProgramStats::collect(
        TraceGenerator::new(benchmark, seed).take(instructions.max(1000)),
        &SimConfig::default(),
    );
    let fallback = FirstOrderModel::new(stats);
    match fallback.try_predict(&SimConfig::default()) {
        Ok(v) if v.is_finite() => Ok(fallback),
        Ok(v) => Err(ServeError::Store(format!(
            "analytical fallback for {benchmark} probes to {v} (not finite)"
        ))),
        Err(e) => Err(ServeError::Store(format!(
            "analytical fallback for {benchmark} rejects the default config: {e}"
        ))),
    }
}

impl ModelStore {
    /// Opens the registry and loads the `CURRENT` model. When nothing
    /// loads and `fallback_benchmark` is given, the store starts
    /// analytical-only (version `"analytical"`): every prediction is
    /// degraded until a later reload brings a real model in.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when no model loads and no fallback
    /// benchmark was provided.
    pub fn open(dir: &Path, fallback_benchmark: Option<Benchmark>) -> Result<Self, ServeError> {
        let model = match load_current(dir) {
            Ok(model) => model,
            Err(e) => match fallback_benchmark {
                Some(benchmark) => {
                    ppm_telemetry::event!(
                        Level::Warn,
                        "serve.store.analytical_only",
                        "detail" => e.to_string(),
                    );
                    ServingModel {
                        network: None,
                        version: "analytical".to_string(),
                        benchmark,
                        metric: "cpi".to_string(),
                        fallback: build_fallback(benchmark, 1, 100_000)?,
                    }
                }
                None => return Err(e),
            },
        };
        Ok(ModelStore {
            dir: dir.to_path_buf(),
            active: RwLock::new(Arc::new(model)),
        })
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active model (cheap: one `Arc` clone under a read lock).
    pub fn active(&self) -> Arc<ServingModel> {
        Arc::clone(
            &self
                .active
                .read()
                .unwrap_or_else(|poison| poison.into_inner()),
        )
    }

    /// Re-reads `CURRENT` and swaps in the named model — but only after
    /// it passes the full validation gauntlet. On any failure the
    /// previous model keeps serving (versioned rollback by not
    /// swapping), and the error says why.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] describing the failed validation step; the
    /// active model is unchanged in that case.
    pub fn reload(&self) -> Result<ReloadOutcome, ServeError> {
        let candidate = load_current(&self.dir)?;
        let mut active = self
            .active
            .write()
            .unwrap_or_else(|poison| poison.into_inner());
        if candidate.version == active.version {
            return Ok(ReloadOutcome {
                version: candidate.version,
                changed: false,
            });
        }
        ppm_telemetry::event!(
            Level::Info,
            "serve.store.swapped",
            "from" => active.version.clone(),
            "to" => candidate.version.clone(),
        );
        let version = candidate.version.clone();
        *active = Arc::new(candidate);
        Ok(ReloadOutcome {
            version,
            changed: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppm-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A tiny but genuine model file, exercised through the real
    /// persist format.
    fn write_model(dir: &Path, name: &str, seed: u64) -> PathBuf {
        use ppm_core::builder::{BuildConfig, RbfModelBuilder};
        use ppm_core::response::SimulatorResponse;
        use ppm_core::space::DesignSpace;
        let space = DesignSpace::paper_table1();
        let response = SimulatorResponse::new(Benchmark::Ammp, 5_000).with_seed(seed);
        let built = RbfModelBuilder::new(
            space,
            BuildConfig::default()
                .with_sample_size(12)
                .with_seed(seed)
                .with_train_threads(2)
                .with_lhs_candidates(8),
        )
        .build(&response)
        .unwrap();
        let meta = vec![
            ("benchmark".to_string(), "ammp".to_string()),
            ("metric".to_string(), "cpi".to_string()),
            ("seed".to_string(), seed.to_string()),
            ("instructions".to_string(), "5000".to_string()),
        ];
        let path = dir.join(name);
        persist::save(&built.model.network, &meta, &path).unwrap();
        path
    }

    #[test]
    fn publish_open_reload_round_trip_with_corrupt_rollback() {
        let dir = scratch("roundtrip");
        let registry = dir.join("registry");
        let m1 = write_model(&dir, "m1.txt", 3);

        // Publish is content-addressed and refuses garbage.
        let junk = dir.join("junk.txt");
        std::fs::write(&junk, "not a model\n").unwrap();
        assert!(publish(&registry, &junk).is_err());
        let v1 = publish(&registry, &m1).unwrap();
        assert!(registry.join(format!("{v1}.model")).is_file());

        let store = ModelStore::open(&registry, None).unwrap();
        assert_eq!(store.active().version, v1);
        assert_eq!(store.active().benchmark, Benchmark::Ammp);
        assert!(store.active().network.is_some());

        // Reload with an unchanged CURRENT is a no-op.
        let outcome = store.reload().unwrap();
        assert_eq!(
            outcome,
            ReloadOutcome {
                version: v1.clone(),
                changed: false
            }
        );

        // A corrupt candidate (name does not match content) rolls back:
        // the active model is untouched and predictions keep working.
        std::fs::write(registry.join("deadbeefdeadbeef.model"), "garbage").unwrap();
        std::fs::write(registry.join(CURRENT_FILE), "deadbeefdeadbeef\n").unwrap();
        let err = store.reload().unwrap_err();
        assert!(err.to_string().contains("deadbeef"), "{err}");
        let active = store.active();
        assert_eq!(active.version, v1);
        let network = active.network.as_ref().unwrap();
        let probe = network.predict(&vec![0.5; network.dim()]);
        assert!(probe.is_finite());

        // A valid second model swaps in.
        let m2 = write_model(&dir, "m2.txt", 4);
        let v2 = publish(&registry, &m2).unwrap();
        assert_ne!(v1, v2, "different seeds should hash differently");
        let outcome = store.reload().unwrap();
        assert_eq!(
            outcome,
            ReloadOutcome {
                version: v2.clone(),
                changed: true
            }
        );
        assert_eq!(store.active().version, v2);
    }

    #[test]
    fn analytical_only_startup_requires_a_benchmark() {
        let dir = scratch("analytical");
        let registry = dir.join("empty-registry");
        std::fs::create_dir_all(&registry).unwrap();
        // No CURRENT, no fallback: refused.
        assert!(ModelStore::open(&registry, None).is_err());
        // With a fallback benchmark the store serves analytically.
        let store = ModelStore::open(&registry, Some(Benchmark::Mcf)).unwrap();
        let active = store.active();
        assert_eq!(active.version, "analytical");
        assert!(active.network.is_none());
        let cpi = active.fallback.try_predict(&SimConfig::default()).unwrap();
        assert!(cpi.is_finite() && cpi > 0.0);
    }

    #[test]
    fn truncated_model_file_is_rejected_by_hash_then_checksum() {
        let dir = scratch("truncated");
        let registry = dir.join("registry");
        let m1 = write_model(&dir, "m1.txt", 5);
        let v1 = publish(&registry, &m1).unwrap();
        // Truncate the registry copy in place: the content hash no
        // longer matches the file name.
        let target = registry.join(format!("{v1}.model"));
        let bytes = std::fs::read(&target).unwrap();
        std::fs::write(&target, &bytes[..bytes.len() / 2]).unwrap();
        let err = ModelStore::open(&registry, None).unwrap_err();
        assert!(err.to_string().contains("content hash"), "{err}");
    }
}
