//! `ppm tail`: a live terminal view of the serving plane's trace feed.
//!
//! Polls `GET /tracez?since_seq=<cursor>` and tabulates whatever the
//! tail sampler retained — errors, sheds, degraded answers, the
//! slowest requests, and a sampled slice of normal traffic. The cursor
//! advances past the highest sequence number seen, so each poll only
//! surfaces new records and a quiet service costs one small request
//! per interval. All output flows through the caller's `emit` closure
//! (this crate never prints); the CLI decides where lines go.

use std::time::Duration;

use ppm_live::http_get;
use ppm_obs::Json;

use crate::ServeError;

/// How `ppm tail` watches a serving plane.
#[derive(Debug, Clone)]
pub struct TailConfig {
    /// `host:port` of the `ppm serve` instance.
    pub addr: String,
    /// Delay between polls.
    pub interval: Duration,
    /// Render one poll (the current ring contents) and return.
    pub once: bool,
    /// Most-recent records to request per poll.
    pub limit: usize,
    /// Only show records with this outcome (wire name, e.g. `shed`).
    pub outcome: Option<String>,
    /// Only show records at least this slow (milliseconds).
    pub min_ms: Option<u64>,
}

impl Default for TailConfig {
    fn default() -> Self {
        TailConfig {
            addr: String::new(),
            interval: Duration::from_millis(1000),
            once: false,
            limit: 64,
            outcome: None,
            min_ms: None,
        }
    }
}

const POLL_TIMEOUT: Duration = Duration::from_secs(5);

/// The column header `ppm tail` prints before its first record line.
pub fn tail_header() -> String {
    format!(
        "{:>8}  {:<20} {:<18} {:>4} {:>9} {:>6}  detail",
        "seq", "trace_id", "outcome", "code", "total_ms", "worker"
    )
}

/// Formats one retained trace record as a table row, or `None` when
/// the JSON value is not a record object.
fn format_record(rec: &Json) -> Option<(u64, String)> {
    let seq = rec
        .get("seq")
        .and_then(Json::as_i64)
        .map(|v| v.max(0) as u64)?;
    let id = rec.get("id").and_then(Json::as_str).unwrap_or("?");
    let outcome = rec.get("outcome").and_then(Json::as_str).unwrap_or("?");
    let status = rec.get("status").and_then(Json::as_i64).unwrap_or(0);
    let total_us = rec
        .get("total_us")
        .and_then(Json::as_i64)
        .map(|v| v.max(0) as u64)
        .unwrap_or(0);
    let worker = match rec.get("worker").and_then(Json::as_i64) {
        Some(w) => format!("{w}"),
        None => "-".to_string(),
    };
    let detail = rec.get("detail").and_then(Json::as_str).unwrap_or("");
    let mut id_col = id.to_string();
    if id_col.len() > 20 {
        id_col.truncate(19);
        id_col.push('…');
    }
    Some((
        seq,
        format!(
            "{seq:>8}  {id_col:<20} {outcome:<18} {status:>4} {:>9.3} {worker:>6}  {detail}",
            total_us as f64 / 1000.0
        ),
    ))
}

fn tracez_path(config: &TailConfig, since_seq: Option<u64>) -> String {
    let mut path = format!("/tracez?limit={}", config.limit);
    if let Some(seq) = since_seq {
        path.push_str(&format!("&since_seq={seq}"));
    }
    if let Some(outcome) = &config.outcome {
        path.push_str(&format!("&outcome={outcome}"));
    }
    if let Some(ms) = config.min_ms {
        path.push_str(&format!("&min_ms={ms}"));
    }
    path
}

/// One poll of `/tracez`: fetch, validate the schema, and format every
/// record newer than `since_seq`. Returns the formatted lines plus the
/// advanced cursor.
fn poll_once(
    config: &TailConfig,
    since_seq: Option<u64>,
) -> Result<(Vec<String>, Option<u64>), ServeError> {
    let path = tracez_path(config, since_seq);
    let (status, body) = http_get(&config.addr, &path, POLL_TIMEOUT)
        .map_err(|e| ServeError::Client(format!("cannot reach {}: {e}", config.addr)))?;
    if status != 200 {
        return Err(ServeError::Client(format!(
            "GET {path} answered {status}: {}",
            body.trim()
        )));
    }
    let doc =
        Json::parse(&body).map_err(|e| ServeError::Client(format!("/tracez is not JSON: {e}")))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(crate::trace::TRACEZ_SCHEMA) => {}
        other => {
            return Err(ServeError::Client(format!(
                "/tracez schema is {other:?}, wanted {:?}",
                crate::trace::TRACEZ_SCHEMA
            )))
        }
    }
    if doc.get("enabled").and_then(Json::as_bool) == Some(false) {
        return Err(ServeError::Client(format!(
            "tracing is disabled on {} (started with --no-trace)",
            config.addr
        )));
    }
    let mut lines = Vec::new();
    let mut cursor = since_seq;
    if let Some(records) = doc.get("records").and_then(Json::as_arr) {
        for rec in records {
            if let Some((seq, line)) = format_record(rec) {
                lines.push(line);
                cursor = Some(cursor.map_or(seq, |c: u64| c.max(seq)));
            }
        }
    }
    Ok((lines, cursor))
}

/// Streams the trace feed to `emit`, one formatted line per call,
/// starting with the column header. Polls every `config.interval`
/// until the process is interrupted — or returns after the first poll
/// with `config.once`.
///
/// # Errors
///
/// [`ServeError::Client`] when the very first poll fails (unreachable
/// address, non-200, bad schema, or tracing disabled). Later transient
/// failures are reported inline as `--` lines and retried, so a
/// restarting server does not kill an attached tail.
pub fn run_tail(config: &TailConfig, emit: &mut dyn FnMut(&str)) -> Result<(), ServeError> {
    emit(&tail_header());
    let mut since_seq: Option<u64> = None;
    let mut first = true;
    loop {
        match poll_once(config, since_seq) {
            Ok((lines, cursor)) => {
                for line in &lines {
                    emit(line);
                }
                since_seq = cursor;
            }
            Err(e) if first => return Err(e),
            Err(e) => emit(&format!("-- poll failed ({e}); retrying")),
        }
        first = false;
        if config.once {
            return Ok(());
        }
        std::thread::sleep(config.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_carries_cursor_and_filters() {
        let config = TailConfig {
            addr: "x".to_string(),
            outcome: Some("shed".to_string()),
            min_ms: Some(5),
            ..TailConfig::default()
        };
        let path = tracez_path(&config, Some(41));
        assert!(path.contains("since_seq=41"), "{path}");
        assert!(path.contains("outcome=shed"), "{path}");
        assert!(path.contains("min_ms=5"), "{path}");
        assert!(tracez_path(&config, None).starts_with("/tracez?limit=64"));
    }

    #[test]
    fn records_format_as_rows() {
        let doc = Json::parse(
            "{\"seq\":7,\"id\":\"ppm-000000000007\",\"outcome\":\"shed\",\"status\":503,\
             \"total_us\":2500,\"worker\":null,\"detail\":\"queue full\"}",
        )
        .expect("record json");
        let (seq, line) = format_record(&doc).expect("formats");
        assert_eq!(seq, 7);
        assert!(line.contains("ppm-000000000007"), "{line}");
        assert!(line.contains("shed"), "{line}");
        assert!(line.contains("503"), "{line}");
        assert!(line.contains("2.500"), "{line}");
        assert!(line.contains("queue full"), "{line}");
    }

    #[test]
    fn first_poll_failure_is_a_typed_error() {
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").port()
        };
        let config = TailConfig {
            addr: format!("127.0.0.1:{port}"),
            once: true,
            ..TailConfig::default()
        };
        let err = run_tail(&config, &mut |_| {}).expect_err("dead port");
        assert!(matches!(err, ServeError::Client(_)));
    }
}
