//! `ppm-trace`: per-request observability for the serving plane.
//!
//! Aggregate counters say *how much* went wrong; this module remembers
//! *which requests* went wrong, and what their time went into. Three
//! pieces:
//!
//! * [`TraceContext`] — a deterministic per-request identity: the
//!   accept-sequence number plus a trace ID, either derived from the
//!   sequence (`ppm-{seq:012x}`) or supplied by the client in the
//!   `X-Ppm-Trace` header and echoed back.
//! * [`TraceRing`] — a lock-sharded ring of completed
//!   [`TraceRecord`]s, fed through a **tail sampler**: every
//!   non-2xx-shaped outcome (shed, deadline-expired, degraded,
//!   panic-contained) is kept unconditionally, the slowest-N requests
//!   by total latency are kept, and plain OK traffic is kept 1-in-K.
//!   Retention decisions are counted (`serve.trace.retained`,
//!   `serve.trace.sampled_out`, `serve.trace.evicted`) so the ring
//!   never silently lies about coverage.
//! * [`SloTracker`] — multi-window error-budget accounting over the
//!   same per-request outcomes: availability (non-shed, non-failed)
//!   and a latency objective, burn rates over 5s/1m/5m windows, and
//!   budget-remaining over the long window.
//!
//! This module is deliberately **clock-free**: every timestamp
//! (`start_us` offsets, unix seconds) is produced by `clock.rs` — the
//! one wall-clock-exempt module — and passed in, so the `wall-clock`
//! lint keeps holding for the trace layer itself.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ppm_telemetry::json_string;

/// Number of independently locked shards in the ring. Power of two so
/// `seq & (SHARDS-1)` distributes round-robin-accepted requests evenly.
const SHARDS: usize = 8;

/// How many one-second accounting slots the SLO tracker keeps — the
/// longest burn-rate window (5 minutes).
const SLO_SLOTS: usize = 300;

/// The schema line served at `GET /tracez`.
pub const TRACEZ_SCHEMA: &str = "ppm-tracez v1";

/// A request's identity, fixed at accept time.
#[derive(Debug, Clone)]
pub struct TraceContext {
    /// Accept-sequence number (monotone per server instance).
    pub seq: u64,
    /// The trace ID: the client's `X-Ppm-Trace` value when one was
    /// sent (truncated to 64 bytes), else `ppm-{seq:012x}`.
    pub id: String,
}

impl TraceContext {
    /// Builds the context for accept-sequence `seq`, honoring a
    /// client-supplied ID when present and non-empty.
    pub fn new(seq: u64, client_id: Option<&str>) -> Self {
        let id = match client_id.map(str::trim) {
            Some(c) if !c.is_empty() => c.chars().take(64).collect(),
            _ => format!("ppm-{seq:012x}"),
        };
        TraceContext { seq, id }
    }
}

/// Where a request's story ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Answered 200 with a full-fidelity prediction.
    Ok,
    /// Answered 200 from the analytical fallback (`"degraded":true`).
    Degraded,
    /// Refused at the door: queue full or shed-all drill.
    Shed,
    /// The deadline expired while queued or during evaluation.
    DeadlineExpired,
    /// The model evaluation panicked and was contained; the request
    /// was still answered (degraded) but the panic is the story.
    PanicContained,
}

impl TraceOutcome {
    /// The wire name used in `ppm-tracez v1` and `?outcome=` filters.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceOutcome::Ok => "ok",
            TraceOutcome::Degraded => "degraded",
            TraceOutcome::Shed => "shed",
            TraceOutcome::DeadlineExpired => "deadline_expired",
            TraceOutcome::PanicContained => "panic_contained",
        }
    }

    /// Parses a wire name back; `None` for unknown strings.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ok" => Some(TraceOutcome::Ok),
            "degraded" => Some(TraceOutcome::Degraded),
            "shed" => Some(TraceOutcome::Shed),
            "deadline_expired" => Some(TraceOutcome::DeadlineExpired),
            "panic_contained" => Some(TraceOutcome::PanicContained),
            _ => None,
        }
    }

    /// True for the outcomes the tail sampler must never drop.
    pub fn always_keep(self) -> bool {
        !matches!(self, TraceOutcome::Ok)
    }
}

/// One step of a request's timeline, as offsets from accept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Step name: `accept`, `queue_wait`, `eval`, `write`.
    pub name: &'static str,
    /// Microseconds after accept at which the step began.
    pub start_us: u64,
    /// The step's duration in microseconds.
    pub dur_us: u64,
}

/// The complete after-the-fact record of one request.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Trace ID (seq-derived or client-supplied).
    pub id: String,
    /// Accept-sequence number.
    pub seq: u64,
    /// The route that was hit (`/predict`, `/metrics`, ...).
    pub route: String,
    /// Terminal outcome.
    pub outcome: TraceOutcome,
    /// HTTP status that was written (0 when the write itself failed).
    pub status: u16,
    /// Detail string: degrade reason, shed reason, failure text.
    pub detail: String,
    /// Worker shard that served the request; `None` for requests shed
    /// before reaching the pool.
    pub worker: Option<usize>,
    /// Total accept-to-done latency in microseconds.
    pub total_us: u64,
    /// The span timeline (offsets from accept).
    pub spans: Vec<SpanRec>,
    /// Unix milliseconds at completion (provenance only; produced by
    /// `clock.rs`).
    pub unix_ms: u64,
}

impl TraceRecord {
    /// Renders the record as one `ppm-tracez v1` JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"id\":");
        s.push_str(&json_string(&self.id));
        s.push_str(&format!(",\"seq\":{}", self.seq));
        s.push_str(",\"route\":");
        s.push_str(&json_string(&self.route));
        s.push_str(&format!(",\"outcome\":\"{}\"", self.outcome.as_str()));
        s.push_str(&format!(",\"status\":{}", self.status));
        s.push_str(",\"detail\":");
        s.push_str(&json_string(&self.detail));
        match self.worker {
            Some(w) => s.push_str(&format!(",\"worker\":{w}")),
            None => s.push_str(",\"worker\":null"),
        }
        s.push_str(&format!(
            ",\"total_us\":{},\"unix_ms\":{},\"spans\":[",
            self.total_us, self.unix_ms
        ));
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}}}",
                span.name, span.start_us, span.dur_us
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Tail-sampling policy knobs.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Total ring capacity across shards (per-shard cap is
    /// `capacity / 8`, floor 1). Zero disables tracing entirely.
    pub capacity: usize,
    /// Keep 1 in this many plain-OK requests (after the slowest-N
    /// check). 1 keeps everything; 0 keeps none beyond the slowest-N.
    pub sample_one_in: u64,
    /// Always keep the slowest N requests seen so far by total
    /// latency, whatever their outcome.
    pub slow_keep: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 4096,
            sample_one_in: 64,
            slow_keep: 32,
        }
    }
}

struct Shard {
    records: Mutex<VecDeque<TraceRecord>>,
}

/// The lock-sharded ring of retained trace records.
///
/// `offer` is the only write path and takes exactly one shard lock
/// (plus a short slow-heap lock for OK traffic), so tracing stays off
/// the contended path between workers. Eviction is per-shard FIFO.
pub struct TraceRing {
    shards: Vec<Shard>,
    per_shard_cap: usize,
    config: TraceConfig,
    /// Min-heap (as negated values) of the slowest-N latencies seen.
    slow: Mutex<Vec<u64>>,
    normal_tick: AtomicU64,
    retained: Arc<ppm_telemetry::Counter>,
    sampled_out: Arc<ppm_telemetry::Counter>,
    evicted: Arc<ppm_telemetry::Counter>,
}

/// Filters accepted by [`TraceRing::snapshot`] — the `/tracez` query
/// surface.
#[derive(Debug, Clone, Default)]
pub struct TraceFilter {
    /// Only records with this outcome.
    pub outcome: Option<TraceOutcome>,
    /// Only records at least this slow (microseconds).
    pub min_us: Option<u64>,
    /// Only records whose ID starts with this prefix.
    pub id_prefix: Option<String>,
    /// Only records with `seq > since_seq` (live tailing cursor).
    pub since_seq: Option<u64>,
    /// Keep only the most recent N matches.
    pub limit: Option<usize>,
}

impl TraceRing {
    /// Creates a ring with the given policy, resolving its counters
    /// from the global telemetry registry.
    pub fn new(config: TraceConfig) -> Self {
        let per_shard_cap = (config.capacity / SHARDS).max(1);
        TraceRing {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    records: Mutex::new(VecDeque::new()),
                })
                .collect(),
            per_shard_cap,
            config,
            slow: Mutex::new(Vec::new()),
            normal_tick: AtomicU64::new(0),
            retained: ppm_telemetry::counter("serve.trace.retained"),
            sampled_out: ppm_telemetry::counter("serve.trace.sampled_out"),
            evicted: ppm_telemetry::counter("serve.trace.evicted"),
        }
    }

    /// Total ring capacity.
    pub fn capacity(&self) -> usize {
        self.per_shard_cap * SHARDS
    }

    /// How many records the ring currently holds across all shards.
    pub fn retained_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.records
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// Offers a completed record to the tail sampler. Non-OK outcomes
    /// are always retained; OK records survive if they are among the
    /// slowest-N seen so far or win the 1-in-K lottery.
    pub fn offer(&self, rec: TraceRecord) {
        if !self.should_keep(&rec) {
            self.sampled_out.inc();
            return;
        }
        let shard = &self.shards[(rec.seq as usize) % SHARDS];
        let mut q = shard
            .records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if q.len() >= self.per_shard_cap {
            q.pop_front();
            self.evicted.inc();
        }
        q.push_back(rec);
        self.retained.inc();
    }

    fn should_keep(&self, rec: &TraceRecord) -> bool {
        // Errors are never sampled out: non-Ok outcomes and every
        // non-2xx status (a 400 is an Ok-outcome span timeline, but the
        // client saw a failure and deserves a retrievable trace).
        if rec.outcome.always_keep() || rec.status >= 400 {
            return true;
        }
        if self.config.slow_keep > 0 {
            let mut slow = self
                .slow
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if slow.len() < self.config.slow_keep {
                slow.push(rec.total_us);
                slow.sort_unstable();
                return true;
            }
            // slow[0] is the fastest of the current slowest-N.
            if rec.total_us > slow[0] {
                slow[0] = rec.total_us;
                slow.sort_unstable();
                return true;
            }
        }
        match self.config.sample_one_in {
            0 => false,
            k => self
                .normal_tick
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(k),
        }
    }

    /// All retained records matching `filter`, sorted by sequence
    /// number ascending. With a `limit`, the *most recent* matches win.
    pub fn snapshot(&self, filter: &TraceFilter) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let q = shard
                .records
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for rec in q.iter() {
                if let Some(o) = filter.outcome {
                    if rec.outcome != o {
                        continue;
                    }
                }
                if let Some(min) = filter.min_us {
                    if rec.total_us < min {
                        continue;
                    }
                }
                if let Some(prefix) = &filter.id_prefix {
                    if !rec.id.starts_with(prefix.as_str()) {
                        continue;
                    }
                }
                if let Some(since) = filter.since_seq {
                    if rec.seq <= since {
                        continue;
                    }
                }
                out.push(rec.clone());
            }
        }
        out.sort_by_key(|r| r.seq);
        if let Some(limit) = filter.limit {
            if out.len() > limit {
                out.drain(..out.len() - limit);
            }
        }
        out
    }

    /// Number of currently retained records.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.records
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders a full `ppm-tracez v1` document for `filter`.
    pub fn render_tracez(&self, filter: &TraceFilter) -> String {
        let records = self.snapshot(filter);
        let mut s = String::with_capacity(64 + records.len() * 256);
        s.push_str(&format!(
            "{{\"schema\":\"{TRACEZ_SCHEMA}\",\"enabled\":true,\
             \"capacity\":{},\"retained\":{},\"records\":[",
            self.capacity(),
            self.len()
        ));
        for (i, rec) in records.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&rec.to_json());
        }
        s.push_str("]}");
        s
    }
}

/// The document `/tracez` serves when tracing is disabled
/// (`--no-trace`): consumers can distinguish "nothing retained" from
/// "not recording".
pub fn render_tracez_disabled() -> String {
    format!(
        "{{\"schema\":\"{TRACEZ_SCHEMA}\",\"enabled\":false,\
         \"capacity\":0,\"retained\":0,\"records\":[]}}"
    )
}

struct SloSlot {
    // atomic-policy(sec): AcqRel, Acquire, Relaxed — the slot's second
    // is the publication gate: the recycling CAS (AcqRel, Relaxed on
    // failure) must order with readers' Acquire loads so zeroed counts
    // are visible before the slot is claimed for a new second.
    sec: AtomicU64,
    total: AtomicU64,
    unavailable: AtomicU64,
    slow: AtomicU64,
}

/// Multi-window SLO accounting over per-request outcomes.
///
/// A ring of 300 one-second slots; each `/predict` request lands in
/// the slot for its completion second. Slots are recycled lazily: the
/// first observer of a new second CASes the slot's second forward and
/// zeroes its counts (a request racing that reset can be miscounted by
/// one — acceptable for burn-rate accounting, which reads whole
/// windows).
///
/// **Burn rate** is the classic SRE normalization: the window's
/// bad-request ratio divided by the objective's error allowance
/// (`1 - objective`). Burn 1.0 = exactly spending budget at the
/// sustainable rate; 10 = ten times too fast.
pub struct SloTracker {
    slots: Vec<SloSlot>,
    /// Availability objective, e.g. 0.999.
    pub availability_objective: f64,
    /// Latency objective in microseconds (requests slower than this
    /// spend latency budget).
    pub latency_objective_us: u64,
}

/// One window's worth of SLO accounting, as reported at `/statusz`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloWindow {
    /// Window length in seconds (5, 60, 300).
    pub window_s: u64,
    /// Requests observed in the window.
    pub total: u64,
    /// Requests that spent availability budget (shed, failed, late).
    pub unavailable: u64,
    /// Requests that spent latency budget (answered, but slow).
    pub slow: u64,
    /// Availability burn rate.
    pub availability_burn: f64,
    /// Latency burn rate.
    pub latency_burn: f64,
}

impl SloTracker {
    /// Creates a tracker for the given objectives.
    pub fn new(availability_objective: f64, latency_objective_us: u64) -> Self {
        SloTracker {
            slots: (0..SLO_SLOTS)
                .map(|_| SloSlot {
                    sec: AtomicU64::new(0),
                    total: AtomicU64::new(0),
                    unavailable: AtomicU64::new(0),
                    slow: AtomicU64::new(0),
                })
                .collect(),
            availability_objective,
            latency_objective_us,
        }
    }

    /// Records one finished request. `now_sec` is unix seconds (from
    /// `clock.rs`); `available` is false for shed / deadline-expired /
    /// failed requests; `total_us` is accept-to-done latency.
    pub fn observe(&self, now_sec: u64, available: bool, total_us: u64) {
        let slot = &self.slots[(now_sec as usize) % SLO_SLOTS];
        let seen = slot.sec.load(Ordering::Acquire);
        if seen != now_sec
            && slot
                .sec
                .compare_exchange(seen, now_sec, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            slot.total.store(0, Ordering::Relaxed);
            slot.unavailable.store(0, Ordering::Relaxed);
            slot.slow.store(0, Ordering::Relaxed);
        }
        slot.total.fetch_add(1, Ordering::Relaxed);
        if !available {
            slot.unavailable.fetch_add(1, Ordering::Relaxed);
        } else if total_us > self.latency_objective_us {
            slot.slow.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn window_counts(&self, now_sec: u64, span: u64) -> (u64, u64, u64) {
        let (mut total, mut unavailable, mut slow) = (0u64, 0u64, 0u64);
        let oldest = now_sec.saturating_sub(span.saturating_sub(1));
        for slot in &self.slots {
            let sec = slot.sec.load(Ordering::Acquire);
            if sec >= oldest && sec <= now_sec {
                total += slot.total.load(Ordering::Relaxed);
                unavailable += slot.unavailable.load(Ordering::Relaxed);
                slow += slot.slow.load(Ordering::Relaxed);
            }
        }
        (total, unavailable, slow)
    }

    fn burn(&self, bad: u64, total: u64, objective: f64) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let allowance = (1.0 - objective).max(f64::EPSILON);
        (bad as f64 / total as f64) / allowance
    }

    /// The standard multi-window report: 5s / 1m / 5m.
    pub fn windows(&self, now_sec: u64) -> [SloWindow; 3] {
        [5u64, 60, 300].map(|span| {
            let (total, unavailable, slow) = self.window_counts(now_sec, span);
            SloWindow {
                window_s: span,
                total,
                unavailable,
                slow,
                // Both SLOs share one compliance fraction (the
                // availability objective): "99.9% available" and
                // "99.9% within the latency objective".
                availability_burn: self.burn(unavailable, total, self.availability_objective),
                latency_burn: self.burn(slow, total, self.availability_objective),
            }
        })
    }

    /// Error-budget fraction remaining over the 5-minute window:
    /// `1 - burn_rate_5m` (negative when the budget is overspent).
    pub fn budget_remaining(&self, now_sec: u64) -> (f64, f64) {
        let (total, unavailable, slow) = self.window_counts(now_sec, 300);
        let avail = 1.0 - self.burn(unavailable, total, self.availability_objective);
        let lat = 1.0 - self.burn(slow, total, self.availability_objective);
        (avail, lat)
    }

    /// Renders the `"slo"` object embedded in `ppm-statusz v1`.
    pub fn to_json(&self, now_sec: u64) -> String {
        let (avail_budget, lat_budget) = self.budget_remaining(now_sec);
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"availability_objective\":{},\"latency_objective_ms\":{},\"windows\":[",
            self.availability_objective,
            self.latency_objective_us / 1000
        ));
        for (i, w) in self.windows(now_sec).iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"window_s\":{},\"total\":{},\"unavailable\":{},\"slow\":{},\
                 \"availability_burn\":{:.4},\"latency_burn\":{:.4}}}",
                w.window_s, w.total, w.unavailable, w.slow, w.availability_burn, w.latency_burn
            ));
        }
        s.push_str(&format!(
            "],\"availability_budget_remaining\":{avail_budget:.4},\
             \"latency_budget_remaining\":{lat_budget:.4}}}"
        ));
        s
    }

    /// Publishes the burn rates and budget gauges into the global
    /// registry (`serve.slo.*`) for `/metrics`.
    pub fn publish_gauges(&self, now_sec: u64) {
        for w in self.windows(now_sec) {
            ppm_telemetry::gauge(&format!("serve.slo.availability_burn_{}s", w.window_s))
                .set(w.availability_burn);
            ppm_telemetry::gauge(&format!("serve.slo.latency_burn_{}s", w.window_s))
                .set(w.latency_burn);
        }
        let (avail, lat) = self.budget_remaining(now_sec);
        ppm_telemetry::gauge("serve.slo.availability_budget_remaining").set(avail);
        ppm_telemetry::gauge("serve.slo.latency_budget_remaining").set(lat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, outcome: TraceOutcome, total_us: u64) -> TraceRecord {
        TraceRecord {
            id: format!("ppm-{seq:012x}"),
            seq,
            route: "/predict".to_string(),
            outcome,
            status: match outcome {
                TraceOutcome::Ok | TraceOutcome::Degraded => 200,
                _ => 503,
            },
            detail: String::new(),
            worker: Some(0),
            total_us,
            spans: vec![
                SpanRec {
                    name: "accept",
                    start_us: 0,
                    dur_us: 1,
                },
                SpanRec {
                    name: "eval",
                    start_us: 1,
                    dur_us: total_us.saturating_sub(1),
                },
            ],
            unix_ms: 1_700_000_000_000,
        }
    }

    #[test]
    fn context_derives_or_honors_ids() {
        assert_eq!(TraceContext::new(42, None).id, "ppm-00000000002a");
        assert_eq!(TraceContext::new(42, Some("client-7")).id, "client-7");
        assert_eq!(TraceContext::new(42, Some("  ")).id, "ppm-00000000002a");
        // Oversized client IDs are truncated, not rejected.
        let long = "x".repeat(200);
        assert_eq!(TraceContext::new(0, Some(&long)).id.len(), 64);
    }

    #[test]
    fn tail_sampler_keeps_every_non_ok_outcome() {
        let ring = TraceRing::new(TraceConfig {
            capacity: 1024,
            sample_one_in: 0, // no lottery winners
            slow_keep: 0,     // no slowest-N
        });
        for (i, outcome) in [
            TraceOutcome::Shed,
            TraceOutcome::DeadlineExpired,
            TraceOutcome::Degraded,
            TraceOutcome::PanicContained,
            TraceOutcome::Ok,
        ]
        .iter()
        .enumerate()
        {
            ring.offer(rec(i as u64, *outcome, 100));
        }
        // The lone OK record was sampled out; the four bad ones stay.
        assert_eq!(ring.len(), 4);
        let all = ring.snapshot(&TraceFilter::default());
        assert!(all.iter().all(|r| r.outcome != TraceOutcome::Ok));
    }

    #[test]
    fn slowest_n_and_one_in_k_retain_ok_traffic() {
        let ring = TraceRing::new(TraceConfig {
            capacity: 1024,
            sample_one_in: 10,
            slow_keep: 2,
        });
        // 100 OK records with *descending* latency: after the first two
        // seed the slowest-2 pool, nothing else qualifies as slow, so
        // the rest survive only via the 1-in-10 lottery. (Ascending
        // latencies would retain everything — each arrival is the
        // slowest seen so far, which is exactly what a streaming
        // slowest-N sampler should do.)
        for i in 0..100u64 {
            ring.offer(rec(i, TraceOutcome::Ok, (100 - i) * 10));
        }
        let all = ring.snapshot(&TraceFilter::default());
        assert!(!all.is_empty());
        // The two slowest must be present.
        assert!(all.iter().any(|r| r.seq == 0));
        assert!(all.iter().any(|r| r.seq == 1));
        // Roughly 1-in-10 of the rest: between 10 and 40 total.
        assert!(all.len() >= 10 && all.len() <= 40, "{}", all.len());
    }

    #[test]
    fn ring_evicts_fifo_per_shard_and_counts() {
        let before = ppm_telemetry::registry()
            .counter("serve.trace.evicted")
            .get();
        let ring = TraceRing::new(TraceConfig {
            capacity: 16, // 2 per shard
            sample_one_in: 1,
            slow_keep: 0,
        });
        for i in 0..64u64 {
            ring.offer(rec(i, TraceOutcome::Shed, 10));
        }
        assert_eq!(ring.len(), 16);
        let after = ppm_telemetry::registry()
            .counter("serve.trace.evicted")
            .get();
        assert_eq!(after - before, 48);
        // Survivors are the most recent per shard.
        let all = ring.snapshot(&TraceFilter::default());
        assert!(all.iter().all(|r| r.seq >= 32), "{all:?}");
    }

    #[test]
    fn snapshot_filters_compose() {
        let ring = TraceRing::new(TraceConfig {
            capacity: 1024,
            sample_one_in: 1,
            slow_keep: 0,
        });
        for i in 0..20u64 {
            let outcome = if i % 2 == 0 {
                TraceOutcome::Ok
            } else {
                TraceOutcome::Shed
            };
            ring.offer(rec(i, outcome, i * 100));
        }
        let shed = ring.snapshot(&TraceFilter {
            outcome: Some(TraceOutcome::Shed),
            ..TraceFilter::default()
        });
        assert_eq!(shed.len(), 10);
        let slow = ring.snapshot(&TraceFilter {
            min_us: Some(1500),
            ..TraceFilter::default()
        });
        assert!(slow.iter().all(|r| r.total_us >= 1500));
        let tail = ring.snapshot(&TraceFilter {
            since_seq: Some(15),
            ..TraceFilter::default()
        });
        assert_eq!(tail.len(), 4);
        assert!(tail.iter().all(|r| r.seq > 15));
        let limited = ring.snapshot(&TraceFilter {
            limit: Some(3),
            ..TraceFilter::default()
        });
        assert_eq!(limited.len(), 3);
        // Most recent win, ascending order.
        assert_eq!(
            limited.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![17, 18, 19]
        );
        let prefixed = ring.snapshot(&TraceFilter {
            id_prefix: Some("ppm-0000000000".to_string()),
            ..TraceFilter::default()
        });
        assert_eq!(prefixed.len(), 20);
    }

    #[test]
    fn tracez_document_is_schema_tagged_json() {
        let ring = TraceRing::new(TraceConfig {
            capacity: 64,
            sample_one_in: 1,
            slow_keep: 0,
        });
        ring.offer(rec(7, TraceOutcome::DeadlineExpired, 5000));
        let doc = ring.render_tracez(&TraceFilter::default());
        assert!(doc.starts_with("{\"schema\":\"ppm-tracez v1\""));
        assert!(doc.contains("\"enabled\":true"));
        assert!(doc.contains("\"outcome\":\"deadline_expired\""));
        assert!(doc.contains("\"spans\":[{\"name\":\"accept\""));
        let disabled = render_tracez_disabled();
        assert!(disabled.contains("\"enabled\":false"));
        assert!(disabled.contains("\"records\":[]"));
    }

    #[test]
    fn record_json_escapes_details() {
        let mut r = rec(1, TraceOutcome::PanicContained, 10);
        r.detail = "panic: \"quoted\"\nline".to_string();
        let json = r.to_json();
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\n"));
    }

    #[test]
    fn slo_tracker_burns_and_recovers() {
        let slo = SloTracker::new(0.9, 1_000_000);
        let t0 = 10_000u64;
        // 10 requests at t0: 5 unavailable → error rate 0.5, allowance
        // 0.1 → availability burn 5.0 in every window containing t0.
        for i in 0..10 {
            slo.observe(t0, i % 2 == 0, 100);
        }
        let w = slo.windows(t0);
        assert_eq!(w[0].window_s, 5);
        assert_eq!(w[0].total, 10);
        assert_eq!(w[0].unavailable, 5);
        assert!((w[0].availability_burn - 5.0).abs() < 1e-9);
        assert!((w[2].availability_burn - 5.0).abs() < 1e-9);
        let (avail_budget, _) = slo.budget_remaining(t0);
        assert!((avail_budget - (1.0 - 5.0)).abs() < 1e-9);
        // 400 seconds later the 5m window has rolled past t0 — only
        // the new, healthy traffic counts.
        let t1 = t0 + 400;
        for _ in 0..10 {
            slo.observe(t1, true, 100);
        }
        let w1 = slo.windows(t1);
        assert_eq!(w1[2].total, 10);
        assert_eq!(w1[2].unavailable, 0);
        assert_eq!(w1[2].availability_burn, 0.0);
        let (avail_budget, lat_budget) = slo.budget_remaining(t1);
        assert_eq!(avail_budget, 1.0);
        assert_eq!(lat_budget, 1.0);
    }

    #[test]
    fn slo_latency_objective_spends_latency_budget_only() {
        let slo = SloTracker::new(0.999, 1000); // 1ms objective
        let t = 77u64;
        for i in 0..100 {
            // All available; every 10th slower than the objective.
            slo.observe(t, true, if i % 10 == 0 { 5000 } else { 100 });
        }
        let w = slo.windows(t);
        assert_eq!(w[0].unavailable, 0);
        assert_eq!(w[0].slow, 10);
        assert_eq!(w[0].availability_burn, 0.0);
        assert!(w[0].latency_burn > 0.0);
        let (_, lat_budget) = slo.budget_remaining(t);
        // 10% slow against a 0.1% allowance: budget deeply overspent.
        assert!(lat_budget < 0.0, "{lat_budget}");
    }

    #[test]
    fn slo_empty_windows_report_zero_burn() {
        let slo = SloTracker::new(0.999, 1000);
        let w = slo.windows(123);
        assert!(w
            .iter()
            .all(|w| w.total == 0 && w.availability_burn == 0.0 && w.latency_burn == 0.0));
        assert_eq!(slo.budget_remaining(123), (1.0, 1.0));
        let json = slo.to_json(123);
        assert!(json.contains("\"availability_objective\":0.999"));
        assert!(json.contains("\"window_s\":300"));
    }
}
